//! Atomic snapshot object — the problem Lattice Agreement was invented
//! for (Attiya, Herlihy, Rachman 1995; paper §2): each process owns a
//! register; `update` writes it; `scan` returns a consistent global view
//! of all registers. Comparability of lattice decisions makes every
//! pair of scans ordered — i.e. the scans are *atomic*.
//!
//! Built directly on the BFT RSM: registers are encoded as commands
//! `Put("reg:<pid>:<seq>=<value>")`, and a scan folds the decided
//! command set with a per-register last-writer-wins (max seq) rule.
//!
//! Run with: `cargo run --example snapshot`

use bgla::core::SystemConfig;
use bgla::core::ValueSet;
use bgla::lattice::{JoinSemiLattice, MapLattice, MaxLattice};
use bgla::rsm::{ClientOp, Cmd, Op, Replica, WorkloadClient};
use bgla::simnet::{RandomScheduler, SimulationBuilder};

/// A snapshot: register id -> (seq, value), folded via max-by-seq.
type Snapshot = MapLattice<u64, MaxLattice<(u64, u64)>>;

/// Folds a decided command set into a snapshot of the registers.
fn fold_snapshot(cmds: &ValueSet<Cmd>) -> Snapshot {
    let mut snap = Snapshot::new();
    for c in cmds {
        if let Op::Add(value) = c.op {
            // Register id = client id; writes are (seq, value) pairs,
            // later seq wins via the max lattice.
            snap.join_at(c.client, &MaxLattice::of((c.seq, value)));
        }
    }
    snap
}

fn main() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(77)));
    for i in 0..n {
        b = b.add(Box::new(Replica::new(i, config, 50)));
    }
    // Three writer/scanner clients; each updates its own register twice
    // and scans in between.
    for id in 1..=3u64 {
        b = b.add(Box::new(WorkloadClient::new(
            id,
            n,
            f,
            vec![
                ClientOp::Update(Op::Add(id * 10)), // register := 10*id (seq 0)
                ClientOp::Read,                     // scan 1
                ClientOp::Update(Op::Add(id * 10 + 1)), // register := 10*id+1 (seq 2)
                ClientOp::Read,                     // scan 2
            ],
        )));
    }
    let mut sim = b.build();
    let outcome = sim.run(200_000_000);
    assert!(outcome.quiescent);

    println!("Atomic snapshot object over the BFT RSM (n={n}, f={f})\n");
    let mut all_snaps: Vec<Snapshot> = Vec::new();
    for (k, pid) in (n..n + 3).enumerate() {
        let c = sim.process_as::<WorkloadClient>(pid).unwrap();
        assert!(c.finished(), "client {k} unfinished");
        println!("scanner {}:", k + 1);
        for (s, read) in c.reads().iter().enumerate() {
            let snap = fold_snapshot(read);
            let view: Vec<String> = snap
                .iter()
                .map(|(reg, mv)| {
                    let (seq, val) = mv.get().unwrap();
                    format!("r{reg}={val}@{seq}")
                })
                .collect();
            println!("  scan {}: [{}]", s + 1, view.join(", "));
            all_snaps.push(snap);
        }
    }

    // Atomicity: all snapshots (across all scanners!) are mutually
    // comparable in the snapshot lattice — they form one chain.
    for i in 0..all_snaps.len() {
        for j in (i + 1)..all_snaps.len() {
            let (a, b) = (&all_snaps[i], &all_snaps[j]);
            assert!(
                a.leq(b) || b.leq(a),
                "snapshots {i} and {j} are incomparable — not atomic!"
            );
        }
    }
    println!(
        "\nAll {} scans are pairwise comparable: the snapshot object is atomic,\n\
         exactly the LA ⇒ snapshot equivalence of Attiya-Herlihy-Rachman (paper §2).",
        all_snaps.len()
    );
}
