//! A gallery of Byzantine attacks against WTS, each aimed at one proof
//! obligation of the paper, and the defense that stops it. Also includes
//! the Theorem-1 demonstration: with only `n = 3f` processes, WTS stays
//! safe but loses liveness.
//!
//! Run with: `cargo run --example byzantine_gallery`

use bgla::core::adversary::{AckForger, Equivocator, NackSpammer, Silent};
use bgla::core::harness::{wts_report, wts_system_with_adversaries};
use bgla::core::{spec, wts::WtsProcess, SystemConfig};
use bgla::simnet::{RandomScheduler, SimulationBuilder};
use std::collections::BTreeSet;

fn run_attack(
    name: &str,
    defense: &str,
    adversary: impl FnMut(
        usize,
        SystemConfig,
    ) -> Option<Box<dyn bgla::simnet::Process<bgla::core::wts::WtsMsg<u64>>>>,
) {
    let (n, f) = (4usize, 1usize);
    let (mut sim, config, byz) = wts_system_with_adversaries(
        n,
        f,
        |i| i as u64,
        Box::new(RandomScheduler::new(99)),
        adversary,
    );
    let outcome = sim.run(10_000_000);
    let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
    let report = wts_report(&sim, &correct);
    let inputs: BTreeSet<u64> = correct.iter().map(|&i| i as u64).collect();
    spec::check_liveness(&report.decided).expect("liveness");
    spec::check_comparability(&report.decisions).expect("comparability");
    spec::check_inclusivity(&report.pairs).expect("inclusivity");
    spec::check_nontriviality(&inputs, &report.decisions, config.f).expect("non-triviality");
    println!("attack: {name}");
    println!("  defense: {defense}");
    println!(
        "  result: quiescent={}, all {} correct processes decided, spec holds\n",
        outcome.quiescent,
        correct.len()
    );
}

fn main() {
    println!("== Byzantine attack gallery: WTS at n = 4, f = 1 ==\n");

    run_attack(
        "silent process (crash from the start)",
        "thresholds use n-f disclosures and ⌊(n+f)/2⌋+1 acks: progress without the faulty one",
        |i, _| (i == 3).then(|| Box::new(Silent::default()) as _),
    );

    run_attack(
        "equivocating disclosure (value 666 to one half, 777 to the other)",
        "Bracha reliable broadcast: at most one value per process can ever be delivered",
        |i, _| {
            (i == 3).then(|| {
                Box::new(Equivocator {
                    a: 666u64,
                    b: 777u64,
                }) as _
            })
        },
    );

    run_attack(
        "nack spammer (nacks every request with everything it has seen)",
        "nacks must be SAFE to be acted on; refinements are bounded by f (Lemma 3)",
        |i, _| (i == 3).then(|| Box::new(NackSpammer::new(333u64)) as _),
    );

    run_attack(
        "ack forger (acks everything instantly without checking safety)",
        "quorum intersection: any two quorums share a correct acceptor (Lemma 1)",
        |i, _| (i == 0).then(|| Box::new(AckForger::default()) as _),
    );

    // ---- Theorem 1: n = 3f is not enough ----
    println!("== Theorem 1 demonstration: n = 3, f = 1 (one silent Byzantine) ==\n");
    let config = SystemConfig::new_unchecked(3, 1);
    let mut b = SimulationBuilder::new();
    for i in 0..2 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b = b.add(Box::new(Silent::default()));
    let mut sim = b.build();
    let outcome = sim.run(1_000_000);
    let decided: Vec<bool> = (0..2)
        .map(|i| {
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .is_some()
        })
        .collect();
    println!(
        "  quiescent = {}, decisions by correct processes: {:?}",
        outcome.quiescent, decided
    );
    assert!(
        decided.iter().all(|d| !d),
        "at n = 3f the quorum ⌊(n+f)/2⌋+1 = 3 exceeds the n−f = 2 reachable processes"
    );
    println!(
        "  -> with n = 3f the ack quorum (3) exceeds the guaranteed-correct population (2):\n\
         \x20    WTS stays safe but can never decide. No algorithm can do better (Theorem 1):\n\
         \x20    trading the quorum down to 2 admits split-brain runs with incomparable decisions."
    );
}
