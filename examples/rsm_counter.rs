//! The paper's motivating application (Section 1): a dependable counter
//! replicated across 4 replicas, one of which is Byzantine-silent, with
//! three concurrent clients issuing commutative `add` updates and
//! linearizable reads — all in an asynchronous network with a randomized
//! adversarial scheduler.
//!
//! Run with: `cargo run --example rsm_counter`

use bgla::core::SystemConfig;
use bgla::rsm::checks;
use bgla::rsm::{ClientOp, CounterState, Op, Replica, RsmMsg, WorkloadClient};
use bgla::simnet::{Context, Process, RandomScheduler, SimulationBuilder};
use std::any::Any;

/// A Byzantine replica that crashed at start (sends nothing, ever).
struct DeadReplica;
impl Process<RsmMsg> for DeadReplica {
    fn on_message(&mut self, _f: usize, _m: RsmMsg, _c: &mut Context<RsmMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn main() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(2024)));

    // Replicas 0..2 correct, replica 3 Byzantine (silent).
    for i in 0..3 {
        b = b.add(Box::new(Replica::new(i, config, 40)));
    }
    b = b.add(Box::new(DeadReplica));

    // Three clients with interleaved scripts.
    let scripts = [
        vec![
            ClientOp::Update(Op::Add(10)),
            ClientOp::Read,
            ClientOp::Update(Op::Add(5)),
            ClientOp::Read,
        ],
        vec![
            ClientOp::Update(Op::Add(100)),
            ClientOp::Read,
            ClientOp::Read,
        ],
        vec![ClientOp::Read, ClientOp::Update(Op::Add(1)), ClientOp::Read],
    ];
    for (k, script) in scripts.iter().enumerate() {
        b = b.add(Box::new(WorkloadClient::new(
            k as u64 + 1,
            n,
            f,
            script.clone(),
        )));
    }

    let mut sim = b.build();
    let outcome = sim.run(100_000_000);
    assert!(outcome.quiescent);

    println!("BFT set-counter RSM: n = {n}, f = {f}, replica 3 crashed, 3 clients\n");
    let mut snapshots = Vec::new();
    for (k, id) in (4..7).enumerate() {
        let c = sim.process_as::<WorkloadClient>(id).unwrap();
        println!("client {} results:", k + 1);
        for r in &c.results {
            match r {
                bgla::rsm::client::OpResult::Updated(cmd) => {
                    println!("  update {:?} acknowledged", cmd.op)
                }
                bgla::rsm::client::OpResult::ReadValue(v) => {
                    let st = CounterState::execute(v);
                    println!(
                        "  read -> counter = {:<4} ({} commands visible)",
                        st.total, st.applied
                    );
                }
            }
        }
        let mut copy = WorkloadClient::new(c.client_id, 0, 0, vec![]);
        copy.results = c.results.clone();
        snapshots.push(copy);
    }

    let refs: Vec<&WorkloadClient> = snapshots.iter().collect();
    checks::check_all(&refs).expect("all six RSM properties");
    println!(
        "\nAll RSM properties hold: liveness, read validity/consistency/monotonicity, \
         update stability/visibility."
    );
    println!(
        "

Messages: {} total, heaviest process sent {}.",
        sim.metrics().total_sent(),
        sim.metrics().max_sent_per_process()
    );
}
