//! The schedule-debugging workflow: record a randomized adversarial run,
//! replay it bit-identically, then *edit the trace* to probe how the
//! outcome depends on delivery order — the tooling you reach for when a
//! distributed-systems heisenbug shows up once in a thousand schedules.
//!
//! Run with: `cargo run --example replay_debug`

use bgla::core::adversary::NackSpammer;
use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::SystemConfig;
use bgla::simnet::{
    RandomScheduler, RecordingScheduler, ReplayScheduler, Scheduler, Simulation, SimulationBuilder,
};

fn build(scheduler: Box<dyn Scheduler>) -> Simulation<WtsMsg<u64>> {
    let config = SystemConfig::new(4, 1);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..3 {
        b = b.add(Box::new(WtsProcess::new(i, config, 100 + i as u64)));
    }
    b = b.add(Box::new(NackSpammer::new(999u64)));
    b.build()
}

fn summarize(sim: &Simulation<WtsMsg<u64>>) -> String {
    let depths: Vec<String> = (0..3)
        .map(|i| {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            format!(
                "p{i}: {} values @ depth {}",
                p.decision.as_ref().map(|d| d.len()).unwrap_or(0),
                p.decision_depth.unwrap_or(0),
            )
        })
        .collect();
    format!(
        "{} msgs | {}",
        sim.metrics().total_sent(),
        depths.join(" | ")
    )
}

fn main() {
    // 1. Record a randomized adversarial run.
    let (rec, trace) = RecordingScheduler::new(Box::new(RandomScheduler::new(0xBAD5EED)));
    let mut original = build(Box::new(rec));
    original.run(u64::MAX / 2);
    println!("original   : {}", summarize(&original));
    let recorded = trace.lock().clone();
    println!(
        "trace      : {} delivery decisions recorded",
        recorded.len()
    );

    // 2. Replay bit-identically.
    let mut replayed = build(Box::new(ReplayScheduler::new(recorded.clone())));
    replayed.run(u64::MAX / 2);
    println!("replayed   : {}", summarize(&replayed));
    assert_eq!(summarize(&original), summarize(&replayed));

    // 3. Probe: keep only a prefix of the schedule, FIFO afterwards —
    //    "what if the network had calmed down at step k?"
    for fraction in [4usize, 2] {
        let prefix: Vec<u64> = recorded[..recorded.len() / fraction].to_vec();
        let mut probe = build(Box::new(ReplayScheduler::new(prefix)));
        probe.run(u64::MAX / 2);
        println!(
            "prefix 1/{fraction}  : {} (schedule edited, outcome still safe)",
            summarize(&probe)
        );
        // Safety must hold under any edit — that's the point.
        let decisions: Vec<_> = (0..3)
            .map(|i| {
                probe
                    .process_as::<WtsProcess<u64>>(i)
                    .unwrap()
                    .decision
                    .clone()
                    .expect("liveness")
            })
            .collect();
        bgla::core::spec::check_comparability(&decisions).expect("edited schedule broke safety");
    }
    println!("\nRecord → replay → edit: deterministic down to the message, every time.");
}
