//! Quickstart: four processes run one-shot Byzantine Lattice Agreement
//! (WTS) over the power-set lattice of Figure 1, then the decided chain
//! is rendered on the paper's Hasse diagram.
//!
//! Run with: `cargo run --example quickstart`

use bgla::core::{spec, wts::WtsProcess, SystemConfig};
use bgla::lattice::{hasse, SetLattice};
use bgla::simnet::SimulationBuilder;

fn main() {
    // Figure 1's setting: clients issued add(1)..add(4); each process
    // proposes one update.
    let config = SystemConfig::new(4, 1);
    let mut builder = SimulationBuilder::new();
    for i in 0..4 {
        builder = builder.add(Box::new(WtsProcess::new(i, config, i as u64 + 1)));
    }
    let mut sim = builder.build();
    let outcome = sim.run(1_000_000);
    assert!(outcome.quiescent, "the protocol must terminate");

    println!("WTS with n = 4, f = 1 (all correct), inputs {{1}},{{2}},{{3}},{{4}}\n");
    let mut decisions = Vec::new();
    for i in 0..4 {
        let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
        let d = p.decision.clone().expect("liveness");
        println!(
            "  p{i} proposed {{{}}}  ->  decided {:?}  ({} message delays, {} refinements)",
            i + 1,
            d,
            p.decision_depth.unwrap(),
            p.refinements
        );
        decisions.push(d);
    }

    spec::check_comparability(&decisions).expect("decisions form a chain");
    println!("\nAll decisions are pairwise comparable (they lie on one chain).\n");

    // Render the chain on the power-set Hasse diagram, like the red
    // edges of Figure 1.
    let chain: Vec<SetLattice<u64>> = decisions
        .iter()
        .map(|d| SetLattice::from_iter(d.iter().copied()))
        .collect();
    println!("Hasse diagram of 2^{{1,2,3,4}} (decided elements marked *):\n");
    print!("{}", hasse::render_power_set(&[1u64, 2, 3, 4], &chain));

    println!(
        "\nTotal messages: {}   (per process worst case: {})",
        sim.metrics().total_sent(),
        sim.metrics().max_sent_per_process()
    );
}
