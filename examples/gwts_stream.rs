//! Generalized Lattice Agreement as a stream: processes receive inputs
//! continuously (batched per round), decide an ever-growing chain, and a
//! round-jumping Byzantine process fails to clog the rounds thanks to
//! the `Safe_r` trust rule.
//!
//! Run with: `cargo run --example gwts_stream`

use bgla::core::gwts::{GwtsMsg, GwtsProcess};
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{Context, Process, RandomScheduler, SimulationBuilder};
use std::any::Any;
use std::collections::BTreeMap;

/// Byzantine proposer that pretends to be many rounds ahead: floods
/// ack requests for future rounds hoping acceptors chase it.
struct RoundJumper;
impl Process<GwtsMsg<u64>> for RoundJumper {
    fn on_start(&mut self, ctx: &mut Context<GwtsMsg<u64>>) {
        for round in 5..20 {
            ctx.broadcast(GwtsMsg::AckReq {
                proposed: bgla::core::SetUpdate::Full(bgla::core::ValueSet::new()),
                ts: round * 100,
                round,
            });
        }
    }
    fn on_message(&mut self, _f: usize, _m: GwtsMsg<u64>, _c: &mut Context<GwtsMsg<u64>>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn main() {
    let (n, f, rounds) = (4usize, 1usize, 5u64);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(7)));
    for i in 0..3 {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds - 2 {
            schedule.insert(r, vec![(i as u64 + 1) * 100 + r]);
        }
        b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
    }
    b = b.add(Box::new(RoundJumper));
    let mut sim = b.build();
    let outcome = sim.run(100_000_000);
    assert!(outcome.quiescent);

    println!("GWTS stream: n = 4, f = 1, Byzantine round-jumper at p3, {rounds} rounds\n");
    let mut seqs = Vec::new();
    for i in 0..3 {
        let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
        println!("p{i} decision chain:");
        for (r, d) in p.decisions.iter().enumerate() {
            println!("  round {r}: {d:?} (depth {})", p.decision_depths[r]);
        }
        assert_eq!(p.decisions.len(), rounds as usize, "liveness per round");
        seqs.push(p.decisions.clone());
        println!();
    }
    spec::check_local_stability(&seqs).expect("non-decreasing chains");
    spec::check_global_comparability(&seqs).expect("cross-process comparability");
    println!(
        "Despite the round-jumper, every correct process decided all {rounds} rounds;\n\
         future-round requests were ignored until their rounds became trusted (Safe_r)."
    );
    println!(
        "\nMessages: total {}, per-decision ≈ {}",
        sim.metrics().total_sent(),
        sim.metrics().total_sent() / (3 * rounds)
    );
}
