//! Section 8 in action: the signature-based SbS algorithm (real Ed25519,
//! implemented from scratch in `bgla-crypto`) against WTS, comparing
//! message counts and bytes on the wire — the paper's
//! quadratic-vs-linear trade, and its cost in message *size*.
//!
//! Run with: `cargo run --release --example signature_mode`

use bgla::core::harness::wts_system;
use bgla::core::{sbs::SbsProcess, SystemConfig};
use bgla::simnet::{FifoScheduler, SimulationBuilder};

fn main() {
    println!("WTS (authenticated channels) vs SbS (Ed25519 signatures), f = 1\n");
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>14} {:>14}",
        "n", "WTS msg/proc", "SbS msg/proc", "WTS bytes", "SbS bytes", "WTS max msg", "SbS max msg"
    );
    println!("{}", "-".repeat(96));

    for n in [4usize, 7, 10, 13] {
        let f = 1;
        // --- WTS ---
        let (mut wts_sim, _) = wts_system(n, f, |i| i as u64, Box::new(FifoScheduler::new()));
        wts_sim.run(100_000_000);
        let wts_m = wts_sim.metrics().max_sent_per_process();
        let wts_b = wts_sim.metrics().total_bytes();
        let wts_big = wts_sim.metrics().max_message_bytes;

        // --- SbS ---
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new();
        for i in 0..n {
            b = b.add(Box::new(SbsProcess::new(i, config, i as u64)));
        }
        let mut sbs_sim = b.build();
        sbs_sim.run(100_000_000);
        let sbs_m = sbs_sim.metrics().max_sent_per_process();
        let sbs_b = sbs_sim.metrics().total_bytes();
        let sbs_big = sbs_sim.metrics().max_message_bytes;

        // Check everyone decided.
        for i in 0..n {
            assert!(sbs_sim
                .process_as::<SbsProcess<u64>>(i)
                .unwrap()
                .decision
                .is_some());
        }

        println!(
            "{n:>4} | {wts_m:>12} {sbs_m:>12} | {wts_b:>12} {sbs_b:>12} | {wts_big:>14} {sbs_big:>14}"
        );
    }

    println!(
        "\nShape check (paper, Sections 5.1.3 and 8.1): WTS messages per process grow\n\
         quadratically in n (reliable broadcast), SbS linearly — while SbS messages are\n\
         much larger (they carry O(n²)-sized proofs of safety). The crossover in total\n\
         bytes favors WTS for small values and SbS when message *count* is the scarce\n\
         resource."
    );
}
