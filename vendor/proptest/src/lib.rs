//! Offline stand-in for `proptest` (no network in this build
//! environment). Supports the surface the workspace's property tests
//! use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * integer-range strategies (`0u64..1_000_000`, `1usize..=2`),
//! * `Just`, `prop_oneof!`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Sampling is **deterministic**: case `k` of test body hash `h` always
//! draws the same values, so CI failures reproduce locally. There is no
//! shrinking — failures report the sampled arguments instead (each
//! sampled argument is printed on panic via a bundled message).

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `id_hash`.
    pub fn for_case(id_hash: u64, case: u64) -> TestRng {
        TestRng {
            state: id_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test-identity string, used to key the per-test stream.
pub fn id_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. Object-safe so `prop_oneof!` can erase arms.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical full-range generator (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let n = (rng.next_u64() % 9) as usize;
        (0..n).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Full-range strategy for an [`Arbitrary`] type, as returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Samples any value of `T` (the `proptest::arbitrary::any` entry point).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (the `proptest::collection` subset in use).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Samples vectors of `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

/// Uniform choice between boxed strategy arms (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; at least one arm required.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() as usize) % self.arms.len();
        self.arms[idx].sample(rng)
    }
}

/// Runner configuration (only `cases` is consulted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Config with the given case count (rest default).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The `proptest::prelude`, as the tests import it.
pub mod prelude {
    pub use crate::{
        any, id_hash, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Skips the rest of the case when the assumption fails (no retry: the
/// case simply counts as passed, which is sound for the sampled-runner
/// model here).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The property-test declaration macro. Supports both argument forms:
/// `arg in strategy` and `arg: Type` (the latter samples
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // --- one test with `arg in strategy` arguments ---
    (
        @one ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ ) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let h = $crate::id_hash(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(h, case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let label = format!(
                    concat!("case {} of ", stringify!($name), "(",
                        $(stringify!($arg), " = {:?}, ",)+ ")"),
                    case, $(&$arg),+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(e) = result {
                    eprintln!("proptest failure in {label}");
                    std::panic::resume_unwind(e);
                }
            }
        }
    };
    // --- muncher over the test list ---
    ( @tests ($cfg:expr) ) => {};
    (
        @tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!{ @one ($cfg) $(#[$meta])* fn $name( $($arg in $strat),+ ) $body }
        $crate::proptest!{ @tests ($cfg) $($rest)* }
    };
    (
        @tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident : $ty:ty),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!{ @one ($cfg) $(#[$meta])* fn $name( $($arg in $crate::any::<$ty>()),+ ) $body }
        $crate::proptest!{ @tests ($cfg) $($rest)* }
    };
    // --- entry points ---
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!{ @tests ($cfg) $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!{ @tests ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case(1, 2);
        for _ in 0..200 {
            let x = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(1usize..=2), &mut rng);
            assert!((1..=2).contains(&y));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(9, 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map(|c| Strategy::sample(&(0u64..1000), &mut TestRng::for_case(7, c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| Strategy::sample(&(0u64..1000), &mut TestRng::for_case(7, c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: metas pass through, args bind, asserts work.
        #[test]
        fn macro_roundtrip(x in 0u64..100, y in 1usize..=3) {
            prop_assert!(x < 100);
            prop_assert_eq!(y.min(3), y, "y = {}", y);
        }
    }
}
