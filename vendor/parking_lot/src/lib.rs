//! Offline stand-in for `parking_lot` (no network in this build
//! environment). Provides `Mutex` with the parking_lot calling
//! convention — `lock()` returns the guard directly — implemented over
//! `std::sync::Mutex`, recovering from poisoning instead of panicking.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, returning the guard (poisoning is ignored:
    /// the protected data is still returned, as parking_lot does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn default_and_into_inner() {
        let m: Mutex<Vec<u64>> = Mutex::default();
        m.lock().push(9);
        assert_eq!(m.into_inner(), vec![9]);
    }
}
