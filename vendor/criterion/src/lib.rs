//! Offline stand-in for `criterion` (no network in this build
//! environment). Implements the API subset the workspace's benches use
//! — groups, `bench_with_input`, `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!` —
//! measuring wall-clock time with `std::time::Instant`.
//!
//! Each benchmark takes `sample_size` samples (default 20); a sample
//! runs the closure enough times to cover ~5 ms, and the per-iteration
//! median across samples is reported. Set the `CRITERION_JSON`
//! environment variable to a path to additionally dump all results as a
//! JSON array — that is how `BENCH_valueset.json` is produced.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer value sink (subset of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name ("" for ungrouped `bench_function` calls).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Total iterations executed across all samples.
    pub iters: u64,
    /// Declared throughput unit, if any.
    pub throughput: Option<Throughput>,
}

/// Throughput declaration (printed, not otherwise used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter(16)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new<S: Display, P: Display>(name: S, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Filled by `iter`.
    result_ns: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Measures `f`, storing per-iteration timings.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up & calibration: find an iteration count covering ~5 ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let per_sample = (5_000_000 / once).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / per_sample as f64;
            self.result_ns.push(ns);
            self.total_iters += per_sample;
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: Vec::new(),
            total_iters: 0,
        };
        f(&mut b, input);
        self.criterion.record(&self.name, &id.0, b, self.throughput);
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        self.criterion.record(&self.name, name, b, self.throughput);
        self
    }

    /// Ends the group (results are recorded eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    /// All results recorded so far.
    pub results: Vec<BenchResult>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.default_sample_size,
            result_ns: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        self.record("", name, b, None);
        self
    }

    fn record(&mut self, group: &str, id: &str, b: Bencher, throughput: Option<Throughput>) {
        let mut ns = b.result_ns;
        assert!(!ns.is_empty(), "Bencher::iter was never called");
        ns.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let median_ns = ns[ns.len() / 2];
        let min_ns = ns[0];
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{label:<44} median {:>12}  min {:>12}",
            fmt_ns(median_ns),
            fmt_ns(min_ns)
        );
        self.results.push(BenchResult {
            group: group.to_string(),
            id: id.to_string(),
            median_ns,
            min_ns,
            iters: b.total_iters,
            throughput,
        });
    }

    /// Writes all recorded results as a JSON array to `path`.
    pub fn export_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let tp = match r.throughput {
                Some(Throughput::Bytes(b)) => format!(r#", "throughput_bytes": {b}"#),
                Some(Throughput::Elements(e)) => format!(r#", "throughput_elements": {e}"#),
                None => String::new(),
            };
            out.push_str(&format!(
                r#"  {{"group": "{}", "id": "{}", "median_ns": {:.1}, "min_ns": {:.1}, "iters": {}{}}}"#,
                r.group, r.id, r.median_ns, r.min_ns, r.iters, tp
            ));
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    /// Honors the `CRITERION_JSON` env var; called by `criterion_main!`.
    pub fn maybe_export_from_env(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                match self.export_json(&path) {
                    Ok(()) => println!("results written to {path}"),
                    Err(e) => eprintln!("CRITERION_JSON export to {path} failed: {e}"),
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($bench(c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.maybe_export_from_env();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn records_and_exports() {
        let mut c = Criterion::default();
        trivial(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.median_ns > 0.0));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        c.export_json(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"group\": \"g\""));
        assert!(body.trim_start().starts_with('['));
    }
}
