//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no network access, so the real `rand`
//! cannot be fetched. This crate provides the (tiny) API subset the
//! workspace uses: a seedable deterministic RNG and uniform range
//! sampling. The generator is xoshiro256**, seeded via splitmix64 —
//! statistically solid for schedule exploration, NOT cryptographic.
//!
//! Determinism contract: the same seed always produces the same stream
//! (the simulator's record/replay and seeded tests rely on this). The
//! stream differs from the real `rand`'s `StdRng`, which is fine: no
//! test encodes concrete expected schedules, only per-seed stability.

/// Seedable RNG construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait RangeSample: Copy {
    /// Uniform sample in `[lo, hi)` given a raw 64-bit draw source.
    fn sample(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128) - (lo as u128);
                // Modulo bias is negligible for span << 2^64 (the
                // simulator's ranges are tiny) and irrelevant for
                // schedule exploration.
                lo + ((draw() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_sample!(usize, u64, u32, u16, u8);

/// Random value generation, mirroring the `rand::Rng` subset in use.
pub trait Rng {
    /// Raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample(range.start, range.end, &mut draw)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(0usize..7);
            assert!(x < 7);
        }
        // Every bucket of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
