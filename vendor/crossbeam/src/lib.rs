//! Offline stand-in for `crossbeam` (no network in this build
//! environment). Provides the `channel` subset the threaded runner uses
//! (delegating to `std::sync::mpsc`) and the `thread::scope` subset the
//! sharded experiment driver uses (delegating to `std::thread::scope`).

/// Scoped threads with the crossbeam surface used by the workspace:
/// `thread::scope(|s| { s.spawn(...); ... })` returning `Ok(result)`.
/// Borrowed (non-`'static`) captures are allowed, as with the real
/// crossbeam; panics in spawned threads propagate on implicit join.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a scope handle; all threads spawned through it are
    /// joined before `scope` returns. The `Result` wrapper mirrors
    /// crossbeam's signature (std's scope re-raises child panics, so the
    /// error arm is never produced here).
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// MPSC channels with the crossbeam surface used by the workspace.
pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvTimeoutError, SendError};
    use std::time::Duration;

    /// Sending half (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41u64).unwrap();
        tx.clone().send(42u64).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 42);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(7u64).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        h.join().unwrap();
    }
}
