//! Offline stand-in for `crossbeam` (no network in this build
//! environment). Only the `channel` module subset the threaded runner
//! uses is provided, delegating to `std::sync::mpsc`.

/// MPSC channels with the crossbeam surface used by the workspace.
pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvTimeoutError, SendError};
    use std::time::Duration;

    /// Sending half (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41u64).unwrap();
        tx.clone().send(42u64).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 42);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(7u64).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        h.join().unwrap();
    }
}
