//! Ablation differential: `with_proof_interning(false)` must change
//! *nothing observable* — identical delivery traces, metrics and
//! decisions — across honest and adversarial schedules for both
//! signature algorithms. The cache only memoizes deterministic verdicts;
//! these runs pin that it never changes a verdict.

use bgla::core::adversary::sbs::{ConflictSigner, ProofForger};
use bgla::core::gsbs::{GsbsMsg, GsbsProcess};
use bgla::core::sbs::{SbsMsg, SbsProcess};
use bgla::core::SystemConfig;
use bgla::simnet::{Process, RandomScheduler, Simulation, SimulationBuilder};
use std::collections::BTreeMap;

fn run_sbs(
    seed: u64,
    interning: bool,
    adversary: Option<Box<dyn Process<SbsMsg<u64>>>>,
) -> Simulation<SbsMsg<u64>> {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let correct = if adversary.is_some() { n - 1 } else { n };
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..correct {
        b = b.add(Box::new(
            SbsProcess::new(i, config, 10 + i as u64).with_proof_interning(interning),
        ));
    }
    if let Some(adv) = adversary {
        b = b.add(adv);
    }
    let mut sim = b.build();
    sim.enable_trace();
    let out = sim.run(10_000_000);
    assert!(out.quiescent, "seed {seed}");
    sim
}

fn assert_same_sbs_run(seed: u64, mk: impl Fn() -> Option<Box<dyn Process<SbsMsg<u64>>>>) {
    let with = run_sbs(seed, true, mk());
    let without = run_sbs(seed, false, mk());
    assert_eq!(
        with.trace().unwrap().events(),
        without.trace().unwrap().events(),
        "seed {seed}: traces diverged"
    );
    assert_eq!(with.metrics(), without.metrics(), "seed {seed}: metrics");
    let correct = if mk().is_some() { 3 } else { 4 };
    for i in 0..correct {
        let a = with.process_as::<SbsProcess<u64>>(i).unwrap();
        let b = without.process_as::<SbsProcess<u64>>(i).unwrap();
        assert_eq!(a.decision, b.decision, "seed {seed} p{i}: decisions");
        // The cache did real work on the interned side of honest runs.
        assert_eq!(b.proof_cache_stats(), (0, 0));
    }
}

#[test]
fn sbs_interning_is_invisible_on_honest_runs() {
    for seed in 0..4 {
        assert_same_sbs_run(seed, || None);
    }
}

#[test]
fn sbs_interning_is_invisible_under_proof_forgery() {
    for seed in 0..4 {
        assert_same_sbs_run(seed, || {
            Some(Box::new(ProofForger {
                me: 3,
                value: 999_999u64,
            }))
        });
    }
}

#[test]
fn sbs_interning_is_invisible_under_conflict_signing() {
    for seed in 0..4 {
        assert_same_sbs_run(seed, || {
            Some(Box::new(ConflictSigner {
                me: 3,
                a: 666u64,
                b: 777u64,
            }))
        });
    }
}

fn run_gsbs(seed: u64, interning: bool) -> Simulation<GsbsMsg<u64>> {
    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        schedule.insert(0, vec![100 + i as u64]);
        b = b.add(Box::new(
            GsbsProcess::new(i, config, schedule, rounds).with_proof_interning(interning),
        ));
    }
    let mut sim = b.build();
    sim.enable_trace();
    let out = sim.run(50_000_000);
    assert!(out.quiescent, "seed {seed}");
    sim
}

#[test]
fn gsbs_interning_is_invisible() {
    for seed in 0..3 {
        let with = run_gsbs(seed, true);
        let without = run_gsbs(seed, false);
        assert_eq!(
            with.trace().unwrap().events(),
            without.trace().unwrap().events(),
            "seed {seed}: traces diverged"
        );
        assert_eq!(with.metrics(), without.metrics(), "seed {seed}: metrics");
        for i in 0..4 {
            let a = with.process_as::<GsbsProcess<u64>>(i).unwrap();
            let b = without.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(a.decisions, b.decisions, "seed {seed} p{i}");
            assert_eq!(b.proof_cache_stats(), (0, 0));
        }
    }
}
