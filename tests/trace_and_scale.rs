//! Delivery-trace assertions (message-flow *shape*, not just outcomes)
//! and larger-scale adversarial runs.

use bgla::core::adversary::{ChaosMonkey, Equivocator, Silent};
use bgla::core::harness::{assert_la_spec, wts_report, wts_system_with_adversaries};
use bgla::core::wts::WtsProcess;
use bgla::core::SystemConfig;
use bgla::simnet::{FifoScheduler, RandomScheduler, SimulationBuilder};

/// The disclosure phase dominates: reliable-broadcast traffic should be
/// the bulk of all deliveries in an honest run (that's where the O(n²)
/// comes from — checked here at the message-flow level).
#[test]
fn trace_shows_rbcast_dominates_wts() {
    let config = SystemConfig::new(4, 1);
    let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
    for i in 0..4 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    let mut sim = b.build();
    sim.enable_trace();
    assert!(sim.run(1_000_000).quiescent);
    let trace = sim.trace().expect("tracing enabled");
    assert_eq!(trace.len() as u64, sim.metrics().delivered);
    let rb: usize = ["rb_init", "rb_echo", "rb_ready"]
        .iter()
        .map(|k| trace.of_kind(k).count())
        .sum();
    let total = trace.len();
    assert!(
        rb * 2 > total,
        "reliable broadcast should be most of the traffic: {rb}/{total}"
    );
    // Decision-phase traffic exists too.
    assert!(trace.of_kind("ack_req").count() >= 4);
    assert!(trace.of_kind("ack").count() >= 12);
    // Depth recorded in the trace matches the simulation clocks.
    let max_clock = (0..4).map(|i| sim.depth_of(i)).max().unwrap();
    assert_eq!(trace.max_depth(), max_clock);
}

/// Bigger systems, mixed adversaries: n = 13, f = 4, with four distinct
/// Byzantine behaviors at once.
#[test]
fn large_system_mixed_adversaries() {
    for seed in 0..3u64 {
        let (n, f) = (13usize, 4usize);
        let (mut sim, config, byz) = wts_system_with_adversaries(
            n,
            f,
            |i| i as u64,
            Box::new(RandomScheduler::new(seed)),
            |i, _| match i {
                9 => Some(Box::new(Silent::default()) as _),
                10 => Some(Box::new(Equivocator {
                    a: 91_001u64,
                    b: 91_002u64,
                }) as _),
                11 => Some(Box::new(ChaosMonkey::new(seed * 7 + 1)) as _),
                12 => Some(Box::new(ChaosMonkey::new(seed * 11 + 5)) as _),
                _ => None,
            },
        );
        let out = sim.run(200_000_000);
        assert!(out.quiescent, "seed {seed}");
        let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
        let report = wts_report(&sim, &correct);
        let inputs: std::collections::BTreeSet<u64> = correct.iter().map(|&i| i as u64).collect();
        assert_la_spec(&report, &inputs, config.f);
        for d in &report.decisions {
            assert!(
                !(d.contains(&91_001) && d.contains(&91_002)),
                "seed {seed}: equivocation leaked at scale"
            );
        }
    }
}
