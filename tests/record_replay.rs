//! Schedule record/replay: any run under any scheduler can be recorded
//! and replayed bit-identically — the mechanism for reproducing (and
//! hand-shrinking) schedule-dependent counterexamples.

use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::SystemConfig;
use bgla::core::ValueSet;
use bgla::simnet::{
    RandomScheduler, RecordingScheduler, ReplayScheduler, Scheduler, Simulation, SimulationBuilder,
};

fn build(scheduler: Box<dyn Scheduler>) -> Simulation<WtsMsg<u64>> {
    let config = SystemConfig::new(4, 1);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..4 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b.build()
}

fn outcomes(sim: &Simulation<WtsMsg<u64>>) -> (u64, Vec<Option<ValueSet<u64>>>, Vec<u64>) {
    (
        sim.metrics().total_sent(),
        (0..4)
            .map(|i| {
                sim.process_as::<WtsProcess<u64>>(i)
                    .unwrap()
                    .decision
                    .clone()
            })
            .collect(),
        (0..4).map(|i| sim.depth_of(i)).collect(),
    )
}

#[test]
fn recorded_wts_run_replays_bit_identically() {
    for seed in [7u64, 99, 1234] {
        // Record a randomized run.
        let (rec, trace) = RecordingScheduler::new(Box::new(RandomScheduler::new(seed)));
        let mut original = build(Box::new(rec));
        assert!(original.run(u64::MAX / 2).quiescent);
        let want = outcomes(&original);

        // Replay the exact schedule.
        let mut replayed = build(Box::new(ReplayScheduler::new(trace.lock().clone())));
        assert!(replayed.run(u64::MAX / 2).quiescent);
        assert_eq!(outcomes(&replayed), want, "seed {seed}: replay diverged");
    }
}

#[test]
fn empty_trace_falls_back_to_fifo_preserving_liveness() {
    let mut replayed = build(Box::new(ReplayScheduler::new(Vec::new())));
    assert!(replayed.run(u64::MAX / 2).quiescent);
    let (_, decisions, _) = outcomes(&replayed);
    for d in decisions {
        assert!(d.is_some(), "replay fallback broke liveness");
    }
}

#[test]
fn trace_with_one_missing_seq_resyncs() {
    // Drop a single mid-trace entry. The replay scheduler must resync
    // after the gap instead of counting every later delivery as a
    // divergence (the pre-fix behavior left the unmatched entry at the
    // front forever, degrading the whole tail to FIFO).
    let (rec, trace) = RecordingScheduler::new(Box::new(RandomScheduler::new(7)));
    let mut original = build(Box::new(rec));
    assert!(original.run(u64::MAX / 2).quiescent);

    let mut gapped: Vec<u64> = trace.lock().clone();
    let total = gapped.len() as u64;
    gapped.remove(gapped.len() / 2);

    let mut replayed = build(Box::new(ReplayScheduler::new(gapped)));
    assert!(replayed.run(u64::MAX / 2).quiescent);
    let (_, decisions, _) = outcomes(&replayed);
    let concrete: Vec<ValueSet<u64>> = decisions.into_iter().map(|d| d.unwrap()).collect();
    bgla::core::spec::check_comparability(&concrete).unwrap();

    let divergences = replayed
        .scheduler_as::<ReplayScheduler>()
        .expect("scheduler type")
        .divergences;
    assert!(
        divergences < total / 2,
        "replay never resynced: {divergences} divergences over {total} deliveries"
    );
}

#[test]
fn truncated_trace_degrades_gracefully() {
    let (rec, trace) = RecordingScheduler::new(Box::new(RandomScheduler::new(42)));
    let mut original = build(Box::new(rec));
    original.run(u64::MAX / 2);
    // Replay only the first half of the schedule; the rest falls back to
    // FIFO. The run must still terminate with the full spec intact.
    let half: Vec<u64> = {
        let t = trace.lock();
        t[..t.len() / 2].to_vec()
    };
    let mut partial = build(Box::new(ReplayScheduler::new(half)));
    assert!(partial.run(u64::MAX / 2).quiescent);
    let (_, decisions, _) = outcomes(&partial);
    let concrete: Vec<ValueSet<u64>> = decisions.into_iter().map(|d| d.unwrap()).collect();
    bgla::core::spec::check_comparability(&concrete).unwrap();
}
