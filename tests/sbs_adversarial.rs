//! Adversarial end-to-end runs of the signature-based algorithm:
//! conflict-signing, proof forgery, bogus delta references and silence,
//! across random schedules.

use bgla::core::adversary::sbs::{BogusRefSender, ConflictSigner, ProofForger, SilentS};
use bgla::core::sbs::{SbsMsg, SbsProcess};
use bgla::core::{spec, SystemConfig};
use bgla::core::{ProvenUpdate, ValueSet};
use bgla::simnet::{Context, Process, RandomScheduler, Simulation, SimulationBuilder};
use std::any::Any;

type Msg = bgla::core::sbs::SbsMsg<u64>;

fn run_with_adversary(
    seed: u64,
    adversary: Box<dyn Process<Msg>>,
) -> (Simulation<Msg>, Vec<usize>) {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..n - 1 {
        b = b.add(Box::new(SbsProcess::new(i, config, 10 + i as u64)));
    }
    b = b.add(adversary);
    let mut sim = b.build();
    let out = sim.run(10_000_000);
    assert!(out.quiescent, "seed {seed}: no quiescence");
    (sim, (0..n - 1).collect())
}

fn check_safety(sim: &Simulation<Msg>, correct: &[usize], label: &str) -> Vec<ValueSet<u64>> {
    let mut decisions = Vec::new();
    let mut pairs = Vec::new();
    for &i in correct {
        let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
        if let Some(d) = &p.decision {
            decisions.push(d.clone());
            pairs.push((p.proposal, d.clone()));
        }
    }
    spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("{label}: {e}"));
    spec::check_inclusivity(&pairs).unwrap_or_else(|e| panic!("{label}: {e}"));
    decisions
}

#[test]
fn conflict_signer_injects_at_most_one_value() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(
            seed,
            Box::new(ConflictSigner {
                me: 3,
                a: 666u64,
                b: 777u64,
            }),
        );
        let decisions = check_safety(&sim, &correct, &format!("conflict seed {seed}"));
        for d in &decisions {
            assert!(
                !(d.contains(&666) && d.contains(&777)),
                "seed {seed}: Lemma 13 violated — both conflicting values safe"
            );
        }
        // Liveness: correct processes decide despite the conflicting
        // inits (the conflicted pair is pruned from safety sets).
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
    }
}

#[test]
fn proof_forger_never_corrupts_decisions() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(
            seed,
            Box::new(ProofForger {
                me: 3,
                value: 999_999u64,
            }),
        );
        let decisions = check_safety(&sim, &correct, &format!("forger seed {seed}"));
        for d in &decisions {
            assert!(
                !d.contains(&999_999),
                "seed {seed}: a forged proof of safety was accepted"
            );
        }
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
    }
}

#[test]
fn bogus_delta_references_resync_without_violating_safety() {
    // The delta-gap schedule search: an adversary shipping deltas whose
    // references and bases cannot resolve (forged-proof ids included)
    // must be detected as a gap on every delivery. Honest processes
    // answer with resync requests, survive the adversary's Full
    // fallback (AllSafe rejects its forged content), keep deciding, and
    // never absorb the poison value.
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(seed, Box::new(BogusRefSender::new(3, 31_337u64)));
        let decisions = check_safety(&sim, &correct, &format!("bogus-ref seed {seed}"));
        for d in &decisions {
            assert!(
                !d.contains(&31_337),
                "seed {seed}: a bogus-reference payload was accepted"
            );
        }
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
        // The fallback ran end-to-end: gaps were detected (resyncs
        // sent by honest processes) and answered (the adversary saw
        // them and replied Full).
        let resyncs = sim
            .metrics()
            .sent_by_kind
            .get("resync")
            .copied()
            .unwrap_or(0);
        assert!(resyncs > 0, "seed {seed}: no gap was ever detected");
        let adv = sim.process_as::<BogusRefSender<u64>>(3).unwrap();
        assert!(
            adv.resyncs_seen > 0,
            "seed {seed}: resync requests never reached the sender"
        );
    }
}

/// A scripted peer that feeds one honest acceptor a delta referencing a
/// proof it cannot resolve, then honors the resync request with the
/// full payload — the cooperative (non-Byzantine-content) resync round
/// trip, pinned hop by hop.
struct GapThenFull {
    payload: bgla::core::SignedSet<bgla::core::sbs::ProvenValue<u64>>,
    resynced: bool,
    acked: bool,
}

impl Process<SbsMsg<u64>> for GapThenFull {
    fn on_start(&mut self, ctx: &mut Context<SbsMsg<u64>>) {
        let refs = self.payload.iter().map(|pv| pv.proof.id()).collect();
        ctx.send(
            0,
            SbsMsg::AckReq {
                proposed: ProvenUpdate::Delta {
                    base_ts: 0,
                    new: self.payload.clone(),
                    refs,
                },
                ts: 1,
            },
        );
    }
    fn on_message(&mut self, _from: usize, msg: SbsMsg<u64>, ctx: &mut Context<SbsMsg<u64>>) {
        match msg {
            SbsMsg::Resync { ts } => {
                self.resynced = true;
                ctx.send(
                    0,
                    SbsMsg::AckReq {
                        proposed: ProvenUpdate::Full(self.payload.clone()),
                        ts,
                    },
                );
            }
            SbsMsg::Ack { ts: 1, .. } => {
                self.acked = true;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn resync_round_trip_recovers_a_valid_payload() {
    // Build a *well-formed* proven value (a real quorum of safe-acks),
    // but deliver it first as an unresolvable reference: the acceptor
    // must gap → resync → accept the Full resend → ack.
    use bgla::core::proof::Proof;
    use bgla::core::sbs::{ProvenValue, SafeAckBody, SignedSafeAck, SignedValue};
    use bgla::crypto::Keypair;

    let config = SystemConfig::new(4, 1);
    let sv = SignedValue::sign(42u64, 1, &Keypair::for_process(1));
    let rcvd: bgla::core::SignedSet<SignedValue<u64>> = [sv.clone()].into_iter().collect();
    let acks: Vec<SignedSafeAck<u64>> = [1usize, 2, 3]
        .iter()
        .map(|&s| {
            SignedSafeAck::sign(
                SafeAckBody {
                    rcvd: rcvd.clone(),
                    conflicts: vec![],
                },
                s,
                &Keypair::for_process(s),
            )
        })
        .collect();
    let payload: bgla::core::SignedSet<ProvenValue<u64>> = [ProvenValue {
        sv,
        proof: Proof::new(acks),
    }]
    .into_iter()
    .collect();

    let mut sim = SimulationBuilder::new()
        .add(Box::new(SbsProcess::new(0, config, 7u64)))
        .add(Box::new(GapThenFull {
            payload,
            resynced: false,
            acked: false,
        }))
        .add(Box::new(SilentS::default()))
        .add(Box::new(SilentS::default()))
        .build();
    assert!(sim.run(100_000).quiescent);
    let feeder = sim.process_as::<GapThenFull>(1).unwrap();
    assert!(feeder.resynced, "the gap must be answered with a resync");
    assert!(
        feeder.acked,
        "the Full fallback must be consumed and acked — the reference \
         pipeline recovered end-to-end"
    );
}

#[test]
fn silent_process_does_not_block_sbs() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(seed, Box::new(SilentS::default()));
        let decisions = check_safety(&sim, &correct, &format!("silent seed {seed}"));
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
        // Non-triviality: only correct inputs can appear (the silent one
        // contributed nothing).
        let inputs: std::collections::BTreeSet<u64> =
            correct.iter().map(|&i| 10 + i as u64).collect();
        spec::check_nontriviality(&inputs, &decisions, 1)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
