//! Adversarial end-to-end runs of the signature-based algorithm:
//! conflict-signing, proof forgery and silence, across random schedules.

use bgla::core::adversary::sbs::{ConflictSigner, ProofForger, SilentS};
use bgla::core::sbs::SbsProcess;
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{Process, RandomScheduler, Simulation, SimulationBuilder};

type Msg = bgla::core::sbs::SbsMsg<u64>;

fn run_with_adversary(
    seed: u64,
    adversary: Box<dyn Process<Msg>>,
) -> (Simulation<Msg>, Vec<usize>) {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..n - 1 {
        b = b.add(Box::new(SbsProcess::new(i, config, 10 + i as u64)));
    }
    b = b.add(adversary);
    let mut sim = b.build();
    let out = sim.run(10_000_000);
    assert!(out.quiescent, "seed {seed}: no quiescence");
    (sim, (0..n - 1).collect())
}

fn check_safety(sim: &Simulation<Msg>, correct: &[usize], label: &str) -> Vec<ValueSet<u64>> {
    let mut decisions = Vec::new();
    let mut pairs = Vec::new();
    for &i in correct {
        let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
        if let Some(d) = &p.decision {
            decisions.push(d.clone());
            pairs.push((p.proposal, d.clone()));
        }
    }
    spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("{label}: {e}"));
    spec::check_inclusivity(&pairs).unwrap_or_else(|e| panic!("{label}: {e}"));
    decisions
}

#[test]
fn conflict_signer_injects_at_most_one_value() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(
            seed,
            Box::new(ConflictSigner {
                me: 3,
                a: 666u64,
                b: 777u64,
            }),
        );
        let decisions = check_safety(&sim, &correct, &format!("conflict seed {seed}"));
        for d in &decisions {
            assert!(
                !(d.contains(&666) && d.contains(&777)),
                "seed {seed}: Lemma 13 violated — both conflicting values safe"
            );
        }
        // Liveness: correct processes decide despite the conflicting
        // inits (the conflicted pair is pruned from safety sets).
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
    }
}

#[test]
fn proof_forger_never_corrupts_decisions() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(
            seed,
            Box::new(ProofForger {
                me: 3,
                value: 999_999u64,
            }),
        );
        let decisions = check_safety(&sim, &correct, &format!("forger seed {seed}"));
        for d in &decisions {
            assert!(
                !d.contains(&999_999),
                "seed {seed}: a forged proof of safety was accepted"
            );
        }
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
    }
}

#[test]
fn silent_process_does_not_block_sbs() {
    for seed in 0..6 {
        let (sim, correct) = run_with_adversary(seed, Box::new(SilentS::default()));
        let decisions = check_safety(&sim, &correct, &format!("silent seed {seed}"));
        assert_eq!(decisions.len(), correct.len(), "seed {seed}: liveness");
        // Non-triviality: only correct inputs can appear (the silent one
        // contributed nothing).
        let inputs: std::collections::BTreeSet<u64> =
            correct.iter().map(|&i| 10 + i as u64).collect();
        spec::check_nontriviality(&inputs, &decisions, 1)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
