//! E1 as a test: the `n ≥ 3f + 1` bound of Theorem 1, in three acts
//! (the `exp_necessity` binary prints the same runs as a table).

use bgla::core::adversary::{Silent, SplitBrain};
use bgla::core::wts::WtsProcess;
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{FifoScheduler, SimulationBuilder, TargetedScheduler};

/// At n = 3f+1 the full spec holds even against the split-brain
/// adversary that breaks n = 3f systems.
#[test]
fn spec_holds_at_3f_plus_1_under_split_brain() {
    let config = SystemConfig::new(4, 1);
    let mut b = SimulationBuilder::new();
    for i in 0..3 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b = b.add(Box::new(SplitBrain {
        a: 666u64,
        b: 777u64,
    }));
    let mut sim = b.build();
    assert!(sim.run(10_000_000).quiescent);
    let decisions: Vec<ValueSet<u64>> = (0..3)
        .map(|i| {
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .clone()
                .expect("liveness at n=3f+1")
        })
        .collect();
    spec::check_comparability(&decisions).expect("comparability at n=3f+1");
}

/// At n = 3f, WTS (unchanged) keeps safety but cannot decide: the
/// quorum exceeds the reachable correct population.
#[test]
fn liveness_lost_at_3f() {
    let config = SystemConfig::new_unchecked(3, 1);
    let mut b = SimulationBuilder::new();
    for i in 0..2 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b = b.add(Box::new(Silent::default()));
    let mut sim = b.build();
    assert!(sim.run(10_000_000).quiescent);
    for i in 0..2 {
        assert!(
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .is_none(),
            "p{i} decided with quorum 3 > n-f = 2 reachable processes?!"
        );
    }
}

/// At n = 3f with the quorum naively lowered (f configured as 0), the
/// Theorem-1 split-brain run produces incomparable decisions.
#[test]
fn comparability_lost_at_3f_with_lowered_quorum() {
    let config = SystemConfig::new_unchecked(3, 0); // quorum 2
    let mut b = SimulationBuilder::new().scheduler(Box::new(TargetedScheduler::new(
        vec![(0, 1), (1, 0)],
        Box::new(FifoScheduler::new()),
    )));
    for i in 0..2 {
        b = b.add(Box::new(WtsProcess::new(i, config, 10 + i as u64)));
    }
    b = b.add(Box::new(SplitBrain {
        a: 666u64,
        b: 777u64,
    }));
    let mut sim = b.build();
    assert!(sim.run(10_000_000).quiescent);
    let d0 = sim
        .process_as::<WtsProcess<u64>>(0)
        .unwrap()
        .decision
        .clone()
        .expect("victim 0 decides under the lowered quorum");
    let d1 = sim
        .process_as::<WtsProcess<u64>>(1)
        .unwrap()
        .decision
        .clone()
        .expect("victim 1 decides under the lowered quorum");
    assert!(
        !d0.is_subset(&d1) && !d1.is_subset(&d0),
        "expected the Theorem-1 comparability violation, got {d0:?} vs {d1:?}"
    );
}
