//! Real-concurrency smoke tests: run WTS and SbS under the
//! thread-per-process runner (crossbeam channels, OS scheduling) to make
//! sure the algorithms don't silently depend on the deterministic
//! simulator's sequential delivery.

use bgla::core::sbs::SbsProcess;
use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::SystemConfig;
use bgla::core::ValueSet;
use bgla::simnet::threaded::run_threaded;
use bgla::simnet::Process;
use std::time::Duration;

#[test]
fn wts_agrees_under_real_threads() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let procs: Vec<Box<dyn Process<WtsMsg<u64>>>> = (0..n)
        .map(|i| Box::new(WtsProcess::new(i, config, 100 + i as u64)) as _)
        .collect();
    let (procs, outcome) = run_threaded(procs, Duration::from_secs(60));
    assert!(outcome.quiescent, "threaded run did not quiesce");
    let decisions: Vec<ValueSet<u64>> = procs
        .iter()
        .map(|p| {
            p.as_any()
                .downcast_ref::<WtsProcess<u64>>()
                .unwrap()
                .decision
                .clone()
                .expect("liveness under threads")
        })
        .collect();
    bgla::core::spec::check_comparability(&decisions).expect("comparability under threads");
    for (i, d) in decisions.iter().enumerate() {
        assert!(d.contains(&(100 + i as u64)), "inclusivity at p{i}");
    }
}

#[test]
fn sbs_agrees_under_real_threads() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let procs: Vec<Box<dyn Process<bgla::core::sbs::SbsMsg<u64>>>> = (0..n)
        .map(|i| Box::new(SbsProcess::new(i, config, i as u64)) as _)
        .collect();
    let (procs, outcome) = run_threaded(procs, Duration::from_secs(120));
    assert!(outcome.quiescent);
    let decisions: Vec<ValueSet<u64>> = procs
        .iter()
        .map(|p| {
            p.as_any()
                .downcast_ref::<SbsProcess<u64>>()
                .unwrap()
                .decision
                .clone()
                .expect("liveness under threads")
        })
        .collect();
    bgla::core::spec::check_comparability(&decisions).expect("comparability under threads");
}

#[test]
fn gwts_stream_agrees_under_real_threads() {
    use bgla::core::gwts::{GwtsMsg, GwtsProcess};
    use std::collections::BTreeMap;

    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);
    let procs: Vec<Box<dyn Process<GwtsMsg<u64>>>> = (0..n)
        .map(|i| {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            schedule.insert(0, vec![i as u64]);
            Box::new(GwtsProcess::new(i, config, schedule, rounds)) as _
        })
        .collect();
    let (procs, outcome) = run_threaded(procs, Duration::from_secs(120));
    assert!(outcome.quiescent);
    let seqs: Vec<Vec<ValueSet<u64>>> = procs
        .iter()
        .map(|p| {
            p.as_any()
                .downcast_ref::<GwtsProcess<u64>>()
                .unwrap()
                .decisions
                .clone()
        })
        .collect();
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(s.len(), rounds as usize, "p{i} missed rounds under threads");
    }
    bgla::core::spec::check_local_stability(&seqs).expect("stability under threads");
    bgla::core::spec::check_global_comparability(&seqs).expect("comparability under threads");
}
