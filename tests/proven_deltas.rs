//! Ablation differential for the delta-encoded, proof-by-reference
//! pipeline: `with_proven_deltas(false)` must change *nothing
//! observable* except wire bytes — identical decisions, identical
//! delivery shapes (step/from/to/kind/depth), identical message and
//! delivery counts — across honest and Byzantine schedules for both
//! signature algorithms. Deltas may only *shrink* the proof-carrying
//! traffic, never grow it.

use bgla::core::adversary::sbs::{BogusRefSender, ConflictSigner, ProofForger};
use bgla::core::gsbs::{GsbsMsg, GsbsProcess};
use bgla::core::sbs::{SbsMsg, SbsProcess};
use bgla::core::SystemConfig;
use bgla::simnet::{Metrics, Process, RandomScheduler, Simulation, SimulationBuilder, TraceEvent};
use std::collections::BTreeMap;

/// The delivery shape: everything a trace records except wire bytes.
fn shape(events: &[TraceEvent]) -> Vec<(u64, usize, usize, &'static str, u64)> {
    events
        .iter()
        .map(|e| (e.step, e.from, e.to, e.kind, e.depth))
        .collect()
}

/// Asserts metric equality modulo the wire-byte counters (bytes per
/// sender/kind, max message, proof byte/ref fields).
fn assert_same_modulo_bytes(a: &Metrics, b: &Metrics, label: &str) {
    assert_eq!(a.sent_by, b.sent_by, "{label}: send counts");
    assert_eq!(a.sent_by_kind, b.sent_by_kind, "{label}: kind counts");
    assert_eq!(a.delivered, b.delivered, "{label}: deliveries");
}

fn ack_req_nack_bytes(m: &Metrics) -> u64 {
    m.bytes_by_kind.get("ack_req").copied().unwrap_or(0)
        + m.bytes_by_kind.get("nack").copied().unwrap_or(0)
}

fn run_sbs<M>(seed: u64, deltas: bool, mk_adversary: &M) -> Simulation<SbsMsg<u64>>
where
    M: Fn() -> Option<Box<dyn Process<SbsMsg<u64>>>>,
{
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let adversary = mk_adversary();
    let correct = if adversary.is_some() { n - 1 } else { n };
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..correct {
        b = b.add(Box::new(
            SbsProcess::new(i, config, 10 + i as u64).with_proven_deltas(deltas),
        ));
    }
    if let Some(adv) = adversary {
        b = b.add(adv);
    }
    let mut sim = b.build();
    sim.enable_trace();
    let out = sim.run(10_000_000);
    assert!(out.quiescent, "seed {seed}");
    sim
}

/// One seed, deltas on vs off: same shape, same decisions, fewer (or
/// equal) proof-carrying bytes. Returns `(bytes_on, bytes_off)`.
fn assert_same_sbs_run<M>(seed: u64, label: &str, mk: M) -> (u64, u64)
where
    M: Fn() -> Option<Box<dyn Process<SbsMsg<u64>>>>,
{
    let with = run_sbs(seed, true, &mk);
    let without = run_sbs(seed, false, &mk);
    assert_eq!(
        shape(with.trace().unwrap().events()),
        shape(without.trace().unwrap().events()),
        "{label} seed {seed}: delivery shapes diverged"
    );
    assert_same_modulo_bytes(with.metrics(), without.metrics(), label);
    let correct = if mk().is_some() { 3 } else { 4 };
    for i in 0..correct {
        let a = with.process_as::<SbsProcess<u64>>(i).unwrap();
        let b = without.process_as::<SbsProcess<u64>>(i).unwrap();
        assert_eq!(a.decision, b.decision, "{label} seed {seed} p{i}");
        assert_eq!(a.refinements, b.refinements, "{label} seed {seed} p{i}");
    }
    let (on, off) = (
        ack_req_nack_bytes(with.metrics()),
        ack_req_nack_bytes(without.metrics()),
    );
    assert!(
        on <= off,
        "{label} seed {seed}: deltas grew ack_req/nack bytes ({on} > {off})"
    );
    (on, off)
}

#[test]
fn sbs_deltas_are_invisible_on_honest_runs() {
    let (mut total_on, mut total_off) = (0, 0);
    for seed in 0..6 {
        let (on, off) = assert_same_sbs_run(seed, "honest", || None);
        total_on += on;
        total_off += off;
    }
    assert!(
        total_on < total_off,
        "deltas never engaged across honest seeds ({total_on} vs {total_off})"
    );
}

#[test]
fn sbs_deltas_are_invisible_under_proof_forgery() {
    for seed in 0..4 {
        assert_same_sbs_run(seed, "forger", || {
            Some(Box::new(ProofForger {
                me: 3,
                value: 999_999u64,
            }))
        });
    }
}

#[test]
fn sbs_deltas_are_invisible_under_conflict_signing() {
    for seed in 0..4 {
        assert_same_sbs_run(seed, "conflict", || {
            Some(Box::new(ConflictSigner {
                me: 3,
                a: 666u64,
                b: 777u64,
            }))
        });
    }
}

#[test]
fn sbs_deltas_are_invisible_under_bogus_references() {
    // The Byzantine delta-gap attack runs identically in both modes:
    // the receiver-side decode path is not ablated, so the adversary's
    // unresolvable payloads provoke the same resync traffic either way.
    for seed in 0..4 {
        let with = run_sbs(seed, true, &|| {
            Some(Box::new(BogusRefSender::new(3, 31_337u64)) as _)
        });
        let without = run_sbs(seed, false, &|| {
            Some(Box::new(BogusRefSender::new(3, 31_337u64)) as _)
        });
        assert_eq!(
            shape(with.trace().unwrap().events()),
            shape(without.trace().unwrap().events()),
            "seed {seed}: delivery shapes diverged"
        );
        assert_same_modulo_bytes(with.metrics(), without.metrics(), "bogus-ref");
        assert!(
            with.metrics()
                .sent_by_kind
                .get("resync")
                .copied()
                .unwrap_or(0)
                > 0,
            "seed {seed}: the gap attack must provoke resyncs"
        );
        for i in 0..3 {
            let a = with.process_as::<SbsProcess<u64>>(i).unwrap();
            let b = without.process_as::<SbsProcess<u64>>(i).unwrap();
            assert_eq!(a.decision, b.decision, "seed {seed} p{i}");
        }
    }
}

fn run_gsbs(
    seed: u64,
    deltas: bool,
    with_adversary: bool,
) -> (Simulation<GsbsMsg<u64>>, usize, u64) {
    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);
    let correct = if with_adversary { n - 1 } else { n };
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..correct {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        schedule.insert(0, vec![100 + i as u64]);
        schedule.insert(1, vec![200 + i as u64]);
        b = b.add(Box::new(
            GsbsProcess::new(i, config, schedule, rounds).with_proven_deltas(deltas),
        ));
    }
    if with_adversary {
        b = b.add(Box::new(bgla::core::adversary::gsbs::BogusRefSender::new(
            3, 31_337u64,
        )));
    }
    let mut sim = b.build();
    sim.enable_trace();
    let out = sim.run(50_000_000);
    assert!(out.quiescent, "seed {seed}");
    (sim, correct, rounds)
}

#[test]
fn gsbs_deltas_are_invisible() {
    let (mut total_on, mut total_off) = (0, 0);
    for seed in 0..3 {
        let (with, correct, rounds) = run_gsbs(seed, true, false);
        let (without, _, _) = run_gsbs(seed, false, false);
        assert_eq!(
            shape(with.trace().unwrap().events()),
            shape(without.trace().unwrap().events()),
            "seed {seed}: delivery shapes diverged"
        );
        assert_same_modulo_bytes(with.metrics(), without.metrics(), "gsbs honest");
        for i in 0..correct {
            let a = with.process_as::<GsbsProcess<u64>>(i).unwrap();
            let b = without.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(a.decisions, b.decisions, "seed {seed} p{i}");
            assert_eq!(a.decisions.len(), rounds as usize, "seed {seed} p{i}");
        }
        total_on += ack_req_nack_bytes(with.metrics());
        total_off += ack_req_nack_bytes(without.metrics());
    }
    assert!(total_on <= total_off);
    assert!(
        total_on < total_off,
        "cumulative multi-round proposals must shrink under deltas \
         ({total_on} vs {total_off})"
    );
}

#[test]
fn gsbs_deltas_are_invisible_under_bogus_references() {
    for seed in 0..3 {
        let (with, correct, rounds) = run_gsbs(seed, true, true);
        let (without, _, _) = run_gsbs(seed, false, true);
        assert_eq!(
            shape(with.trace().unwrap().events()),
            shape(without.trace().unwrap().events()),
            "seed {seed}: delivery shapes diverged"
        );
        assert_same_modulo_bytes(with.metrics(), without.metrics(), "gsbs bogus-ref");
        assert!(
            with.metrics()
                .sent_by_kind
                .get("resync")
                .copied()
                .unwrap_or(0)
                > 0,
            "seed {seed}: the gap attack must provoke resyncs"
        );
        for i in 0..correct {
            let a = with.process_as::<GsbsProcess<u64>>(i).unwrap();
            let b = without.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(a.decisions, b.decisions, "seed {seed} p{i}");
            assert_eq!(
                a.decisions.len(),
                rounds as usize,
                "seed {seed} p{i}: liveness despite delta gaps"
            );
        }
    }
}
