//! Trace-level conformance sweep: every algorithm × scheduler × seed
//! combination records a full operation history (propose/refine/decide
//! ops interleaved with deliveries) and must pass the prefix checker —
//! the LA/GLA safety battery at every prefix plus a linearization
//! witness against the sequential join object. A deliberately broken
//! toy protocol shows the other half of the pipeline: the schedule
//! search finds its schedule-dependent violation and shrinks it to a
//! minimal, replayable counterexample.

use bgla::core::adversary::{self, Equivocator, Silent};
use bgla::core::gsbs::GsbsProcess;
use bgla::core::gwts::GwtsProcess;
use bgla::core::harness::{
    gsbs_observer, gsbs_system, gwts_observer, gwts_system, sbs_observer, sbs_system, wts_observer,
    wts_system, wts_system_with_adversaries,
};
use bgla::core::linearize::{CheckerConfig, TraceViolation};
use bgla::core::sbs::SbsProcess;
use bgla::core::search::{
    replay_schedule, run_conformance, search_schedules, Observer, SystemFactory,
};
use bgla::core::{SystemConfig, ValueSet};
use bgla::simnet::{
    Context, FifoScheduler, OpEvent, Process, RandomScheduler, Scheduler, SearchScheduler,
    SimulationBuilder, TargetedScheduler, WireMessage,
};
use std::any::Any;
use std::collections::BTreeMap;

const BUDGET: u64 = 5_000_000;

/// The scheduler grid every scenario sweeps (beyond the search seeds).
fn scheduler_grid(seeds: u64) -> Vec<(String, Box<dyn Scheduler>)> {
    let mut grid: Vec<(String, Box<dyn Scheduler>)> =
        vec![("fifo".into(), Box::new(FifoScheduler::new()))];
    for s in 0..seeds {
        grid.push((format!("random({s})"), Box::new(RandomScheduler::new(s))));
        grid.push((
            format!("targeted({s})"),
            Box::new(
                TargetedScheduler::new(
                    vec![(0, 1), (1, 0)],
                    Box::new(RandomScheduler::new(1000 + s)),
                )
                .with_release_after(60),
            ),
        ));
        grid.push((format!("search({s})"), Box::new(SearchScheduler::new(s))));
    }
    grid
}

/// Runs one scenario over the full grid, asserting quiescence and a
/// validated linearization witness for every cell.
fn sweep<M: WireMessage + 'static>(
    label: &str,
    build: &mut SystemFactory<'_, M>,
    mk_observer: &dyn Fn() -> Observer<M>,
    cfg: &CheckerConfig,
    seeds: u64,
) {
    for (name, scheduler) in scheduler_grid(seeds) {
        let run = run_conformance(build, mk_observer, cfg, scheduler, BUDGET);
        assert!(run.outcome.quiescent, "{label}/{name}: did not quiesce");
        match run.result {
            Ok(witness) => witness
                .validate()
                .unwrap_or_else(|e| panic!("{label}/{name}: bad witness: {e}")),
            Err(v) => panic!("{label}/{name}: conformance violation: {v}"),
        }
    }
}

fn ident(v: &u64) -> u64 {
    *v
}

// ---------------------------------------------------------------------------
// WTS
// ---------------------------------------------------------------------------

#[test]
fn wts_conformance_honest_and_adversarial() {
    let (n, f) = (4usize, 1usize);

    let mut honest_build = |sched: Box<dyn Scheduler>| wts_system(n, f, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..n).collect();
    sweep(
        "wts/honest",
        &mut honest_build,
        &|| wts_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        3,
    );

    for (adv_name, mk_adv) in [
        (
            "equivocator",
            Box::new(|| {
                Box::new(Equivocator {
                    a: 91_001u64,
                    b: 91_002u64,
                }) as Box<dyn Process<_>>
            }) as Box<dyn Fn() -> Box<dyn Process<_>>>,
        ),
        (
            "silent",
            Box::new(|| Box::new(Silent::default()) as Box<dyn Process<_>>),
        ),
    ] {
        let mut build = |sched: Box<dyn Scheduler>| {
            wts_system_with_adversaries(
                n,
                f,
                |i| 10 + i as u64,
                sched,
                |i, _| (i == n - 1).then(&mk_adv),
            )
            .0
        };
        let honest: Vec<usize> = (0..n - 1).collect();
        sweep(
            &format!("wts/{adv_name}"),
            &mut build,
            &|| wts_observer(honest.clone(), ident),
            &CheckerConfig::with_byzantine(n, f, &[3]),
            2,
        );
    }
}

// ---------------------------------------------------------------------------
// GWTS
// ---------------------------------------------------------------------------

fn gwts_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    // Inputs only in round 0 of 3: two drain rounds keep inclusivity
    // meaningful at the finite horizon (the real protocol never stops).
    let mut schedule = BTreeMap::new();
    schedule.insert(0, vec![100 + i as u64, 200 + i as u64]);
    schedule
}

#[test]
fn gwts_conformance_honest_and_adversarial() {
    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);

    let mut honest_build =
        |sched: Box<dyn Scheduler>| gwts_system(n, f, rounds, gwts_schedule, sched).0;
    let honest: Vec<usize> = (0..n).collect();
    sweep(
        "gwts/honest",
        &mut honest_build,
        &|| gwts_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        2,
    );

    // Batch equivocation: the disclosure rbcast lets at most one of the
    // two batches through, so at most one foreign value can be decided.
    let mut build = |sched: Box<dyn Scheduler>| {
        let mut b = SimulationBuilder::new().scheduler(sched);
        for i in 0..n - 1 {
            b = b.add(Box::new(GwtsProcess::new(
                i,
                config,
                gwts_schedule(i),
                rounds,
            )));
        }
        b = b.add(Box::new(adversary::gwts::BatchEquivocator {
            a: [91_001u64].into_iter().collect::<ValueSet<u64>>(),
            b: [91_002u64].into_iter().collect::<ValueSet<u64>>(),
        }));
        b.build()
    };
    let honest: Vec<usize> = (0..n - 1).collect();
    sweep(
        "gwts/batch-equivocator",
        &mut build,
        &|| gwts_observer(honest.clone(), ident),
        &CheckerConfig::with_byzantine(n, f, &[3]),
        2,
    );

    // Round clogging: fake far-future rounds bounce off Safe_r.
    let mut build = |sched: Box<dyn Scheduler>| {
        let mut b = SimulationBuilder::new().scheduler(sched);
        for i in 0..n - 1 {
            b = b.add(Box::new(GwtsProcess::new(
                i,
                config,
                gwts_schedule(i),
                rounds,
            )));
        }
        b = b.add(Box::new(adversary::gwts::RoundJumper::<u64>::new(12)));
        b.build()
    };
    sweep(
        "gwts/round-jumper",
        &mut build,
        &|| gwts_observer(honest.clone(), ident),
        &CheckerConfig::with_byzantine(n, f, &[3]),
        2,
    );
}

// ---------------------------------------------------------------------------
// SbS
// ---------------------------------------------------------------------------

#[test]
fn sbs_conformance_honest_and_adversarial() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);

    let mut honest_build = |sched: Box<dyn Scheduler>| sbs_system(n, f, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..n).collect();
    sweep(
        "sbs/honest",
        &mut honest_build,
        &|| sbs_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        2,
    );

    for (adv_name, mk_adv) in [
        (
            "conflict-signer",
            Box::new(|| {
                Box::new(adversary::sbs::ConflictSigner {
                    me: 3,
                    a: 90_001u64,
                    b: 90_002u64,
                }) as Box<dyn Process<_>>
            }) as Box<dyn Fn() -> Box<dyn Process<_>>>,
        ),
        (
            "proof-forger",
            Box::new(|| {
                Box::new(adversary::sbs::ProofForger {
                    me: 3,
                    value: 66_666u64,
                }) as Box<dyn Process<_>>
            }),
        ),
        (
            "bogus-ref-sender",
            Box::new(|| {
                Box::new(adversary::sbs::BogusRefSender::new(3, 31_337u64)) as Box<dyn Process<_>>
            }),
        ),
    ] {
        let mut build = |sched: Box<dyn Scheduler>| {
            let mut b = SimulationBuilder::new().scheduler(sched);
            for i in 0..n - 1 {
                b = b.add(Box::new(SbsProcess::new(i, config, 10 + i as u64)));
            }
            b = b.add(mk_adv());
            b.build()
        };
        let honest: Vec<usize> = (0..n - 1).collect();
        sweep(
            &format!("sbs/{adv_name}"),
            &mut build,
            &|| sbs_observer(honest.clone(), ident),
            &CheckerConfig::with_byzantine(n, f, &[3]),
            1,
        );
    }
}

// ---------------------------------------------------------------------------
// GSbS
// ---------------------------------------------------------------------------

fn gsbs_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut schedule = BTreeMap::new();
    schedule.insert(0, vec![100 + i as u64]);
    schedule
}

#[test]
fn gsbs_conformance_honest_and_adversarial() {
    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);

    let mut honest_build =
        |sched: Box<dyn Scheduler>| gsbs_system(n, f, rounds, gsbs_schedule, sched).0;
    let honest: Vec<usize> = (0..n).collect();
    sweep(
        "gsbs/honest",
        &mut honest_build,
        &|| gsbs_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        1,
    );

    let mut build = |sched: Box<dyn Scheduler>| {
        let mut b = SimulationBuilder::new().scheduler(sched);
        for i in 0..n - 1 {
            b = b.add(Box::new(GsbsProcess::new(
                i,
                config,
                gsbs_schedule(i),
                rounds,
            )));
        }
        b = b.add(Box::new(adversary::gsbs::BogusRefSender::new(3, 31_337u64)));
        b.build()
    };
    let honest: Vec<usize> = (0..n - 1).collect();
    sweep(
        "gsbs/bogus-ref-sender",
        &mut build,
        &|| gsbs_observer(honest.clone(), ident),
        &CheckerConfig::with_byzantine(n, f, &[3]),
        1,
    );
}

// ---------------------------------------------------------------------------
// Schedule search over the real algorithms: zero violations expected
// ---------------------------------------------------------------------------

#[test]
fn schedule_search_is_clean_on_wts_and_gwts() {
    let (n, f) = (4usize, 1usize);
    let honest: Vec<usize> = (0..n).collect();

    let mut build = |sched: Box<dyn Scheduler>| wts_system(n, f, |i| 10 + i as u64, sched).0;
    let report = search_schedules(
        &mut build,
        &|| wts_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        0..6,
        BUDGET,
    );
    assert_eq!(report.seeds_run, 6);
    assert!(report.ops_checked > 0 && report.deliveries > 0);
    if let Some(cex) = &report.counterexample {
        panic!("wts schedule search found a violation:\n{cex}");
    }

    let rounds = 3u64;
    let mut build = |sched: Box<dyn Scheduler>| gwts_system(n, f, rounds, gwts_schedule, sched).0;
    let report = search_schedules(
        &mut build,
        &|| gwts_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        0..4,
        BUDGET,
    );
    assert_eq!(report.seeds_run, 4);
    if let Some(cex) = &report.counterexample {
        panic!("gwts schedule search found a violation:\n{cex}");
    }
}

#[test]
fn schedule_search_is_clean_on_sbs_and_gsbs() {
    let (n, f) = (4usize, 1usize);
    let honest: Vec<usize> = (0..n).collect();

    let mut build = |sched: Box<dyn Scheduler>| sbs_system(n, f, |i| 10 + i as u64, sched).0;
    let report = search_schedules(
        &mut build,
        &|| sbs_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        0..3,
        BUDGET,
    );
    assert_eq!(report.seeds_run, 3);
    if let Some(cex) = &report.counterexample {
        panic!("sbs schedule search found a violation:\n{cex}");
    }

    let rounds = 3u64;
    let mut build = |sched: Box<dyn Scheduler>| gsbs_system(n, f, rounds, gsbs_schedule, sched).0;
    let report = search_schedules(
        &mut build,
        &|| gsbs_observer(honest.clone(), ident),
        &CheckerConfig::honest_system(n, f),
        0..2,
        BUDGET,
    );
    assert_eq!(report.seeds_run, 2);
    if let Some(cex) = &report.counterexample {
        panic!("gsbs schedule search found a violation:\n{cex}");
    }
}

// ---------------------------------------------------------------------------
// The broken toy protocol: caught, shrunk, replayable
// ---------------------------------------------------------------------------

/// A deliberately broken "agreement": each process broadcasts its value
/// and decides the first two distinct values it receives. Under FIFO
/// everyone sees the same prefix and the decisions coincide; under
/// reordering different processes decide incomparable pairs. Exists
/// only to prove the search half of the pipeline catches what the
/// final-artifact checkers cannot see coming.
struct FirstTwo {
    value: u64,
    seen: Vec<u64>,
    decision: Option<Vec<u64>>,
}

impl FirstTwo {
    fn new(value: u64) -> Self {
        FirstTwo {
            value,
            seen: Vec::new(),
            decision: None,
        }
    }
}

impl Process<u64> for FirstTwo {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        ctx.broadcast(self.value);
    }
    fn on_message(&mut self, _from: usize, msg: u64, _ctx: &mut Context<u64>) {
        if self.decision.is_some() {
            return;
        }
        if !self.seen.contains(&msg) {
            self.seen.push(msg);
        }
        if self.seen.len() == 2 {
            let mut d = self.seen.clone();
            d.sort_unstable();
            self.decision = Some(d);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn toy_observer(n: usize) -> Observer<u64> {
    let mut proposed = vec![false; n];
    let mut decided = vec![false; n];
    Box::new(move |sim, out| {
        let step = sim.metrics().delivered;
        for i in 0..n {
            let p = sim.process_as::<FirstTwo>(i).expect("toy process");
            if !proposed[i] {
                proposed[i] = true;
                out.push(OpEvent {
                    step,
                    process: i,
                    kind: bgla::core::linearize::OP_PROPOSE,
                    ts: 0,
                    values: vec![p.value],
                });
            }
            if let Some(d) = &p.decision {
                if !decided[i] {
                    decided[i] = true;
                    out.push(OpEvent {
                        step,
                        process: i,
                        kind: bgla::core::linearize::OP_DECIDE,
                        ts: 0,
                        values: d.clone(),
                    });
                }
            }
        }
    })
}

#[test]
fn broken_toy_protocol_is_caught_shrunk_and_replayable() {
    let n = 3usize;
    let mut build = |sched: Box<dyn Scheduler>| {
        let mut b = SimulationBuilder::new().scheduler(sched);
        for i in 0..n {
            b = b.add(Box::new(FirstTwo::new(1 + i as u64)));
        }
        b.build()
    };
    // The toy never includes every proposer's own value; only its
    // schedule-dependent comparability break is under test.
    let cfg = CheckerConfig::honest_system(n, 0).without_inclusivity();

    // Benign schedule: looks perfectly fine.
    let fifo = run_conformance(
        &mut build,
        &|| toy_observer(n),
        &cfg,
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    fifo.result
        .expect("the toy protocol is safe under FIFO")
        .validate()
        .unwrap();

    // The search must expose it.
    let report = search_schedules(&mut build, &|| toy_observer(n), &cfg, 0..64, BUDGET);
    let cex = report
        .counterexample
        .expect("schedule search must break the toy protocol");
    assert!(
        matches!(
            cex.violation.violation,
            TraceViolation::IncomparableDecisions { .. }
        ),
        "unexpected violation class: {}",
        cex.violation
    );

    // The shrunk schedule is genuinely minimal: two incomparable
    // first-two decisions need only 4 deliveries (two distinct values
    // at each of two processes), and the toy run has 9 sends total —
    // so a bound of 4 fails if the shrinker ever regresses to handing
    // back the recorded schedule.
    assert!(
        cex.schedule.len() <= 4,
        "shrunk schedule is not minimal: {} entries",
        cex.schedule.len()
    );
    let replay = replay_schedule(&mut build, &|| toy_observer(n), &cfg, &cex.schedule, BUDGET);
    assert!(
        replay.result.is_err(),
        "shrunk counterexample schedule no longer violates"
    );

    // The seed alone reproduces the original violating run.
    let reseed = run_conformance(
        &mut build,
        &|| toy_observer(n),
        &cfg,
        Box::new(SearchScheduler::new(cex.seed)),
        BUDGET,
    );
    assert!(reseed.result.is_err(), "seed did not reproduce");

    // And the report prints as a copy-pasteable repro.
    let rendered = format!("{cex}");
    assert!(rendered.contains("SearchScheduler::new"));
    assert!(rendered.contains("ReplayScheduler::new"));
}
