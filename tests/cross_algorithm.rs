//! Cross-crate integration tests: the three one-shot algorithms (WTS,
//! SbS) and the two generalized ones (GWTS, GSbS) all solve the same
//! problem — their runs must satisfy the same specification, and their
//! decisions must map consistently into application lattices.

use bgla::core::gsbs::GsbsProcess;
use bgla::core::gwts::GwtsProcess;
use bgla::core::sbs::SbsProcess;
use bgla::core::wts::WtsProcess;
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::lattice::{is_chain, JoinSemiLattice, SetLattice};
use bgla::simnet::{RandomScheduler, SimulationBuilder};
use std::collections::BTreeMap;

/// Both one-shot algorithms satisfy the full LA spec on the same inputs.
#[test]
fn wts_and_sbs_satisfy_identical_spec() {
    let (n, f) = (4usize, 1usize);
    let config = SystemConfig::new(n, f);
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

    // WTS.
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(5)));
    for (i, &input) in inputs.iter().enumerate() {
        b = b.add(Box::new(WtsProcess::new(i, config, input)));
    }
    let mut wts = b.build();
    assert!(wts.run(u64::MAX / 2).quiescent);

    // SbS.
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(5)));
    for (i, &input) in inputs.iter().enumerate() {
        b = b.add(Box::new(SbsProcess::new(i, config, input)));
    }
    let mut sbs = b.build();
    assert!(sbs.run(u64::MAX / 2).quiescent);

    for (name, decisions) in [
        (
            "wts",
            (0..n)
                .map(|i| {
                    wts.process_as::<WtsProcess<u64>>(i)
                        .unwrap()
                        .decision
                        .clone()
                        .expect("liveness")
                })
                .collect::<Vec<_>>(),
        ),
        (
            "sbs",
            (0..n)
                .map(|i| {
                    sbs.process_as::<SbsProcess<u64>>(i)
                        .unwrap()
                        .decision
                        .clone()
                        .expect("liveness")
                })
                .collect::<Vec<_>>(),
        ),
    ] {
        spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("{name}: {e}"));
        let pairs: Vec<(u64, ValueSet<u64>)> = inputs
            .iter()
            .copied()
            .zip(decisions.iter().cloned())
            .collect();
        spec::check_inclusivity(&pairs).unwrap_or_else(|e| panic!("{name}: {e}"));
        let x: std::collections::BTreeSet<u64> = inputs.iter().copied().collect();
        spec::check_nontriviality(&x, &decisions, f).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Decisions map into the `SetLattice` and form a chain there — the
/// lattice-theoretic reading of Comparability.
#[test]
fn decisions_embed_into_set_lattice_chains() {
    let (n, f) = (7usize, 2usize);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(11)));
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    let mut sim = b.build();
    assert!(sim.run(u64::MAX / 2).quiescent);
    let lattice_decisions: Vec<SetLattice<u64>> = (0..n)
        .map(|i| {
            let d = sim
                .process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .clone()
                .unwrap();
            SetLattice::from_iter(d)
        })
        .collect();
    is_chain(&lattice_decisions).expect("decisions form a chain in the lattice");
    // The join of all decisions equals the largest decision.
    let join = SetLattice::join_all(lattice_decisions.iter());
    assert!(lattice_decisions.contains(&join));
}

/// GWTS and GSbS produce mutually consistent chains on the same
/// workload shape.
#[test]
fn generalized_variants_produce_monotone_chains() {
    let (n, f, rounds) = (4usize, 1usize, 3u64);
    let config = SystemConfig::new(n, f);

    let mut b = SimulationBuilder::new();
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        schedule.insert(0, vec![i as u64]);
        b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
    }
    let mut gwts = b.build();
    assert!(gwts.run(u64::MAX / 2).quiescent);

    let mut b = SimulationBuilder::new();
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        schedule.insert(0, vec![i as u64]);
        b = b.add(Box::new(GsbsProcess::new(i, config, schedule, rounds)));
    }
    let mut gsbs = b.build();
    assert!(gsbs.run(u64::MAX / 2).quiescent);

    let gwts_seqs: Vec<Vec<ValueSet<u64>>> = (0..n)
        .map(|i| {
            gwts.process_as::<GwtsProcess<u64>>(i)
                .unwrap()
                .decisions
                .clone()
        })
        .collect();
    let gsbs_seqs: Vec<Vec<ValueSet<u64>>> = (0..n)
        .map(|i| {
            gsbs.process_as::<GsbsProcess<u64>>(i)
                .unwrap()
                .decisions
                .clone()
        })
        .collect();

    for (name, seqs) in [("gwts", &gwts_seqs), ("gsbs", &gsbs_seqs)] {
        spec::check_local_stability(seqs).unwrap_or_else(|e| panic!("{name}: {e}"));
        spec::check_global_comparability(seqs).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), rounds as usize, "{name} p{i} decided every round");
        }
        // Both reach the full value set {0,1,2,3} in their final round.
        let expect: ValueSet<u64> = (0..n as u64).collect();
        assert!(
            seqs.iter().any(|s| s.last() == Some(&expect)),
            "{name}: nobody converged to the full set"
        );
    }
}

/// Determinism: the same seed yields bit-identical outcomes; different
/// seeds may differ (so the test suite really explores schedules).
#[test]
fn simulations_are_deterministic_per_seed() {
    let run = |seed: u64| -> (u64, Vec<Option<ValueSet<u64>>>) {
        let config = SystemConfig::new(4, 1);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..4 {
            b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
        }
        let mut sim = b.build();
        sim.run(u64::MAX / 2);
        (
            sim.metrics().total_sent(),
            (0..4)
                .map(|i| {
                    sim.process_as::<WtsProcess<u64>>(i)
                        .unwrap()
                        .decision
                        .clone()
                })
                .collect(),
        )
    };
    assert_eq!(run(1), run(1));
    assert_eq!(run(2), run(2));
}
