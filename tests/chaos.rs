//! Randomized-adversary safety tests: the Byzantine LA specification
//! quantifies over *arbitrary* adversary behavior, so beyond the
//! targeted attacks we sample behaviors — seeded chaos processes that
//! replay, mutate and fabricate protocol traffic — across many schedules
//! and check that every safety property survives.

use bgla::core::adversary::gwts::{BatchEquivocator, RoundJumper, SilentG};
use bgla::core::adversary::ChaosMonkey;
use bgla::core::gwts::GwtsProcess;
use bgla::core::harness::{wts_report, wts_system_with_adversaries};
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{RandomScheduler, SimulationBuilder};
use std::collections::BTreeMap;

#[test]
fn wts_safety_survives_chaos_monkeys() {
    for seed in 0..25u64 {
        let (n, f) = (4usize, 1usize);
        let (mut sim, config, byz) = wts_system_with_adversaries(
            n,
            f,
            |i| i as u64,
            Box::new(RandomScheduler::new(seed)),
            |i, _| (i == 3).then(|| Box::new(ChaosMonkey::new(seed * 31 + 7)) as _),
        );
        let out = sim.run(2_000_000);
        assert!(out.quiescent, "seed {seed}: chaos prevented quiescence");
        let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
        let report = wts_report(&sim, &correct);
        // Liveness holds too: chaos can't fake the quorum away.
        spec::check_liveness(&report.decided).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_comparability(&report.decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_inclusivity(&report.pairs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let inputs: std::collections::BTreeSet<u64> = correct.iter().map(|&i| i as u64).collect();
        spec::check_nontriviality(&inputs, &report.decisions, config.f)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn wts_safety_survives_two_chaos_monkeys_at_f2() {
    for seed in 0..10u64 {
        let (n, f) = (7usize, 2usize);
        let (mut sim, config, byz) = wts_system_with_adversaries(
            n,
            f,
            |i| i as u64,
            Box::new(RandomScheduler::new(seed)),
            |i, _| match i {
                5 => Some(Box::new(ChaosMonkey::new(seed * 13 + 1)) as _),
                6 => Some(Box::new(ChaosMonkey::new(seed * 17 + 3)) as _),
                _ => None,
            },
        );
        let out = sim.run(20_000_000);
        assert!(out.quiescent, "seed {seed}");
        let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
        let report = wts_report(&sim, &correct);
        spec::check_liveness(&report.decided).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_comparability(&report.decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let inputs: std::collections::BTreeSet<u64> = correct.iter().map(|&i| i as u64).collect();
        spec::check_nontriviality(&inputs, &report.decisions, config.f)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

fn gwts_with_adversary(
    seed: u64,
    adversary: Box<dyn bgla::simnet::Process<bgla::core::gwts::GwtsMsg<u64>>>,
) -> (Vec<Vec<ValueSet<u64>>>, Vec<Vec<u64>>) {
    let (n, f, rounds) = (4usize, 1usize, 4u64);
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..3 {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds - 2 {
            schedule.insert(r, vec![(i as u64 + 1) * 100 + r]);
        }
        b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
    }
    b = b.add(adversary);
    let mut sim = b.build();
    let out = sim.run(50_000_000);
    assert!(out.quiescent, "seed {seed}");
    let mut seqs = Vec::new();
    let mut inputs = Vec::new();
    for i in 0..3 {
        let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
        seqs.push(p.decisions.clone());
        inputs.push(p.all_inputs.clone());
    }
    (seqs, inputs)
}

#[test]
fn gwts_survives_round_jumper() {
    for seed in 0..10u64 {
        let (seqs, inputs) = gwts_with_adversary(seed, Box::new(RoundJumper::new(10)));
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), 4, "seed {seed} p{i}: round jumper clogged rounds");
        }
        spec::check_local_stability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_generalized_inclusivity(&inputs, &seqs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn gwts_survives_silent_and_batch_equivocator() {
    for seed in 0..8u64 {
        let (seqs, _) = gwts_with_adversary(seed, Box::new(SilentG::default()));
        for s in &seqs {
            assert_eq!(s.len(), 4, "seed {seed}: silent process blocked rounds");
        }
        spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let a: ValueSet<u64> = [666].into_iter().collect();
        let bset: ValueSet<u64> = [777].into_iter().collect();
        let (seqs, _) = gwts_with_adversary(seed, Box::new(BatchEquivocator { a, b: bset }));
        spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Equivocated batches: never both values decided anywhere.
        for s in seqs.iter().flatten() {
            assert!(
                !(s.contains(&666) && s.contains(&777)),
                "seed {seed}: equivocated batches coexist"
            );
        }
    }
}
