//! Crash/recover conformance: every algorithm survives crash-restart
//! schedules with durable snapshots, the restart-spanning history passes
//! the prefix checker, and the planted snapshot adversaries (stale
//! rollback, bit rot) are either detected by the `RestartRegression`
//! rule or absorbed within the `f` fault budget.

use bgla::core::gsbs::{GsbsMsg, GsbsProcess};
use bgla::core::gwts::{GwtsMsg, GwtsProcess};
use bgla::core::harness::{
    gsbs_observer, gsbs_system, gwts_observer, gwts_system, sbs_observer, sbs_system, wts_observer,
    wts_system,
};
use bgla::core::linearize::{CheckerConfig, TraceViolation, OP_DECIDE};
use bgla::core::recovery::{
    first_decide_steps, resolve_tactics, run_crash_conformance, search_crash_schedules,
    CorruptingStore, CrashPlan, CrashTactic, DirStore, MemStore, RebuildFn, RollbackStore,
    SnapshotPolicy, SnapshotStore,
};
use bgla::core::sbs::{SbsMsg, SbsProcess};
use bgla::core::search::{Observer, SystemFactory};
use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::SystemConfig;
use bgla::simnet::{
    FifoScheduler, Process, ProcessId, RandomScheduler, Scheduler, SearchScheduler, WireMessage,
};
use std::collections::{BTreeMap, BTreeSet};

const BUDGET: u64 = 5_000_000;
const N: usize = 4;
const F: usize = 1;
const VICTIM: ProcessId = 0;

fn ident(v: &u64) -> u64 {
    *v
}

fn gen_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut s = BTreeMap::new();
    s.insert(0, vec![100 + i as u64]);
    s
}

/// Inputs in rounds 0 *and* 1, so the round-1 decision is strictly
/// larger than the round-0 one — the gap a stale round-0 snapshot rolls
/// back over.
fn growing_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut s = BTreeMap::new();
    s.insert(0, vec![100 + i as u64]);
    s.insert(1, vec![200 + i as u64]);
    s
}

// ---------------------------------------------------------------------------
// Rebuild closures: restore-from-snapshot with genesis fallback
// ---------------------------------------------------------------------------

fn wts_rebuild(config: SystemConfig) -> Box<RebuildFn<'static, WtsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| WtsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as Box<dyn Process<_>>, false),
            None => (
                Box::new(WtsProcess::new(p, config, 10 + p as u64)) as Box<dyn Process<_>>,
                true,
            ),
        },
    )
}

fn sbs_rebuild(config: SystemConfig) -> Box<RebuildFn<'static, SbsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| SbsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as Box<dyn Process<_>>, false),
            None => (
                Box::new(SbsProcess::new(p, config, 10 + p as u64)) as Box<dyn Process<_>>,
                true,
            ),
        },
    )
}

fn gwts_rebuild(
    config: SystemConfig,
    schedule: fn(usize) -> BTreeMap<u64, Vec<u64>>,
    rounds: u64,
) -> Box<RebuildFn<'static, GwtsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| GwtsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as Box<dyn Process<_>>, false),
            None => (
                Box::new(GwtsProcess::new(p, config, schedule(p), rounds)) as Box<dyn Process<_>>,
                true,
            ),
        },
    )
}

fn gsbs_rebuild(
    config: SystemConfig,
    schedule: fn(usize) -> BTreeMap<u64, Vec<u64>>,
    rounds: u64,
) -> Box<RebuildFn<'static, GsbsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| GsbsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as Box<dyn Process<_>>, false),
            None => (
                Box::new(GsbsProcess::new(p, config, schedule(p), rounds)) as Box<dyn Process<_>>,
                true,
            ),
        },
    )
}

// ---------------------------------------------------------------------------
// The honest sweep: scheduler grid × crash tactics, faithful store
// ---------------------------------------------------------------------------

/// Runs one algorithm over fifo/random/search schedules × the four
/// crash tactics with a faithful latest-snapshot store. Every cell must
/// quiesce, restart at least once, keep genesis rejoins within `f`, and
/// pass the restart-spanning prefix checker. Inclusivity is waived for
/// the victim only implicitly: a crashed process may stall in a phase
/// that cannot re-solicit lost traffic (see the recovery contract), so
/// the sweep checks the safety battery plus explicit survivor liveness.
/// A named scheduler grid: (label, scheduler factory) rows.
type SchedGrid<'a> = Vec<(&'a str, Box<dyn Fn() -> Box<dyn Scheduler>>)>;

fn crash_sweep<M: WireMessage + 'static>(
    label: &str,
    build: &mut SystemFactory<'_, M>,
    mk_observer: &dyn Fn() -> Observer<M>,
    rebuild: &mut RebuildFn<'_, M>,
    cfg: &CheckerConfig,
) {
    let grid: SchedGrid<'_> = vec![
        ("fifo", Box::new(|| Box::new(FifoScheduler::new()))),
        ("random", Box::new(|| Box::new(RandomScheduler::new(7)))),
        ("search", Box::new(|| Box::new(SearchScheduler::new(3)))),
    ];
    let safety_cfg = cfg.clone().without_inclusivity();
    for (sched_name, mk_sched) in &grid {
        let pilot = first_decide_steps(build, mk_observer, mk_sched(), BUDGET);
        let tactic_sets: Vec<(&str, Vec<CrashTactic>)> = vec![
            (
                "at-step",
                vec![CrashTactic::AtStep {
                    victim: VICTIM,
                    step: 5,
                    downtime: 30,
                }],
            ),
            (
                "before-decide",
                vec![CrashTactic::BeforeDecide {
                    victim: VICTIM,
                    lead: 3,
                    downtime: 25,
                }],
            ),
            (
                "after-decide",
                vec![CrashTactic::AfterDecide {
                    victim: VICTIM,
                    lag: 2,
                    downtime: 25,
                }],
            ),
            (
                "double-crash",
                vec![CrashTactic::DoubleCrash {
                    victim: VICTIM,
                    step: 6,
                    gap: 12,
                    downtime: 15,
                }],
            ),
        ];
        for (tactic_name, tactics) in &tactic_sets {
            let cell = format!("{label}/{sched_name}/{tactic_name}");
            let plan = resolve_tactics(tactics, &pilot);
            let mut store = MemStore::new();
            let run = run_crash_conformance(
                build,
                mk_observer,
                rebuild,
                SnapshotPolicy::combined(20),
                &mut store,
                &plan,
                &safety_cfg,
                mk_sched(),
                BUDGET,
            );
            assert!(run.outcome.quiescent, "{cell}: did not quiesce");
            assert!(run.restarts >= 1, "{cell}: the plan never restarted");
            assert!(
                run.genesis_rejoins.len() <= F,
                "{cell}: {} genesis rejoins exceed f={F}",
                run.genesis_rejoins.len()
            );
            match run.result {
                Ok(w) => w
                    .validate()
                    .unwrap_or_else(|e| panic!("{cell}: bad witness: {e}")),
                Err(v) => panic!("{cell}: conformance violation: {v}"),
            }
            // Survivor liveness: every honest non-victim decided on the
            // record, crashes notwithstanding.
            let decided: BTreeSet<ProcessId> = run
                .sim
                .trace()
                .expect("tracing enabled")
                .ops_of_kind(OP_DECIDE)
                .map(|o| o.process)
                .collect();
            for p in cfg.honest.iter().filter(|&&p| p != VICTIM) {
                assert!(decided.contains(p), "{cell}: survivor {p} never decided");
            }
        }
    }
}

#[test]
fn wts_crash_recovery_sweep_is_clean() {
    let config = SystemConfig::new(N, F);
    let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    crash_sweep(
        "wts",
        &mut build,
        &|| wts_observer(honest.clone(), ident),
        &mut *wts_rebuild(config),
        &CheckerConfig::honest_system(N, F),
    );
}

#[test]
fn gwts_crash_recovery_sweep_is_clean() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let mut build = |sched: Box<dyn Scheduler>| gwts_system(N, F, rounds, gen_schedule, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    crash_sweep(
        "gwts",
        &mut build,
        &|| gwts_observer(honest.clone(), ident),
        &mut *gwts_rebuild(config, gen_schedule, rounds),
        &CheckerConfig::honest_system(N, F),
    );
}

#[test]
fn sbs_crash_recovery_sweep_is_clean() {
    let config = SystemConfig::new(N, F);
    let mut build = |sched: Box<dyn Scheduler>| sbs_system(N, F, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    crash_sweep(
        "sbs",
        &mut build,
        &|| sbs_observer(honest.clone(), ident),
        &mut *sbs_rebuild(config),
        &CheckerConfig::honest_system(N, F),
    );
}

#[test]
fn gsbs_crash_recovery_sweep_is_clean() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let mut build = |sched: Box<dyn Scheduler>| gsbs_system(N, F, rounds, gen_schedule, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    crash_sweep(
        "gsbs",
        &mut build,
        &|| gsbs_observer(honest.clone(), ident),
        &mut *gsbs_rebuild(config, gen_schedule, rounds),
        &CheckerConfig::honest_system(N, F),
    );
}

// ---------------------------------------------------------------------------
// Durable files: the DirStore path end-to-end
// ---------------------------------------------------------------------------

#[test]
fn sbs_recovers_from_on_disk_snapshots() {
    static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgla-recovery-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let config = SystemConfig::new(N, F);
    let mut build = |sched: Box<dyn Scheduler>| sbs_system(N, F, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    let mk_observer = || sbs_observer(honest.clone(), ident);
    let mut rebuild = sbs_rebuild(config);

    let pilot = first_decide_steps(
        &mut build,
        &mk_observer,
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    let plan = resolve_tactics(
        &[CrashTactic::AfterDecide {
            victim: VICTIM,
            lag: 2,
            downtime: 25,
        }],
        &pilot,
    );
    let mut store = DirStore::new(&dir).expect("snapshot dir");
    let run = run_crash_conformance(
        &mut build,
        &mk_observer,
        &mut *rebuild,
        SnapshotPolicy::decide_triggered(),
        &mut store,
        &plan,
        &CheckerConfig::honest_system(N, F).without_inclusivity(),
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    assert!(run.outcome.quiescent);
    assert_eq!(run.restarts, 1);
    assert!(
        run.genesis_rejoins.is_empty(),
        "crash after the decide-triggered save must restore from disk"
    );
    assert!(store.path(VICTIM).exists(), "snapshot file persisted");
    run.result
        .unwrap_or_else(|v| panic!("on-disk recovery violated conformance: {v}"))
        .validate()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Planted adversaries
// ---------------------------------------------------------------------------

/// Multi-round GWTS under a rollback store: the victim's restored
/// snapshot predates its later decisions, and the re-announced stale
/// decision must surface as `RestartRegression`.
#[test]
fn gwts_stale_snapshot_rollback_is_detected() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let mut build =
        |sched: Box<dyn Scheduler>| gwts_system(N, F, rounds, growing_schedule, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    let mk_observer = || gwts_observer(honest.clone(), ident);
    let mut rebuild = gwts_rebuild(config, growing_schedule, rounds);

    // Crash once the whole run has quiesced (step = MAX fast-forwards to
    // end-of-run): every decision is in, the rollback gap is maximal.
    let plan = CrashPlan::single(VICTIM, u64::MAX, 1);
    let mut store = RollbackStore::new();
    let run = run_crash_conformance(
        &mut build,
        &mk_observer,
        &mut *rebuild,
        SnapshotPolicy::decide_triggered(),
        &mut store,
        &plan,
        &CheckerConfig::honest_system(N, F).without_inclusivity(),
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    let v = run
        .result
        .expect_err("a planted stale-snapshot rollback must be detected");
    assert!(
        matches!(
            v.violation,
            TraceViolation::RestartRegression {
                process: VICTIM,
                ..
            }
        ),
        "wrong violation class: {v}"
    );
    println!("planted rollback detected: {v}");
}

/// Same plant for GSbS, and through the schedule search: the violation
/// is schedule-independent, so the first seed finds it and the shrinker
/// reduces the repro to (near) nothing — the printed counterexample is
/// the shrunk, replayable artifact.
#[test]
fn gsbs_rollback_is_detected_and_shrunk_by_search() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let mut build =
        |sched: Box<dyn Scheduler>| gsbs_system(N, F, rounds, growing_schedule, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    let mk_observer = || gsbs_observer(honest.clone(), ident);
    let mut rebuild = gsbs_rebuild(config, growing_schedule, rounds);

    let plan = CrashPlan::single(VICTIM, u64::MAX, 1);
    let report = search_crash_schedules(
        &mut build,
        &mk_observer,
        &mut *rebuild,
        SnapshotPolicy::decide_triggered(),
        &|| Box::new(RollbackStore::new()) as Box<dyn SnapshotStore>,
        &plan,
        &CheckerConfig::honest_system(N, F).without_inclusivity(),
        0..2,
        BUDGET,
    );
    let cex = report
        .counterexample
        .expect("the rollback plant must produce a counterexample");
    assert!(
        matches!(
            cex.violation.violation,
            TraceViolation::RestartRegression {
                process: VICTIM,
                ..
            }
        ),
        "wrong violation class: {}",
        cex.violation
    );
    // Schedule-independent violation ⇒ the shrinker strips the schedule
    // essentially bare.
    assert!(
        cex.schedule.len() <= 4,
        "shrunk schedule is not minimal: {} entries",
        cex.schedule.len()
    );
    println!("{cex}");
}

/// One-shot WTS under the same rollback store: the only snapshot *is*
/// the decision, so the stale restore is faithful and the rollback is
/// absorbed — no violation, clean witness.
#[test]
fn wts_rollback_is_absorbed_by_one_shot_durability() {
    let config = SystemConfig::new(N, F);
    let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    let mk_observer = || wts_observer(honest.clone(), ident);
    let mut rebuild = wts_rebuild(config);

    let plan = CrashPlan::single(VICTIM, u64::MAX, 1);
    let mut store = RollbackStore::new();
    let run = run_crash_conformance(
        &mut build,
        &mk_observer,
        &mut *rebuild,
        SnapshotPolicy::decide_triggered(),
        &mut store,
        &plan,
        &CheckerConfig::honest_system(N, F),
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    assert_eq!(run.restarts, 1);
    assert!(run.genesis_rejoins.is_empty());
    run.result
        .unwrap_or_else(|v| panic!("one-shot rollback must be absorbed: {v}"))
        .validate()
        .unwrap();
}

/// Bit rot: every load fails the frame checksum, the victim rejoins
/// from genesis, and the loss is absorbed within `f` — the survivors'
/// history stays conformant.
#[test]
fn corrupt_snapshots_force_genesis_rejoin_within_f() {
    let config = SystemConfig::new(N, F);
    let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
    let honest: Vec<usize> = (0..N).collect();
    let mk_observer = || wts_observer(honest.clone(), ident);
    let mut rebuild = wts_rebuild(config);

    let plan = CrashPlan::single(VICTIM, u64::MAX, 1);
    let mut store = CorruptingStore::new();
    let run = run_crash_conformance(
        &mut build,
        &mk_observer,
        &mut *rebuild,
        SnapshotPolicy::decide_triggered(),
        &mut store,
        &plan,
        &CheckerConfig::honest_system(N, F).without_inclusivity(),
        Box::new(FifoScheduler::new()),
        BUDGET,
    );
    assert_eq!(run.restarts, 1);
    assert_eq!(
        run.genesis_rejoins,
        [VICTIM].into_iter().collect::<BTreeSet<_>>(),
        "corrupt snapshot must force a genesis rejoin"
    );
    run.result
        .unwrap_or_else(|v| panic!("genesis rejoin must stay within the fault budget: {v}"))
        .validate()
        .unwrap();
}
