//! Crash-fault and partition-fault scenarios: crashes are a special case
//! of Byzantine behavior, and temporary partitions are a legal
//! asynchronous schedule — WTS must ride through both.

use bgla::core::adversary::MidCrash;
use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{FifoScheduler, PartitionScheduler, RandomScheduler, SimulationBuilder};

fn decisions_of(
    sim: &bgla::simnet::Simulation<WtsMsg<u64>>,
    ids: impl Iterator<Item = usize>,
) -> Vec<Option<ValueSet<u64>>> {
    ids.map(|i| {
        sim.process_as::<WtsProcess<u64>>(i)
            .expect("survivor is a plain WtsProcess")
            .decision
            .clone()
    })
    .collect()
}

/// A process that crashes mid-protocol (after a handful of deliveries,
/// i.e. possibly mid-quorum) must not endanger the survivors.
#[test]
fn mid_protocol_crash_is_tolerated() {
    for crash_after in [0u64, 1, 3, 7, 15] {
        for seed in 0..5 {
            let (n, f) = (4usize, 1usize);
            let config = SystemConfig::new(n, f);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
            for i in 0..3 {
                b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
            }
            b = b.add(Box::new(MidCrash::new(
                WtsProcess::new(3, config, 3u64),
                crash_after,
            )));
            let mut sim = b.build();
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "crash_after={crash_after} seed={seed}");
            let survivors: Vec<ValueSet<u64>> = decisions_of(&sim, 0..3)
                .into_iter()
                .map(|d| {
                    d.unwrap_or_else(|| {
                        panic!("crash_after={crash_after} seed={seed}: survivor stuck")
                    })
                })
                .collect();
            spec::check_comparability(&survivors)
                .unwrap_or_else(|e| panic!("crash_after={crash_after} seed={seed}: {e}"));
        }
    }
}

/// A temporary 2|2 partition delays but cannot prevent agreement: the
/// quorum (3 of 4) spans both sides, so decisions wait for the heal and
/// then complete consistently.
#[test]
fn temporary_partition_delays_but_preserves_agreement() {
    for heal_after in [10u64, 50, 200] {
        let (n, f) = (4usize, 1usize);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(PartitionScheduler::new(
            vec![0, 1],
            heal_after,
            Box::new(FifoScheduler::new()),
        )));
        for i in 0..n {
            b = b.add(Box::new(WtsProcess::new(i, config, 100 + i as u64)));
        }
        let mut sim = b.build();
        let out = sim.run(10_000_000);
        assert!(out.quiescent, "heal_after={heal_after}");
        let mut decisions = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            decisions.push(
                p.decision
                    .clone()
                    .unwrap_or_else(|| panic!("heal_after={heal_after}: p{i} stuck")),
            );
            assert!(p.decision.as_ref().unwrap().contains(&(100 + i as u64)));
        }
        spec::check_comparability(&decisions)
            .unwrap_or_else(|e| panic!("heal_after={heal_after}: {e}"));
    }
}

/// f crashes at different points of the protocol simultaneously.
#[test]
fn staggered_crashes_at_f2() {
    for seed in 0..5 {
        let (n, f) = (7usize, 2usize);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..5 {
            b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
        }
        b = b.add(Box::new(MidCrash::new(WtsProcess::new(5, config, 5u64), 2)));
        b = b.add(Box::new(MidCrash::new(
            WtsProcess::new(6, config, 6u64),
            20,
        )));
        let mut sim = b.build();
        let out = sim.run(50_000_000);
        assert!(out.quiescent, "seed {seed}");
        let mut decisions = Vec::new();
        for i in 0..5 {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            decisions.push(p.decision.clone().expect("survivor decides"));
        }
        spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Non-triviality: the crashed processes were honest before the
        // crash, so at most their two (honestly disclosed) values appear
        // beyond the survivors' inputs.
        let survivor_inputs: std::collections::BTreeSet<u64> = (0..5).map(|i| i as u64).collect();
        spec::check_nontriviality(&survivor_inputs, &decisions, f)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
