//! Crash-fault and partition-fault scenarios: crashes are a special case
//! of Byzantine behavior, and temporary partitions are a legal
//! asynchronous schedule — WTS must ride through both.
//!
//! Crashes appear twice, deliberately. The engine-level
//! [`bgla::simnet::Simulation::crash`] tests are the primary model: the
//! victim loses its in-flight inbox and all future traffic at the wire.
//! The [`MidCrash`] process-wrapper tests are kept as an *ablation* —
//! the older in-process model (the victim silently stops reacting but
//! still absorbs deliveries) must tolerate the same scenarios, pinning
//! that the two crash models agree on survivor safety.

use bgla::core::adversary::MidCrash;
use bgla::core::wts::{WtsMsg, WtsProcess};
use bgla::core::ValueSet;
use bgla::core::{spec, SystemConfig};
use bgla::simnet::{FifoScheduler, PartitionScheduler, RandomScheduler, SimulationBuilder};

fn decisions_of(
    sim: &bgla::simnet::Simulation<WtsMsg<u64>>,
    ids: impl Iterator<Item = usize>,
) -> Vec<Option<ValueSet<u64>>> {
    ids.map(|i| {
        sim.process_as::<WtsProcess<u64>>(i)
            .expect("survivor is a plain WtsProcess")
            .decision
            .clone()
    })
    .collect()
}

/// Engine crash API: a process crash-stopped mid-protocol (after a
/// handful of deliveries, i.e. possibly mid-quorum) must not endanger
/// the survivors, and the wire must go dark for it — no delivery ever
/// reaches the victim after the crash.
#[test]
fn engine_crash_mid_protocol_is_tolerated() {
    for crash_after in [0u64, 1, 3, 7, 15] {
        for seed in 0..5 {
            let (n, f) = (4usize, 1usize);
            let config = SystemConfig::new(n, f);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
            for i in 0..n {
                b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
            }
            let mut sim = b.build();
            sim.enable_trace();
            sim.start();
            let mut steps = 0u64;
            while steps < crash_after && sim.step() {
                steps += 1;
            }
            sim.crash(3);
            let crashed_at = sim.metrics().delivered;
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "crash_after={crash_after} seed={seed}");
            assert!(sim.is_crashed(3));
            let survivors: Vec<ValueSet<u64>> = decisions_of(&sim, 0..3)
                .into_iter()
                .map(|d| {
                    d.unwrap_or_else(|| {
                        panic!("crash_after={crash_after} seed={seed}: survivor stuck")
                    })
                })
                .collect();
            spec::check_comparability(&survivors)
                .unwrap_or_else(|e| panic!("crash_after={crash_after} seed={seed}: {e}"));
            // The wire is dark: nothing was delivered to the victim
            // after the crash point.
            let late_to_victim = sim
                .trace()
                .unwrap()
                .events()
                .iter()
                .filter(|e| e.to == 3 && e.step >= crashed_at)
                .count();
            assert_eq!(
                late_to_victim, 0,
                "crash_after={crash_after} seed={seed}: delivery reached a crashed process"
            );
        }
    }
}

/// Engine crash API at `f = 2`: two victims crash-stopped at different
/// protocol phases simultaneously.
#[test]
fn engine_staggered_crashes_at_f2() {
    for seed in 0..5 {
        let (n, f) = (7usize, 2usize);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..n {
            b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
        }
        let mut sim = b.build();
        sim.start();
        let mut steps = 0u64;
        while steps < 2 && sim.step() {
            steps += 1;
        }
        sim.crash(5);
        while steps < 20 && sim.step() {
            steps += 1;
        }
        sim.crash(6);
        let out = sim.run(50_000_000);
        assert!(out.quiescent, "seed {seed}");
        let mut decisions = Vec::new();
        for i in 0..5 {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            decisions.push(p.decision.clone().expect("survivor decides"));
        }
        spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let survivor_inputs: std::collections::BTreeSet<u64> = (0..5).map(|i| i as u64).collect();
        spec::check_nontriviality(&survivor_inputs, &decisions, f)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Ablation: the in-process [`MidCrash`] wrapper (victim keeps absorbing
/// deliveries but stops reacting) must tolerate the same scenario as
/// [`engine_crash_mid_protocol_is_tolerated`].
#[test]
fn mid_protocol_crash_is_tolerated() {
    for crash_after in [0u64, 1, 3, 7, 15] {
        for seed in 0..5 {
            let (n, f) = (4usize, 1usize);
            let config = SystemConfig::new(n, f);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
            for i in 0..3 {
                b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
            }
            b = b.add(Box::new(MidCrash::new(
                WtsProcess::new(3, config, 3u64),
                crash_after,
            )));
            let mut sim = b.build();
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "crash_after={crash_after} seed={seed}");
            let survivors: Vec<ValueSet<u64>> = decisions_of(&sim, 0..3)
                .into_iter()
                .map(|d| {
                    d.unwrap_or_else(|| {
                        panic!("crash_after={crash_after} seed={seed}: survivor stuck")
                    })
                })
                .collect();
            spec::check_comparability(&survivors)
                .unwrap_or_else(|e| panic!("crash_after={crash_after} seed={seed}: {e}"));
        }
    }
}

/// A temporary 2|2 partition delays but cannot prevent agreement: the
/// quorum (3 of 4) spans both sides, so decisions wait for the heal and
/// then complete consistently.
#[test]
fn temporary_partition_delays_but_preserves_agreement() {
    for heal_after in [10u64, 50, 200] {
        let (n, f) = (4usize, 1usize);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(PartitionScheduler::new(
            vec![0, 1],
            heal_after,
            Box::new(FifoScheduler::new()),
        )));
        for i in 0..n {
            b = b.add(Box::new(WtsProcess::new(i, config, 100 + i as u64)));
        }
        let mut sim = b.build();
        let out = sim.run(10_000_000);
        assert!(out.quiescent, "heal_after={heal_after}");
        let mut decisions = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            decisions.push(
                p.decision
                    .clone()
                    .unwrap_or_else(|| panic!("heal_after={heal_after}: p{i} stuck")),
            );
            assert!(p.decision.as_ref().unwrap().contains(&(100 + i as u64)));
        }
        spec::check_comparability(&decisions)
            .unwrap_or_else(|e| panic!("heal_after={heal_after}: {e}"));
    }
}

/// Ablation: `f` in-process [`MidCrash`] crashes at different points of
/// the protocol simultaneously (engine twin:
/// [`engine_staggered_crashes_at_f2`]).
#[test]
fn staggered_crashes_at_f2() {
    for seed in 0..5 {
        let (n, f) = (7usize, 2usize);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..5 {
            b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
        }
        b = b.add(Box::new(MidCrash::new(WtsProcess::new(5, config, 5u64), 2)));
        b = b.add(Box::new(MidCrash::new(
            WtsProcess::new(6, config, 6u64),
            20,
        )));
        let mut sim = b.build();
        let out = sim.run(50_000_000);
        assert!(out.quiescent, "seed {seed}");
        let mut decisions = Vec::new();
        for i in 0..5 {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            decisions.push(p.decision.clone().expect("survivor decides"));
        }
        spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Non-triviality: the crashed processes were honest before the
        // crash, so at most their two (honestly disclosed) values appear
        // beyond the survivors' inputs.
        let survivor_inputs: std::collections::BTreeSet<u64> = (0..5).map(|i| i as u64).collect();
        spec::check_nontriviality(&survivor_inputs, &decisions, f)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
