//! Adversarial runs of the generalized signature-based algorithm:
//! forged `decided` certificates and round-jumping must bounce off the
//! certificate validation and the `Safe_r` trust rule, and bogus delta
//! references must resync without stalling the round pipeline.

use bgla::core::gsbs::{DecidedCert, GsbsMsg, GsbsProcess, SignedAck};
use bgla::core::{spec, SystemConfig};
use bgla::core::{SignedSet, ValueSet};
use bgla::crypto::Keypair;
use bgla::simnet::{Context, Process, RandomScheduler, SimulationBuilder};
use std::any::Any;
use std::collections::BTreeMap;

/// Broadcasts bogus `Decided` certificates: empty ack lists, acks signed
/// by itself thrice, and certs whose values don't match the digest the
/// acks signed.
struct CertForger;

impl Process<GsbsMsg<u64>> for CertForger {
    fn on_start(&mut self, ctx: &mut Context<GsbsMsg<u64>>) {
        let me = ctx.me;
        let kp = Keypair::for_process(me);
        let poison: ValueSet<u64> = [424_242u64].into_iter().collect();
        // 1. No acks at all.
        ctx.broadcast(GsbsMsg::Decided(DecidedCert {
            round: 0,
            values: poison.clone(),
            acks: vec![],
        }));
        // 2. Quorum of self-signed acks (duplicate signer).
        let digest = bgla::core::gsbs::digest_values(&poison);
        let ack = SignedAck::sign(me, 1, 0, digest, me, &kp);
        ctx.broadcast(GsbsMsg::Decided(DecidedCert {
            round: 0,
            values: poison.clone(),
            acks: vec![ack.clone(), ack.clone(), ack.clone()],
        }));
        // 3. Valid-looking ack but over a different digest.
        let other: ValueSet<u64> = [7u64].into_iter().collect();
        let wrong_digest = bgla::core::gsbs::digest_values(&other);
        let ack2 = SignedAck::sign(me, 1, 0, wrong_digest, me, &kp);
        ctx.broadcast(GsbsMsg::Decided(DecidedCert {
            round: 0,
            values: poison,
            acks: vec![ack2.clone(), ack2.clone(), ack2],
        }));
        // 4. Jump rounds with empty requests.
        for round in 0..8 {
            ctx.broadcast(GsbsMsg::AckReq {
                proposed: bgla::core::ProvenUpdate::Full(SignedSet::new()),
                ts: 500 + round,
                round,
            });
        }
    }
    fn on_message(&mut self, _f: usize, _m: GsbsMsg<u64>, _c: &mut Context<GsbsMsg<u64>>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn forged_certificates_are_rejected() {
    for seed in 0..5u64 {
        let (n, f, rounds) = (4usize, 1usize, 3u64);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..3 {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            schedule.insert(0, vec![100 + i as u64]);
            b = b.add(Box::new(GsbsProcess::new(i, config, schedule, rounds)));
        }
        b = b.add(Box::new(CertForger));
        let mut sim = b.build();
        let out = sim.run(50_000_000);
        assert!(out.quiescent, "seed {seed}");
        let mut seqs = Vec::new();
        for i in 0..3 {
            let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(
                p.decisions.len(),
                rounds as usize,
                "seed {seed} p{i}: liveness"
            );
            // The poison value from the forged certificates must never
            // appear in any decision.
            for d in &p.decisions {
                assert!(!d.contains(&424_242), "seed {seed}: forged cert accepted");
            }
            seqs.push(p.decisions.clone());
        }
        spec::check_local_stability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn bogus_delta_references_resync_without_stalling_rounds() {
    // The delta-gap schedule search, generalized: unresolvable
    // references and bases across a multi-round stream. Honest
    // processes must detect every gap, answer with resyncs, finish all
    // rounds, and never absorb the adversary's forged batches.
    use bgla::core::adversary::gsbs::BogusRefSender;
    for seed in 0..5u64 {
        let (n, f, rounds) = (4usize, 1usize, 3u64);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..3 {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            schedule.insert(0, vec![100 + i as u64]);
            schedule.insert(1, vec![200 + i as u64]);
            b = b.add(Box::new(GsbsProcess::new(i, config, schedule, rounds)));
        }
        b = b.add(Box::new(BogusRefSender::new(3, 31_337u64)));
        let mut sim = b.build();
        let out = sim.run(50_000_000);
        assert!(out.quiescent, "seed {seed}");
        let mut seqs = Vec::new();
        for i in 0..3 {
            let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(
                p.decisions.len(),
                rounds as usize,
                "seed {seed} p{i}: liveness despite delta gaps"
            );
            for d in &p.decisions {
                assert!(
                    !d.contains(&31_337),
                    "seed {seed}: a bogus-reference payload was accepted"
                );
            }
            seqs.push(p.decisions.clone());
        }
        spec::check_local_stability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // The fallback ran end-to-end.
        let resyncs = sim
            .metrics()
            .sent_by_kind
            .get("resync")
            .copied()
            .unwrap_or(0);
        assert!(resyncs > 0, "seed {seed}: no gap was ever detected");
        let adv = sim.process_as::<BogusRefSender<u64>>(3).unwrap();
        assert!(adv.resyncs_seen > 0, "seed {seed}: resyncs never arrived");
    }
}
