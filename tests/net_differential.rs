//! Classic vs event-driven runtime differential: the thread-per-link
//! runtime ([`bgla::net::ClassicRuntime`]) and the poller-pool runtime
//! ([`bgla::net::TcpRuntime`]) are two implementations of one
//! reliable-link contract, so under the *same* seeded fault schedule
//! every algorithm must produce the same schedule-independent
//! outcomes on both: the union of decisions (forced by inclusivity +
//! non-triviality in honest quiescent runs), and a merged trace that
//! passes the unchanged prefix checker.
//!
//! Per-delivery interleavings legitimately differ — real concurrency
//! is a scheduler — so the comparison is at the decision/conformance
//! level, exactly like the simulator-vs-TCP differential in
//! `net_conformance.rs`.
//!
//! The `NET_SWEEP`-gated test at the bottom is the scale probe: n = 32
//! honest WTS nodes over one poller pool, everyone decides. CI runs it
//! in its own step beside `NET_SMOKE`.

use bgla::core::gsbs::GsbsProcess;
use bgla::core::gwts::GwtsProcess;
use bgla::core::harness::{
    gsbs_node_observer, gwts_node_observer, sbs_node_observer, wts_node_observer,
};
use bgla::core::linearize::{check_trace, CheckerConfig};
use bgla::core::sbs::SbsProcess;
use bgla::core::search::op_priority;
use bgla::core::wts::WtsProcess;
use bgla::core::SystemConfig;
use bgla::net::{
    ClassicRuntimeBuilder, FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntimeBuilder,
};
use bgla::simnet::{Trace, Transport};
use std::collections::{BTreeMap, BTreeSet};

const N: usize = 4;
const F: usize = 1;
const BUDGET: u64 = 1_000_000;

fn ident(v: &u64) -> u64 {
    *v
}

/// One shared transport config: both runtimes get the *same* fault
/// schedule and link seeds, so masking work differs only by runtime
/// architecture.
fn shared_cfg(fault_seed: u64, seed: u64) -> NetConfig {
    NetConfig {
        faults: FaultPlan::new(fault_seed, FaultConfig::chaos()),
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        seed,
        ..NetConfig::default()
    }
}

/// Runs a transport to quiescence and returns its merged trace.
fn drive<M, T>(rt: &mut T, label: &str, take: impl FnOnce(&mut T) -> Trace) -> Trace
where
    M: bgla::simnet::WireMessage + bgla::codec::Wire + 'static,
    T: Transport<M>,
{
    let out = rt.run_transport(BUDGET);
    assert!(
        out.quiescent,
        "{label}: did not quiesce (delivered {})",
        out.delivered
    );
    take(rt)
}

fn conforms(trace: &Trace, label: &str) {
    let witness = check_trace(trace, &CheckerConfig::honest_system(N, F))
        .unwrap_or_else(|v| panic!("{label}: violation: {v}"));
    witness.validate().expect("witness validates");
}

// ---------------------------------------------------------------------------
// Per-algorithm decision extraction (over the shared Transport trait)
// ---------------------------------------------------------------------------

fn wts_union<T: Transport<bgla::core::wts::WtsMsg<u64>>>(rt: &T) -> BTreeSet<u64> {
    let mut u = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let w = p.as_any().downcast_ref::<WtsProcess<u64>>().unwrap();
            u.extend(w.decision.as_ref().expect("wts decides").iter().copied());
        });
    }
    u
}

fn sbs_union<T: Transport<bgla::core::sbs::SbsMsg<u64>>>(rt: &T) -> BTreeSet<u64> {
    let mut u = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let s = p.as_any().downcast_ref::<SbsProcess<u64>>().unwrap();
            u.extend(s.decision.as_ref().expect("sbs decides").iter().copied());
        });
    }
    u
}

fn gwts_union<T: Transport<bgla::core::gwts::GwtsMsg<u64>>>(rt: &T) -> BTreeSet<u64> {
    let mut u = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GwtsProcess<u64>>().unwrap();
            u.extend(g.decisions.last().expect("gwts decides").iter().copied());
        });
    }
    u
}

fn gsbs_union<T: Transport<bgla::core::gsbs::GsbsMsg<u64>>>(rt: &T) -> BTreeSet<u64> {
    let mut u = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GsbsProcess<u64>>().unwrap();
            u.extend(g.decisions.last().expect("gsbs decides").iter().copied());
        });
    }
    u
}

fn round0_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut schedule = BTreeMap::new();
    schedule.insert(0, vec![100 + i as u64, 200 + i as u64]);
    schedule
}

// ---------------------------------------------------------------------------
// The four differentials
// ---------------------------------------------------------------------------

#[test]
fn wts_decisions_agree_between_classic_and_poller_runtimes() {
    let config = SystemConfig::new(N, F);
    let inputs: BTreeSet<u64> = (0..N).map(|i| 10 + i as u64).collect();

    let mut classic = {
        let mut b = ClassicRuntimeBuilder::new(shared_cfg(0xD1FF, 0x11));
        for i in 0..N {
            b = b.add_observed(
                Box::new(WtsProcess::new(i, config, 10 + i as u64)),
                wts_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let classic_trace = drive(&mut classic, "wts/classic", |rt| rt.take_trace(op_priority));
    let classic_union = wts_union(&classic);

    let mut poller = {
        let mut b = TcpRuntimeBuilder::new(shared_cfg(0xD1FF, 0x11));
        for i in 0..N {
            b = b.add_observed(
                Box::new(WtsProcess::new(i, config, 10 + i as u64)),
                wts_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let poller_trace = drive(&mut poller, "wts/poller", |rt| rt.take_trace(op_priority));
    let poller_union = wts_union(&poller);

    assert_eq!(classic_union, inputs);
    assert_eq!(poller_union, classic_union, "decision-level differential");
    conforms(&classic_trace, "wts/classic");
    conforms(&poller_trace, "wts/poller");
}

#[test]
fn sbs_decisions_agree_between_classic_and_poller_runtimes() {
    let config = SystemConfig::new(N, F);
    let inputs: BTreeSet<u64> = (0..N).map(|i| 10 + i as u64).collect();

    let mut classic = {
        let mut b = ClassicRuntimeBuilder::new(shared_cfg(0xD1FE, 0x13));
        for i in 0..N {
            b = b.add_observed(
                Box::new(SbsProcess::new(i, config, 10 + i as u64)),
                sbs_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let classic_trace = drive(&mut classic, "sbs/classic", |rt| rt.take_trace(op_priority));
    let classic_union = sbs_union(&classic);

    let mut poller = {
        let mut b = TcpRuntimeBuilder::new(shared_cfg(0xD1FE, 0x13));
        for i in 0..N {
            b = b.add_observed(
                Box::new(SbsProcess::new(i, config, 10 + i as u64)),
                sbs_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let poller_trace = drive(&mut poller, "sbs/poller", |rt| rt.take_trace(op_priority));
    let poller_union = sbs_union(&poller);

    assert_eq!(classic_union, inputs);
    assert_eq!(poller_union, classic_union, "decision-level differential");
    conforms(&classic_trace, "sbs/classic");
    conforms(&poller_trace, "sbs/poller");
}

#[test]
fn gwts_decisions_agree_between_classic_and_poller_runtimes() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let inputs: BTreeSet<u64> = (0..N)
        .flat_map(|i| [100 + i as u64, 200 + i as u64])
        .collect();

    let mut classic = {
        let mut b = ClassicRuntimeBuilder::new(shared_cfg(0xD1FD, 0x17));
        for i in 0..N {
            b = b.add_observed(
                Box::new(GwtsProcess::new(i, config, round0_schedule(i), rounds)),
                gwts_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let classic_trace = drive(&mut classic, "gwts/classic", |rt| {
        rt.take_trace(op_priority)
    });
    let classic_union = gwts_union(&classic);

    let mut poller = {
        let mut b = TcpRuntimeBuilder::new(shared_cfg(0xD1FD, 0x17));
        for i in 0..N {
            b = b.add_observed(
                Box::new(GwtsProcess::new(i, config, round0_schedule(i), rounds)),
                gwts_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let poller_trace = drive(&mut poller, "gwts/poller", |rt| rt.take_trace(op_priority));
    let poller_union = gwts_union(&poller);

    assert_eq!(classic_union, inputs);
    assert_eq!(poller_union, classic_union, "decision-level differential");
    conforms(&classic_trace, "gwts/classic");
    conforms(&poller_trace, "gwts/poller");
}

#[test]
fn gsbs_decisions_agree_between_classic_and_poller_runtimes() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let inputs: BTreeSet<u64> = (0..N)
        .flat_map(|i| [100 + i as u64, 200 + i as u64])
        .collect();

    let mut classic = {
        let mut b = ClassicRuntimeBuilder::new(shared_cfg(0xD1FC, 0x19));
        for i in 0..N {
            b = b.add_observed(
                Box::new(GsbsProcess::new(i, config, round0_schedule(i), rounds)),
                gsbs_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let classic_trace = drive(&mut classic, "gsbs/classic", |rt| {
        rt.take_trace(op_priority)
    });
    let classic_union = gsbs_union(&classic);

    let mut poller = {
        let mut b = TcpRuntimeBuilder::new(shared_cfg(0xD1FC, 0x19));
        for i in 0..N {
            b = b.add_observed(
                Box::new(GsbsProcess::new(i, config, round0_schedule(i), rounds)),
                gsbs_node_observer(i, ident),
            );
        }
        b.build().expect("bind localhost")
    };
    let poller_trace = drive(&mut poller, "gsbs/poller", |rt| rt.take_trace(op_priority));
    let poller_union = gsbs_union(&poller);

    assert_eq!(classic_union, inputs);
    assert_eq!(poller_union, classic_union, "decision-level differential");
    conforms(&classic_trace, "gsbs/classic");
    conforms(&poller_trace, "gsbs/poller");
}

// ---------------------------------------------------------------------------
// Scale probe (gated: NET_SWEEP=1)
// ---------------------------------------------------------------------------

#[test]
fn net_sweep_thirty_two_honest_wts_nodes_decide_over_one_pool() {
    if std::env::var("NET_SWEEP").is_err() {
        eprintln!("net_sweep: NET_SWEEP unset, skipping the 32-node scale probe");
        return;
    }
    let n = 32;
    let f = 10; // n > 3f still holds: 32 > 30
    let config = SystemConfig::new(n, f);
    let cfg = NetConfig {
        seed: 0x5EEE,
        deadline_ms: 120_000,
        ..NetConfig::default()
    };
    let mut b = TcpRuntimeBuilder::new(cfg);
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::new(i, config, 10 + i as u64)));
    }
    let mut rt = b.build().expect("bind localhost");
    let out = rt.run_transport(10_000_000);
    assert!(
        out.quiescent,
        "32-node honest run must quiesce (delivered {})",
        out.delivered
    );
    let inputs: BTreeSet<u64> = (0..n).map(|i| 10 + i as u64).collect();
    let mut union = BTreeSet::new();
    for i in 0..n {
        rt.with_process(i, &mut |p| {
            let w = p.as_any().downcast_ref::<WtsProcess<u64>>().unwrap();
            let d = w.decision.as_ref().expect("every node decides");
            assert!(
                d.contains(&(10 + i as u64)),
                "node {i} decision misses its own input"
            );
            union.extend(d.iter().copied());
        });
    }
    assert_eq!(union, inputs);
    rt.shutdown();
}
