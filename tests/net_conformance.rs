//! Protocol conformance over the real TCP runtime: all four algorithms
//! run over localhost sockets under a seeded fault injector (drops,
//! duplicates, delays, mid-frame resets, partition windows), must
//! decide exactly as the reliable-link model promises, and their merged
//! traces must pass the *unchanged* PR-5 prefix checker — the same
//! `check_trace` the simulator sweeps use, fed by the same observer
//! diffing logic, ordered by the same op priority.
//!
//! The differential half pins the decision-level outcome against
//! simulator runs: in an honest quiescent run, inclusivity plus
//! non-triviality force the union of all correct decisions to equal the
//! union of all inputs — a schedule-independent invariant that must
//! hold identically on both runtimes, for every seed.

use bgla::core::adversary::Equivocator;
use bgla::core::gsbs::GsbsProcess;
use bgla::core::gwts::GwtsProcess;
use bgla::core::harness::{
    assert_la_spec, gsbs_node_observer, gwts_node_observer, sbs_node_observer, sbs_system,
    wts_node_observer, wts_report, wts_system,
};
use bgla::core::linearize::{check_trace, CheckerConfig};
use bgla::core::sbs::SbsProcess;
use bgla::core::search::op_priority;
use bgla::core::wts::WtsProcess;
use bgla::core::{SystemConfig, ValueSet};
use bgla::net::{FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntime, TcpRuntimeBuilder};
use bgla::simnet::{FifoScheduler, RandomScheduler, Scheduler, Trace, Transport};
use std::collections::{BTreeMap, BTreeSet};

const N: usize = 4;
const F: usize = 1;
const BUDGET: u64 = 1_000_000;

fn ident(v: &u64) -> u64 {
    *v
}

/// Transport config with the given fault schedule and a faster RTO so
/// fault-heavy runs converge quickly.
fn net_cfg(fault_seed: u64, faults: FaultConfig, seed: u64) -> NetConfig {
    NetConfig {
        faults: FaultPlan::new(fault_seed, faults),
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        seed,
        ..NetConfig::default()
    }
}

/// Runs the TCP system to quiescence, asserting it got there, and
/// returns the merged trace (which shuts the runtime down).
fn run_and_trace<M>(rt: &mut TcpRuntime<M>, label: &str) -> Trace
where
    M: bgla::simnet::WireMessage + bgla::codec::Wire + 'static,
{
    let out = rt.run_transport(BUDGET);
    assert!(
        out.quiescent,
        "{label}: fault masking failed to quiesce (delivered {})",
        out.delivered
    );
    rt.take_trace(op_priority)
}

/// The union of every correct process's (final) decision.
fn union(decisions: &[ValueSet<u64>]) -> BTreeSet<u64> {
    decisions.iter().flat_map(|d| d.iter().copied()).collect()
}

// ---------------------------------------------------------------------------
// WTS
// ---------------------------------------------------------------------------

fn wts_tcp(fault_seed: u64, faults: FaultConfig) -> TcpRuntime<bgla::core::wts::WtsMsg<u64>> {
    let config = SystemConfig::new(N, F);
    let mut b = TcpRuntimeBuilder::new(net_cfg(fault_seed, faults, fault_seed ^ 0xA5));
    for i in 0..N {
        b = b.add_observed(
            Box::new(WtsProcess::new(i, config, 10 + i as u64)),
            wts_node_observer(i, ident),
        );
    }
    b.build().expect("bind localhost")
}

#[test]
fn wts_over_tcp_under_chaos_matches_simnet_and_conforms() {
    let inputs: BTreeSet<u64> = (0..N).map(|i| 10 + i as u64).collect();
    let correct: Vec<usize> = (0..N).collect();

    // Simulator side of the differential: the honest-run invariant
    // (union of decisions == union of inputs) across schedules.
    for sched in [
        Box::new(FifoScheduler::new()) as Box<dyn Scheduler>,
        Box::new(RandomScheduler::new(42)),
    ] {
        let (mut sim, config) = wts_system(N, F, |i| 10 + i as u64, sched);
        assert!(sim.run(BUDGET).quiescent);
        let report = wts_report(&sim, &correct);
        assert_la_spec(&report, &inputs, config.f);
        assert_eq!(union(&report.decisions), inputs);
    }

    // TCP side, two fault seeds: same spec battery, same invariant,
    // and the merged trace passes the unchanged prefix checker.
    for fault_seed in [0xC0DE, 0xBEEF] {
        let mut rt = wts_tcp(fault_seed, FaultConfig::chaos());
        let out = rt.run_transport(BUDGET);
        assert!(out.quiescent, "wts/tcp({fault_seed:#x}): did not quiesce");

        let report = wts_report(&rt, &correct);
        assert_la_spec(&report, &inputs, F);
        assert_eq!(union(&report.decisions), inputs);

        let m = rt.metrics_snapshot();
        assert!(m.net_retransmits > 0, "chaos must force retransmissions");
        assert!(m.net_dup_frames > 0, "chaos must exercise dedup");

        let trace = rt.take_trace(op_priority);
        let witness = check_trace(&trace, &CheckerConfig::honest_system(N, F))
            .unwrap_or_else(|v| panic!("wts/tcp({fault_seed:#x}): violation: {v}"));
        witness.validate().expect("linearization witness validates");
    }
}

#[test]
fn wts_over_tcp_with_equivocator_conforms() {
    let config = SystemConfig::new(N, F);
    // Reset-heavy schedule: the Byzantine run also pins the
    // reconnect/resync path (`net_reconnects` below).
    let faults = FaultConfig {
        drop_per_mille: 60,
        reset_per_mille: 200,
        ..FaultConfig::default()
    };
    let mut b = TcpRuntimeBuilder::new(net_cfg(0x0B57, faults, 3));
    for i in 0..N - 1 {
        b = b.add_observed(
            Box::new(WtsProcess::new(i, config, 10 + i as u64)),
            wts_node_observer(i, ident),
        );
    }
    b = b.add(Box::new(Equivocator {
        a: 91_001u64,
        b: 91_002u64,
    }));
    let mut rt = b.build().expect("bind localhost");
    let trace = run_and_trace(&mut rt, "wts/tcp/equivocator");

    // Every honest process decided, and the trace passes the Byzantine
    // checker config (≤ f foreign values, comparability, inclusivity
    // over honest processes).
    for i in 0..N - 1 {
        rt.with_process(i, &mut |p| {
            let w = p.as_any().downcast_ref::<WtsProcess<u64>>().unwrap();
            assert!(w.decision.is_some(), "honest process {i} did not decide");
        });
    }
    let m = rt.metrics_snapshot();
    assert!(m.net_reconnects > 0, "20% resets must force reconnects");
    assert!(m.net_retransmits > 0, "drops must force retransmissions");

    let witness = check_trace(&trace, &CheckerConfig::with_byzantine(N, F, &[N - 1]))
        .unwrap_or_else(|v| panic!("wts/tcp/equivocator: violation: {v}"));
    witness.validate().expect("witness validates");
}

// ---------------------------------------------------------------------------
// SbS
// ---------------------------------------------------------------------------

#[test]
fn sbs_over_tcp_under_chaos_matches_simnet_and_conforms() {
    let config = SystemConfig::new(N, F);
    let inputs: BTreeSet<u64> = (0..N).map(|i| 10 + i as u64).collect();

    // Simulator side: same invariant through the signature algorithm.
    let (mut sim, _) = sbs_system(N, F, |i| 10 + i as u64, Box::new(FifoScheduler::new()));
    assert!(sim.run(BUDGET).quiescent);
    let mut sim_union = BTreeSet::new();
    for i in 0..N {
        let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
        let d = p.decision.as_ref().expect("sim: everyone decides");
        sim_union.extend(d.iter().copied());
    }
    assert_eq!(sim_union, inputs);

    // TCP side under chaos.
    let mut b = TcpRuntimeBuilder::new(net_cfg(0x5B5, FaultConfig::chaos(), 11));
    for i in 0..N {
        b = b.add_observed(
            Box::new(SbsProcess::new(i, config, 10 + i as u64)),
            sbs_node_observer(i, ident),
        );
    }
    let mut rt = b.build().expect("bind localhost");
    let trace = run_and_trace(&mut rt, "sbs/tcp");

    let mut tcp_union = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let s = p.as_any().downcast_ref::<SbsProcess<u64>>().unwrap();
            let d = s.decision.as_ref().expect("tcp: everyone decides");
            tcp_union.extend(d.iter().copied());
        });
    }
    assert_eq!(tcp_union, sim_union, "decision-level differential");

    let witness = check_trace(&trace, &CheckerConfig::honest_system(N, F))
        .unwrap_or_else(|v| panic!("sbs/tcp: violation: {v}"));
    witness.validate().expect("witness validates");
}

// ---------------------------------------------------------------------------
// GWTS / GSbS (streaming)
// ---------------------------------------------------------------------------

fn round0_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    // Inputs only in round 0 of 3: two drain rounds keep inclusivity
    // meaningful at the finite horizon (as in the simulator sweeps).
    let mut schedule = BTreeMap::new();
    schedule.insert(0, vec![100 + i as u64, 200 + i as u64]);
    schedule
}

fn streaming_inputs() -> BTreeSet<u64> {
    (0..N)
        .flat_map(|i| [100 + i as u64, 200 + i as u64])
        .collect()
}

#[test]
fn gwts_over_tcp_under_chaos_matches_simnet_and_conforms() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let inputs = streaming_inputs();

    // Simulator side.
    let (mut sim, _) = bgla::core::harness::gwts_system(
        N,
        F,
        rounds,
        round0_schedule,
        Box::new(FifoScheduler::new()),
    );
    assert!(sim.run(BUDGET).quiescent);
    let mut sim_union = BTreeSet::new();
    for i in 0..N {
        let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
        let d = p.decisions.last().expect("sim: decided at least once");
        sim_union.extend(d.iter().copied());
    }
    assert_eq!(sim_union, inputs);

    // TCP side under chaos.
    let mut b = TcpRuntimeBuilder::new(net_cfg(0x6175, FaultConfig::chaos(), 13));
    for i in 0..N {
        b = b.add_observed(
            Box::new(GwtsProcess::new(i, config, round0_schedule(i), rounds)),
            gwts_node_observer(i, ident),
        );
    }
    let mut rt = b.build().expect("bind localhost");
    let trace = run_and_trace(&mut rt, "gwts/tcp");

    let mut tcp_union = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GwtsProcess<u64>>().unwrap();
            let d = g.decisions.last().expect("tcp: decided at least once");
            tcp_union.extend(d.iter().copied());
        });
    }
    assert_eq!(tcp_union, sim_union, "decision-level differential");

    let witness = check_trace(&trace, &CheckerConfig::honest_system(N, F))
        .unwrap_or_else(|v| panic!("gwts/tcp: violation: {v}"));
    witness.validate().expect("witness validates");
}

#[test]
fn gsbs_over_tcp_under_chaos_matches_simnet_and_conforms() {
    let config = SystemConfig::new(N, F);
    let rounds = 3u64;
    let inputs = streaming_inputs();

    // Simulator side.
    let (mut sim, _) = bgla::core::harness::gsbs_system(
        N,
        F,
        rounds,
        round0_schedule,
        Box::new(FifoScheduler::new()),
    );
    assert!(sim.run(BUDGET).quiescent);
    let mut sim_union = BTreeSet::new();
    for i in 0..N {
        let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
        let d = p.decisions.last().expect("sim: decided at least once");
        sim_union.extend(d.iter().copied());
    }
    assert_eq!(sim_union, inputs);

    // TCP side under chaos.
    let mut b = TcpRuntimeBuilder::new(net_cfg(0x65B5, FaultConfig::chaos(), 17));
    for i in 0..N {
        b = b.add_observed(
            Box::new(GsbsProcess::new(i, config, round0_schedule(i), rounds)),
            gsbs_node_observer(i, ident),
        );
    }
    let mut rt = b.build().expect("bind localhost");
    let trace = run_and_trace(&mut rt, "gsbs/tcp");

    let mut tcp_union = BTreeSet::new();
    for i in 0..N {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GsbsProcess<u64>>().unwrap();
            let d = g.decisions.last().expect("tcp: decided at least once");
            tcp_union.extend(d.iter().copied());
        });
    }
    assert_eq!(tcp_union, sim_union, "decision-level differential");

    let witness = check_trace(&trace, &CheckerConfig::honest_system(N, F))
        .unwrap_or_else(|v| panic!("gsbs/tcp: violation: {v}"));
    witness.validate().expect("witness validates");
}
