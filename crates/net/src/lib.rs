//! Real `std::net` TCP runtime for the BGLA protocol core.
//!
//! The paper (Di Luna, Anceaume, Querzoni, *Byzantine Generalized
//! Lattice Agreement*) assumes **reliable authenticated point-to-point
//! links**. `bgla_simnet` discharges that assumption by construction;
//! this crate discharges it over real sockets, by *masking* the faults
//! a TCP deployment actually exhibits. The four algorithms run
//! unchanged — one protocol core, two runtimes, both behind
//! [`bgla_simnet::Transport`] — and every protocol message crosses the
//! wire through `bgla_codec`'s real framing, turning the simulator's
//! *modeled* byte counts into *measured* bytes
//! ([`bgla_simnet::Metrics::net_frame_bytes`]).
//!
//! # Architecture: event-driven, fixed thread budget
//!
//! The runtime is event-driven. A [`poller::PollerPool`] of
//! `min(4, cores)` threads (override:
//! [`config::NetConfig::poller_threads`]) owns **every socket** of a
//! runtime — listeners, inbound connections, outbound links — and
//! drives the per-link state machines as poll-driven steps over
//! nonblocking sockets, using an in-repo `poll(2)`-style readiness
//! sweep (no `epoll` binding: the workspace denies `unsafe`). Each
//! node contributes exactly one **event thread**, the only thread that
//! touches its protocol state.
//!
//! **Thread budget for an n-node runtime: pool (≤ 4) + n event
//! threads**, asserted by `tests/thread_budget.rs` — versus roughly
//! `3·n·(n−1)` for the thread-per-link design this replaced (kept,
//! verbatim in behavior, as [`classic`] for differential testing).
//!
//! Two scheduling decisions follow from the pooled design:
//!
//! * **Ack batching** — the receive side acknowledges once per
//!   readiness wakeup with the cumulative next-expected sequence,
//!   covering every DATA frame the wakeup drained, instead of one ACK
//!   frame per DATA frame. Cumulative acks make the coarser cadence
//!   free: any ack repairs all predecessors.
//! * **One timer wheel** — every retransmit and redial timer of the
//!   runtime lives in a single hashed [`wheel`] (`TimerWheel`),
//!   expired during pool sweeps, rather than per-link timers checked
//!   by per-link threads. Backoff + seeded jitter semantics are
//!   unchanged ([`link::SenderLink`] still owns the arithmetic); the
//!   wheel only decides *when someone looks*. The armed deadline is
//!   additionally capped per link-epoch
//!   ([`link::LinkConfig::rto_epoch_cap_ms`]) so stacked backoff
//!   cannot stretch a healed link's quiet period into seconds.
//!
//! # The reliability contract
//!
//! **Masked** (invisible to the protocol, beyond latency):
//!
//! * **Frame loss** — per-peer sequence numbers; the sender keeps
//!   every unacknowledged frame and retransmits on ack timeout, with
//!   exponential backoff + seeded jitter ([`link::SenderLink`]).
//! * **Duplication** — injected duplicates and spurious
//!   retransmissions are discarded by receive-side dedup; every
//!   DATA-bearing wakeup is acknowledged so lost ACKs self-heal
//!   ([`link::ReceiverLink`]).
//! * **Reordering / delay** — out-of-order frames are stashed and
//!   delivered in sequence (per link; cross-link order is unordered
//!   exactly as in the asynchronous model).
//! * **Connection resets, including mid-frame** — torn frames fail
//!   the checksum, the connection dies, the dialer reconnects with
//!   backoff and *resyncs*: a HELLO exchange tells it what the peer
//!   has, and only the unseen tail is retransmitted.
//! * **Partitions that heal** — while a link is cut, traffic queues
//!   in the bounded unacked window; when it heals, retransmission and
//!   resync drain the backlog. Decisions already reached elsewhere
//!   propagate as soon as connectivity returns (graceful resumption).
//!
//! **Surfaced** (reported, not hidden — the contract's honest edge):
//!
//! * **Peer down past the bounded outbox horizon** — a sender buffers
//!   at most [`link::LinkConfig::max_unacked`] messages per peer;
//!   beyond that, new messages to the dead peer are dropped and
//!   counted ([`bgla_simnet::Metrics::net_outbox_dropped`]). This is
//!   deliberate: unbounded buffering would just trade a visible fault
//!   for an invisible OOM. The protocol layer tolerates it exactly as
//!   far as its `f`-resilience allows, which is the paper's own story
//!   for crashed processes.
//! * **Process crash** — this crate does not restart processes; the
//!   durable-snapshot machinery (PR 7) exists for that and composes at
//!   the layer above.
//!
//! # Quiescence
//!
//! "The system is done" is confirmed by a generation-stamped counter
//! protocol ([`counters::SharedCounters::confirm_quiescent`]): enqueue
//! *intents* and *retirements* are counted separately, and quiescence
//! is two balanced reads bracketing an unchanged generation — sound
//! with no sleep anywhere, unlike the time-beat heuristic the classic
//! runtime used (a dispatcher slower than the beat could fool it; see
//! `counters` for the regression test).
//!
//! # Determinism
//!
//! Real sockets and threads are not deterministic; the *fault
//! schedule* is. [`fault::FaultPlan`] decides each frame's fate by a
//! pure hash of `(seed, link, frame index)` — see [`fault`] for what
//! that does and does not pin down. The pure state machines in
//! [`link`] are fully deterministic and unit-tested with exact
//! counter pins; whole-system tests assert masking *invariants*
//! (everyone decides; traces pass the conformance checker; counters
//! non-zero) rather than byte-identical schedules.
//!
//! This crate is intentionally **not** in `bgla-lint`'s
//! trace-affecting set: it performs real I/O and reads real clocks by
//! design. Its decode surfaces (`frame::demux_frame` and the
//! `Wire::decode` impls) are held to the same hostile-input standard
//! as the rest of the workspace by the `byzantine-panic` and
//! `frame-demux-coverage` passes, and the poller module is held to
//! its nonblocking discipline by the `poller-nonblocking` pass.

#![warn(missing_docs)]

pub mod classic;
pub mod config;
pub mod counters;
pub mod fault;
pub mod frame;
pub mod link;
pub mod node;
pub mod poller;
pub mod runtime;
pub mod trace_merge;
pub(crate) mod wheel;

pub use classic::{ClassicRuntime, ClassicRuntimeBuilder, ClassicTcpNode};
pub use config::NetConfig;
pub use counters::SharedCounters;
pub use fault::{FaultAction, FaultConfig, FaultPlan};
pub use frame::{demux_frame, Ack, Data, Hello, NetFrame, FK_ACK, FK_DATA, FK_HELLO};
pub use link::{LinkConfig, ReceiverLink, SenderLink};
pub use node::{NodeSpec, TcpNode};
pub use poller::PollerPool;
pub use runtime::{TcpRuntime, TcpRuntimeBuilder};
pub use trace_merge::{merge_traces, LocalDelivery, LocalOp, NodeLog};
