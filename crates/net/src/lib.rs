//! Real `std::net` TCP runtime for the BGLA protocol core.
//!
//! The paper (Di Luna, Anceaume, Querzoni, *Byzantine Generalized
//! Lattice Agreement*) assumes **reliable authenticated point-to-point
//! links**. `bgla_simnet` discharges that assumption by construction;
//! this crate discharges it over real sockets, by *masking* the faults
//! a TCP deployment actually exhibits. The four algorithms run
//! unchanged — one protocol core, two runtimes, both behind
//! [`bgla_simnet::Transport`] — and every protocol message crosses the
//! wire through `bgla_codec`'s real framing, turning the simulator's
//! *modeled* byte counts into *measured* bytes
//! ([`bgla_simnet::Metrics::net_frame_bytes`]).
//!
//! # The reliability contract
//!
//! **Masked** (invisible to the protocol, beyond latency):
//!
//! * **Frame loss** — per-peer sequence numbers; the sender keeps
//!   every unacknowledged frame and retransmits on ack timeout, with
//!   exponential backoff + seeded jitter ([`link::SenderLink`]).
//! * **Duplication** — injected duplicates and spurious
//!   retransmissions are discarded by receive-side dedup; every copy
//!   is acknowledged so lost ACKs self-heal ([`link::ReceiverLink`]).
//! * **Reordering / delay** — out-of-order frames are stashed and
//!   delivered in sequence (per link; cross-link order is unordered
//!   exactly as in the asynchronous model).
//! * **Connection resets, including mid-frame** — torn frames fail
//!   the checksum, the connection dies, the dialer reconnects with
//!   backoff and *resyncs*: a HELLO exchange tells it what the peer
//!   has, and only the unseen tail is retransmitted.
//! * **Partitions that heal** — while a link is cut, traffic queues
//!   in the bounded unacked window; when it heals, retransmission and
//!   resync drain the backlog. Decisions already reached elsewhere
//!   propagate as soon as connectivity returns (graceful resumption).
//!
//! **Surfaced** (reported, not hidden — the contract's honest edge):
//!
//! * **Peer down past the bounded outbox horizon** — a sender buffers
//!   at most [`link::LinkConfig::max_unacked`] messages per peer;
//!   beyond that, new messages to the dead peer are dropped and
//!   counted ([`bgla_simnet::Metrics::net_outbox_dropped`]). This is
//!   deliberate: unbounded buffering would just trade a visible fault
//!   for an invisible OOM. The protocol layer tolerates it exactly as
//!   far as its `f`-resilience allows, which is the paper's own story
//!   for crashed processes.
//! * **Process crash** — this crate does not restart processes; the
//!   durable-snapshot machinery (PR 7) exists for that and composes at
//!   the layer above.
//!
//! # Determinism
//!
//! Real sockets and threads are not deterministic; the *fault
//! schedule* is. [`fault::FaultPlan`] decides each frame's fate by a
//! pure hash of `(seed, link, frame index)` — see [`fault`] for what
//! that does and does not pin down. The pure state machines in
//! [`link`] are fully deterministic and unit-tested with exact
//! counter pins; whole-system tests assert masking *invariants*
//! (everyone decides; traces pass the conformance checker; counters
//! non-zero) rather than byte-identical schedules.
//!
//! This crate is intentionally **not** in `bgla-lint`'s
//! trace-affecting set: it performs real I/O and reads real clocks by
//! design. Its decode surfaces (`frame::demux_frame` and the
//! `Wire::decode` impls) are held to the same hostile-input standard
//! as the rest of the workspace by the `byzantine-panic` and
//! `frame-demux-coverage` passes.

#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod link;
pub mod node;
pub mod runtime;
pub mod trace_merge;

pub use fault::{FaultAction, FaultConfig, FaultPlan};
pub use frame::{demux_frame, Ack, Data, Hello, NetFrame, FK_ACK, FK_DATA, FK_HELLO};
pub use link::{LinkConfig, ReceiverLink, SenderLink};
pub use node::{NetConfig, NodeSpec, SharedCounters, TcpNode};
pub use runtime::{TcpRuntime, TcpRuntimeBuilder};
pub use trace_merge::{merge_traces, LocalDelivery, LocalOp, NodeLog};
