//! A hashed timer wheel: every retransmit and redial timer of a
//! runtime coalesced into one structure, fired by whichever poller
//! thread sweeps it next.
//!
//! Entries are `(absolute deadline ms, key)` pairs hashed into a slot
//! by `deadline / granularity % slots`. [`TimerWheel::expire`] sweeps
//! the slots between the last sweep horizon and `now`, returning due
//! keys and leaving future entries (same slot, later lap) in place.
//! Cancellation is lazy: the owner of a fired key re-checks its own
//! state (a stale entry is re-armed or dropped there), so schedules
//! are cheap appends and nothing ever searches the wheel.

/// A hashed timer wheel over caller-supplied millisecond deadlines.
#[derive(Debug)]
pub(crate) struct TimerWheel<K> {
    granularity_ms: u64,
    slots: Vec<Vec<(u64, K)>>,
    /// Everything with a deadline `< horizon` has been handed out.
    horizon: u64,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// A wheel of `slots` buckets, each `granularity_ms` wide.
    pub fn new(granularity_ms: u64, slots: usize) -> TimerWheel<K> {
        TimerWheel {
            granularity_ms: granularity_ms.max(1),
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            horizon: 0,
            len: 0,
        }
    }

    /// Live entries (due-but-unswept included).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    fn slot_of(&self, deadline: u64) -> usize {
        ((deadline / self.granularity_ms) % self.slots.len() as u64) as usize
    }

    /// Schedules `key` to fire at `deadline_ms`. Deadlines already
    /// behind the sweep horizon land in the current slot and come out
    /// on the next sweep.
    pub fn schedule(&mut self, deadline_ms: u64, key: K) {
        let effective = deadline_ms.max(self.horizon);
        let slot = self.slot_of(effective);
        self.slots[slot].push((deadline_ms, key));
        self.len += 1;
    }

    /// Sweeps every slot between the previous horizon and `now_ms`
    /// inclusive, returning the keys whose deadlines have passed.
    pub fn expire(&mut self, now_ms: u64) -> Vec<K> {
        if now_ms < self.horizon {
            return Vec::new();
        }
        let nslots = self.slots.len() as u64;
        let from_tick = self.horizon / self.granularity_ms;
        let to_tick = now_ms / self.granularity_ms;
        // A lap or more elapsed: every slot is due a sweep.
        let ticks = (to_tick - from_tick + 1).min(nslots);
        let mut due = Vec::new();
        for t in from_tick..from_tick + ticks {
            let slot = (t % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= now_ms {
                    due.push(bucket.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.len -= due.len();
        self.horizon = now_ms + 1;
        due
    }

    /// Earliest scheduled deadline, if any (for park timeouts).
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .flat_map(|s| s.iter().map(|(d, _)| *d))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_and_after_the_deadline_only() {
        let mut w: TimerWheel<u32> = TimerWheel::new(8, 32);
        w.schedule(100, 1);
        w.schedule(50, 2);
        assert_eq!(w.len(), 2);
        assert!(w.expire(49).is_empty());
        assert_eq!(w.expire(60), vec![2]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(100));
        assert_eq!(w.expire(100), vec![1]);
        assert!(w.expire(10_000).is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn same_slot_different_lap_stays_put() {
        // 8 ms × 4 slots = a 32 ms lap: 10 and 42 hash to one slot.
        let mut w: TimerWheel<u32> = TimerWheel::new(8, 4);
        w.schedule(10, 1);
        w.schedule(42, 2);
        assert_eq!(w.expire(12), vec![1]);
        assert!(w.expire(30).is_empty(), "next lap's entry must wait");
        assert_eq!(w.expire(42), vec![2]);
    }

    #[test]
    fn past_deadlines_surface_on_the_next_sweep() {
        let mut w: TimerWheel<u32> = TimerWheel::new(8, 32);
        assert!(w.expire(500).is_empty());
        // Scheduled behind the horizon: comes out immediately next
        // sweep instead of waiting a full lap.
        w.schedule(100, 7);
        assert_eq!(w.expire(501), vec![7]);
    }

    #[test]
    fn long_idle_gap_sweeps_every_slot_once() {
        let mut w: TimerWheel<u32> = TimerWheel::new(8, 8);
        for i in 0..20u32 {
            w.schedule(i as u64 * 7, i);
        }
        let mut got = w.expire(1_000_000);
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
