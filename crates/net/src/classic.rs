//! The PR-8 **thread-per-link** TCP runtime, preserved for
//! differential testing against the event-driven poller runtime
//! (mirroring the `bgla_bench::classic` pattern: the superseded
//! implementation stays compiled and pinned, so every behavioral
//! claim about its replacement is checkable, not archaeological).
//!
//! Thread anatomy per node: one event thread, one listener thread, a
//! writer + ack-reader thread per peer, and a detached reader thread
//! per accepted connection — ~3·n·(n−1) threads for an n-node system,
//! which is exactly the scaling wall the poller runtime removes. The
//! wire protocol (HELLO/DATA/ACK frames, cumulative acks, resync on
//! reconnect) and the fault injector are identical to the poller
//! runtime's, which is what makes the differential test meaningful.
//!
//! Shared pieces ([`NetConfig`], [`SharedCounters`], [`NodeSpec`], the
//! link state machines, frames, fault plans, trace merging) live in
//! their own modules; this module is only the blocking thread
//! orchestration. Quiescence detection uses the generation-stamped
//! counter protocol from [`crate::counters`] — the 2 ms
//! sleep-and-recheck beat this runtime shipped with was a latent race
//! and is fixed here too.

use crate::config::NetConfig;
use crate::counters::SharedCounters;
use crate::fault::{FaultAction, FaultPlan};
use crate::frame::{drain_frames, Ack, Data, Hello, NetFrame, FK_ACK, FK_DATA, FK_HELLO};
use crate::link::{ReceiverLink, SenderLink};
use crate::node::NodeSpec;
use crate::trace_merge::{merge_traces, LocalDelivery, LocalOp, NodeLog};
use bgla_codec::{decode_payload, encode_frame, encode_payload, Wire};
use bgla_simnet::{
    Context, Metrics, NodeObserver, Process, ProcessId, RunOutcome, Trace, Transport, WireMessage,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, riding through poisoning: a panicked peer thread
/// must not cascade into every other thread of the runtime.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

fn is_read_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Node-wide measured wire accounting (every byte actually written to
/// a socket, framing included).
#[derive(Debug, Default)]
struct NodeStats {
    frames: AtomicU64,
    bytes: AtomicU64,
}

fn write_counted(stream: &mut TcpStream, bytes: &[u8], stats: &NodeStats) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stats.frames.fetch_add(1, Ordering::Relaxed);
    stats.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Ok(())
}

/// Sending side of one directed link, shared between the event thread
/// (enqueue), the writer thread (retransmit, resync), and the
/// ack-reader thread (acks).
#[derive(Debug)]
struct OutLink {
    sender: Mutex<SenderLink>,
    reconnects: AtomicU64,
}

/// State guarded by the node lock: the process plus everything the
/// event thread updates per delivery.
struct NodeCore<M> {
    proc: Box<dyn Process<M>>,
    observer: Option<NodeObserver<M>>,
    depth: u64,
    local_events: u64,
    log: NodeLog,
    metrics: Metrics,
}

fn observe<M>(core: &mut NodeCore<M>, after: Option<usize>) {
    let NodeCore {
        proc,
        observer,
        log,
        ..
    } = core;
    if let Some(obs) = observer {
        let mut evs = Vec::new();
        obs(proc.as_ref(), &mut evs);
        for ev in evs {
            log.ops.push(LocalOp {
                after_delivery: after,
                ev,
            });
        }
    }
}

type Inbox<M> = mpsc::Receiver<(ProcessId, u64, M)>;
type InboxTx<M> = mpsc::Sender<(ProcessId, u64, M)>;
type PeerLinks = Vec<Option<(Arc<OutLink>, mpsc::Sender<Data>)>>;

/// Outbound fan-out state owned by the event thread.
struct Dispatcher<M> {
    me: ProcessId,
    links: PeerLinks,
    self_tx: InboxTx<M>,
    shared: Arc<SharedCounters>,
    epoch: Instant,
}

impl<M: WireMessage + Wire> Dispatcher<M> {
    /// Meters, encodes, and routes one event's outbound messages.
    /// Counts each copy into `pending` before returning (the caller
    /// retires the incoming message afterwards — that order is the
    /// quiescence soundness argument).
    fn send_all(&self, core: &mut NodeCore<M>, msgs: Vec<(ProcessId, M)>, out_depth: u64) {
        let now = now_ms(self.epoch);
        for (to, msg) in msgs {
            let (bytes, proofs) = msg.metered();
            core.metrics.record_send(self.me, msg.kind(), bytes, proofs);
            self.shared.note_enqueue();
            if to == self.me {
                // No socket for self-delivery, but the same codec
                // round-trip as any other copy.
                let payload = encode_payload(&msg);
                match decode_payload::<M>(&payload) {
                    Ok(m) => {
                        let _ = self.self_tx.send((self.me, out_depth, m));
                    }
                    Err(_) => {
                        // Round-tripping our own encoding cannot fail;
                        // drop defensively rather than poison the run.
                        self.shared.note_retired();
                    }
                }
            } else if let Some((link, tx)) = self.links.get(to).and_then(|l| l.as_ref()) {
                let payload = encode_payload(&msg);
                let queued = lock(&link.sender).enqueue(out_depth, payload, now);
                match queued {
                    Some(frame) => {
                        let _ = tx.send(frame);
                    }
                    None => {
                        // Bounded outbox overflow: surfaced, not masked.
                        self.shared.note_retired();
                    }
                }
            } else {
                // No link to this peer (absent in the address map).
                self.shared.note_retired();
            }
        }
    }
}

/// A running thread-per-link TCP node. Dropping it does *not* stop its
/// threads — set the shared `stop` latch and call
/// [`ClassicTcpNode::join`] (the runtime does both in its `shutdown`).
pub struct ClassicTcpNode<M> {
    me: ProcessId,
    core: Arc<Mutex<NodeCore<M>>>,
    out: Vec<Option<Arc<OutLink>>>,
    rx_links: Arc<Vec<Mutex<ReceiverLink>>>,
    stats: Arc<NodeStats>,
    threads: Vec<JoinHandle<()>>,
}

impl<M: WireMessage + Wire + 'static> ClassicTcpNode<M> {
    /// Spawns the node's threads. Protocol execution (`on_start`) is
    /// held until the shared `go` latch is set, so a whole system can
    /// be wired up before any message flows.
    pub fn spawn(
        spec: NodeSpec<M>,
        cfg: NetConfig,
        shared: Arc<SharedCounters>,
    ) -> std::io::Result<ClassicTcpNode<M>> {
        let NodeSpec {
            me,
            n,
            proc,
            observer,
            listener,
            peers,
        } = spec;
        listener.set_nonblocking(true)?;
        let epoch = Instant::now();
        let core = Arc::new(Mutex::new(NodeCore {
            proc,
            observer,
            depth: 0,
            local_events: 0,
            log: NodeLog::default(),
            metrics: Metrics::new(n),
        }));
        let stats = Arc::new(NodeStats::default());
        let rx_links: Arc<Vec<Mutex<ReceiverLink>>> =
            Arc::new((0..n).map(|_| Mutex::new(ReceiverLink::new())).collect());
        let (inbox_tx, inbox_rx) = mpsc::channel::<(ProcessId, u64, M)>();
        let mut threads = Vec::new();

        // Per-peer writer threads.
        let mut out: Vec<Option<Arc<OutLink>>> = vec![None; n];
        let mut links: PeerLinks = Vec::with_capacity(n);
        for (to, addr) in peers.iter().enumerate() {
            let Some(addr) = *addr else {
                links.push(None);
                continue;
            };
            if to == me {
                links.push(None);
                continue;
            }
            // Distinct deterministic stream per directed link.
            let link_seed = cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((me as u64) << 32) | to as u64);
            let link = Arc::new(OutLink {
                sender: Mutex::new(SenderLink::new(cfg.link, link_seed)),
                reconnects: AtomicU64::new(0),
            });
            let (cmd_tx, cmd_rx) = mpsc::channel::<Data>();
            out[to] = Some(link.clone());
            links.push(Some((link.clone(), cmd_tx)));
            let w = WriterArgs {
                me,
                to,
                addr,
                link,
                plan: cfg.faults,
                seed: link_seed,
                dial_backoff_ms: cfg.dial_backoff_ms,
                dial_backoff_max_ms: cfg.dial_backoff_max_ms,
                stats: stats.clone(),
                shared: shared.clone(),
                epoch,
            };
            threads.push(std::thread::spawn(move || writer_loop(w, cmd_rx)));
        }

        // Listener thread: accepts connections, one reader thread each.
        {
            let rx_links = rx_links.clone();
            let inbox_tx = inbox_tx.clone();
            let stats = stats.clone();
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || {
                listen_loop::<M>(listener, me, rx_links, inbox_tx, stats, shared, epoch)
            }));
        }

        // Event thread.
        {
            let core = core.clone();
            let shared2 = shared.clone();
            let disp = Dispatcher {
                me,
                links,
                self_tx: inbox_tx,
                shared: shared.clone(),
                epoch,
            };
            threads.push(std::thread::spawn(move || {
                event_loop(me, n, core, inbox_rx, disp, shared2)
            }));
        }

        Ok(ClassicTcpNode {
            me,
            core,
            out,
            rx_links,
            stats,
            threads,
        })
    }
}

impl<M> ClassicTcpNode<M> {
    /// This node's process id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Visits the process state at an event boundary (holds the node
    /// lock, so the event thread is between deliveries).
    pub fn with_process(&self, f: &mut dyn FnMut(&dyn Process<M>)) {
        let core = lock(&self.core);
        f(core.proc.as_ref());
    }

    /// Snapshot of this node's accounting: modeled protocol metering
    /// from the event thread, plus the measured frame/byte counters
    /// and the reliability counters summed over its links.
    pub fn metrics(&self) -> Metrics {
        let mut m = lock(&self.core).metrics.clone();
        m.net_frames = self.stats.frames.load(Ordering::Relaxed);
        m.net_frame_bytes = self.stats.bytes.load(Ordering::Relaxed);
        for link in self.out.iter().flatten() {
            let s = lock(&link.sender);
            m.net_retransmits += s.retransmits;
            m.net_outbox_dropped += s.overflow_dropped;
            m.net_reconnects += link.reconnects.load(Ordering::Relaxed);
        }
        for rx in self.rx_links.iter() {
            m.net_dup_frames += lock(rx).dups;
        }
        m
    }

    /// Takes the node's delivery/op log (for trace merging). Call
    /// after the threads have stopped for a complete history.
    pub fn take_log(&self) -> NodeLog {
        std::mem::take(&mut lock(&self.core).log)
    }

    /// Joins this node's owned threads. The shared `stop` latch must
    /// already be set or this blocks until it is.
    pub fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn event_loop<M: WireMessage + Wire + 'static>(
    me: ProcessId,
    n: usize,
    core: Arc<Mutex<NodeCore<M>>>,
    inbox: Inbox<M>,
    disp: Dispatcher<M>,
    shared: Arc<SharedCounters>,
) {
    while !shared.go.load(Ordering::SeqCst) {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if shared.stop.load(Ordering::SeqCst) {
        return;
    }
    {
        let mut core = lock(&core);
        let mut ctx = Context::for_embedding(me, n, 0, 0);
        core.proc.on_start(&mut ctx);
        observe(&mut core, None);
        let msgs = ctx.take_outbox();
        // Start-up sends begin causal chains: depth 1 (simulator rule).
        disp.send_all(&mut core, msgs, 1);
    }
    // Start barrier: only once every node's initial sends are counted
    // may anyone trust a zero `pending` read.
    shared.started.fetch_add(1, Ordering::SeqCst);
    loop {
        match inbox.recv_timeout(Duration::from_millis(2)) {
            Ok((from, depth, msg)) => {
                let mut core = lock(&core);
                core.depth = core.depth.max(depth);
                core.local_events += 1;
                let abs_depth = core.depth;
                core.log.deliveries.push(LocalDelivery {
                    from,
                    kind: msg.kind(),
                    depth: abs_depth,
                    bytes: msg.wire_size(),
                });
                let after = core.log.deliveries.len() - 1;
                let mut ctx = Context::for_embedding(me, n, core.depth, core.local_events);
                core.proc.on_message(from, msg, &mut ctx);
                observe(&mut core, Some(after));
                core.metrics.delivered += 1;
                let out_depth = core.depth + 1;
                let msgs = ctx.take_outbox();
                // Outgoing counted before the incoming is retired.
                disp.send_all(&mut core, msgs, out_depth);
                drop(core);
                shared.delivered.fetch_add(1, Ordering::SeqCst);
                shared.note_retired();
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn listen_loop<M: WireMessage + Wire + 'static>(
    listener: TcpListener,
    me: ProcessId,
    rx_links: Arc<Vec<Mutex<ReceiverLink>>>,
    inbox_tx: InboxTx<M>,
    stats: Arc<NodeStats>,
    shared: Arc<SharedCounters>,
    epoch: Instant,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let rx_links = rx_links.clone();
                let inbox_tx = inbox_tx.clone();
                let stats = stats.clone();
                let shared = shared.clone();
                // Readers are detached: they exit on the stop latch
                // (bounded by their read timeout) or connection death.
                // This is the reader-thread leak the poller runtime
                // fixes: a reconnect storm grows these without bound.
                std::thread::spawn(move || {
                    read_conn::<M>(stream, me, rx_links, inbox_tx, stats, shared, epoch)
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Handles one accepted connection: HELLO identification + resync
/// reply, then DATA → dedup/reorder → decode → inbox, acking every
/// DATA frame. Exits on stop, EOF, I/O error, or a corrupt frame.
fn read_conn<M: WireMessage + Wire + 'static>(
    mut stream: TcpStream,
    me: ProcessId,
    rx_links: Arc<Vec<Mutex<ReceiverLink>>>,
    inbox_tx: InboxTx<M>,
    stats: Arc<NodeStats>,
    shared: Arc<SharedCounters>,
    epoch: Instant,
) {
    let _ = epoch; // reserved for future receive-side timing
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut peer: Option<ProcessId> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let k = match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(k) => k,
            Err(e) if is_read_timeout(&e) => continue,
            Err(_) => return,
        };
        buf.extend_from_slice(&tmp[..k]);
        let frames = match drain_frames(&mut buf) {
            Ok(f) => f,
            // Torn or corrupt bytes (mid-frame reset): drop the
            // connection; the dialer reconnects and resyncs.
            Err(_) => return,
        };
        for frame in frames {
            match frame {
                NetFrame::Hello(h) => {
                    let p = h.from as usize;
                    if p >= rx_links.len() {
                        return;
                    }
                    peer = Some(p);
                    let expected = lock(&rx_links[p]).expected();
                    let reply = encode_frame(
                        FK_HELLO,
                        &Hello {
                            from: me as u64,
                            expected,
                        },
                    );
                    if write_counted(&mut stream, &reply, &stats).is_err() {
                        return;
                    }
                }
                NetFrame::Data(d) => {
                    // DATA before HELLO is a protocol violation.
                    let Some(p) = peer else { return };
                    let deliverable = lock(&rx_links[p]).on_data(d);
                    for (depth, payload) in deliverable {
                        match decode_payload::<M>(&payload) {
                            Ok(m) => {
                                let _ = inbox_tx.send((p, depth, m));
                            }
                            Err(_) => {
                                // Undecodable payload from an
                                // identified peer: this copy will never
                                // be processed; retire its pending
                                // slot so the system can still quiesce.
                                shared.note_retired();
                            }
                        }
                    }
                    let cum = lock(&rx_links[p]).expected();
                    let ack = encode_frame(FK_ACK, &Ack { cum });
                    if write_counted(&mut stream, &ack, &stats).is_err() {
                        return;
                    }
                }
                // ACKs flow accepter → dialer; one arriving here is
                // harmless noise.
                NetFrame::Ack(_) => {}
            }
        }
    }
}

struct WriterArgs {
    me: ProcessId,
    to: ProcessId,
    addr: SocketAddr,
    link: Arc<OutLink>,
    plan: FaultPlan,
    seed: u64,
    dial_backoff_ms: u64,
    dial_backoff_max_ms: u64,
    stats: Arc<NodeStats>,
    shared: Arc<SharedCounters>,
    epoch: Instant,
}

/// Owns the directed connection `me → to` for the node's lifetime:
/// dial + handshake + resync, fault-injected DATA writes, retransmit
/// timer, reconnect with exponential backoff + seeded jitter.
fn writer_loop(w: WriterArgs, cmd_rx: mpsc::Receiver<Data>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(w.seed ^ 0x5742); // "WB": writer backoff stream
    let mut conn: Option<TcpStream> = None;
    let mut delayed: Option<Vec<u8>> = None;
    let mut frame_idx: u64 = 0;
    let mut backoff = w.dial_backoff_ms;
    let mut ever_connected = false;
    let mut cmds_closed = false;
    loop {
        if w.shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if conn.is_none() {
            match dial(&w, ever_connected) {
                Some((stream, tail)) => {
                    if ever_connected {
                        w.link.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    ever_connected = true;
                    backoff = w.dial_backoff_ms;
                    delayed = None;
                    conn = Some(stream);
                    for d in tail {
                        if !write_data(&w, &mut conn, &mut delayed, &mut frame_idx, &d) {
                            break;
                        }
                    }
                    continue;
                }
                None => {
                    let jitter = rng.gen_range(0..backoff / 2 + 1);
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                    backoff = (backoff * 2).min(w.dial_backoff_max_ms);
                    continue;
                }
            }
        }
        if cmds_closed {
            std::thread::sleep(Duration::from_millis(3));
        } else {
            match cmd_rx.recv_timeout(Duration::from_millis(3)) {
                Ok(d) => {
                    write_data(&w, &mut conn, &mut delayed, &mut frame_idx, &d);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => cmds_closed = true,
            }
        }
        if conn.is_some() {
            let due = lock(&w.link.sender).retransmit_due(now_ms(w.epoch));
            for d in due {
                if !write_data(&w, &mut conn, &mut delayed, &mut frame_idx, &d) {
                    break;
                }
            }
        }
    }
}

/// Dials the peer and completes the HELLO handshake: returns the
/// connected stream (write half; the read half is handed to a spawned
/// ack-reader) and the resync tail to retransmit immediately.
///
/// On the *first* connection there is nothing to resync: every queued
/// frame is still waiting in the command channel, unwritten, so the
/// tail is empty and nothing is counted as a retransmission.
fn dial(w: &WriterArgs, reconnecting: bool) -> Option<(TcpStream, Vec<Data>)> {
    let mut stream = TcpStream::connect(w.addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let hello = encode_frame(
        FK_HELLO,
        &Hello {
            from: w.me as u64,
            expected: 0,
        },
    );
    write_counted(&mut stream, &hello, &w.stats).ok()?;
    // Await the HELLO reply carrying the peer's next-expected seq.
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if w.shared.stop.load(Ordering::SeqCst) || Instant::now() >= deadline {
            return None;
        }
        let k = match stream.read(&mut tmp) {
            Ok(0) => return None,
            Ok(k) => k,
            Err(e) if is_read_timeout(&e) => continue,
            Err(_) => return None,
        };
        buf.extend_from_slice(&tmp[..k]);
        let frames = drain_frames(&mut buf).ok()?;
        let mut tail = None;
        for frame in frames {
            match frame {
                NetFrame::Hello(h) if tail.is_none() => {
                    tail = Some(if reconnecting {
                        lock(&w.link.sender).on_resync(h.expected, now_ms(w.epoch))
                    } else {
                        Vec::new()
                    });
                }
                NetFrame::Ack(a) => lock(&w.link.sender).on_ack(a.cum, now_ms(w.epoch)),
                _ => {}
            }
        }
        if let Some(tail) = tail {
            // Hand the read half (plus any leftover bytes) to the
            // ack-reader; this thread keeps the write half.
            let read_half = stream.try_clone().ok()?;
            let link = w.link.clone();
            let shared = w.shared.clone();
            let epoch = w.epoch;
            std::thread::spawn(move || ack_reader(read_half, buf, link, shared, epoch));
            return Some((stream, tail));
        }
    }
}

/// Consumes cumulative ACKs off the read half of a dialed connection.
fn ack_reader(
    mut stream: TcpStream,
    mut buf: Vec<u8>,
    link: Arc<OutLink>,
    shared: Arc<SharedCounters>,
    epoch: Instant,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut tmp = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let k = match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(k) => k,
            Err(e) if is_read_timeout(&e) => continue,
            Err(_) => return,
        };
        buf.extend_from_slice(&tmp[..k]);
        let frames = match drain_frames(&mut buf) {
            Ok(f) => f,
            Err(_) => return,
        };
        for frame in frames {
            if let NetFrame::Ack(a) = frame {
                lock(&link.sender).on_ack(a.cum, now_ms(epoch));
            }
        }
    }
}

/// Writes one DATA frame through the fault injector. Returns `false`
/// when the connection died (organically or by injected reset); the
/// frame stays in the unacked window and the resync after reconnect
/// recovers it.
fn write_data(
    w: &WriterArgs,
    conn: &mut Option<TcpStream>,
    delayed: &mut Option<Vec<u8>>,
    frame_idx: &mut u64,
    d: &Data,
) -> bool {
    let Some(mut stream) = conn.take() else {
        return false;
    };
    let bytes = encode_frame(FK_DATA, d);
    let idx = *frame_idx;
    *frame_idx += 1;
    let mut write_now: Vec<Vec<u8>> = Vec::new();
    match w.plan.action(w.me, w.to, idx) {
        FaultAction::Deliver => write_now.push(bytes),
        FaultAction::Drop => {}
        FaultAction::Duplicate => {
            write_now.push(bytes.clone());
            write_now.push(bytes);
        }
        FaultAction::Delay => {
            // Hold this frame; a previously held one is released first
            // so at most one frame is ever parked.
            if let Some(prev) = delayed.take() {
                write_now.push(prev);
            }
            *delayed = Some(bytes);
        }
        FaultAction::Reset => {
            // Mid-frame reset: half a frame, then a hard close. The
            // receiver sees torn bytes and drops the connection too.
            let half = bytes.len() / 2;
            let _ = write_counted(&mut stream, &bytes[..half], &w.stats);
            let _ = stream.shutdown(Shutdown::Both);
            *delayed = None;
            return false;
        }
    }
    if !write_now.is_empty() {
        // Any held frame goes out *after* the current one: reorder.
        if let Some(prev) = delayed.take() {
            write_now.push(prev);
        }
    }
    for b in write_now {
        if write_counted(&mut stream, &b, &w.stats).is_err() {
            return false;
        }
    }
    *conn = Some(stream);
    true
}

// ---------------------------------------------------------------------------
// Runtime: n classic nodes behind the Transport trait
// ---------------------------------------------------------------------------

/// A process plus its optional per-node op observer, as collected by
/// the builder.
type ObservedProcess<M> = (Box<dyn Process<M>>, Option<NodeObserver<M>>);

/// A per-node predicate for [`Transport::run_until_all`]-style waits.
type NodePred<'a, M> = &'a mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool;

/// Builder for the preserved thread-per-link runtime. Same surface as
/// [`crate::TcpRuntimeBuilder`], so harnesses can be pointed at either
/// for differential runs.
pub struct ClassicRuntimeBuilder<M> {
    cfg: NetConfig,
    procs: Vec<ObservedProcess<M>>,
}

impl<M: WireMessage + Wire + 'static> ClassicRuntimeBuilder<M> {
    /// A builder with the given transport configuration.
    pub fn new(cfg: NetConfig) -> ClassicRuntimeBuilder<M> {
        ClassicRuntimeBuilder {
            cfg,
            procs: Vec::new(),
        }
    }

    /// Adds a process (its id is its insertion order).
    #[allow(clippy::should_implement_trait)] // appends a process, not arithmetic
    pub fn add(mut self, proc: Box<dyn Process<M>>) -> Self {
        self.procs.push((proc, None));
        self
    }

    /// Adds a process with a per-node op observer.
    pub fn add_observed(mut self, proc: Box<dyn Process<M>>, obs: NodeObserver<M>) -> Self {
        self.procs.push((proc, Some(obs)));
        self
    }

    /// Binds one localhost listener per node, distributes the address
    /// map, and spawns every node (latched — nothing executes yet).
    pub fn build(self) -> std::io::Result<ClassicRuntime<M>> {
        let n = self.procs.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let shared = Arc::new(SharedCounters::default());
        let mut nodes = Vec::with_capacity(n);
        for (me, ((proc, observer), listener)) in self.procs.into_iter().zip(listeners).enumerate()
        {
            let peers = addrs
                .iter()
                .enumerate()
                .map(|(j, a)| if j == me { None } else { Some(*a) })
                .collect();
            nodes.push(ClassicTcpNode::spawn(
                NodeSpec {
                    me,
                    n,
                    proc,
                    observer,
                    listener,
                    peers,
                },
                self.cfg,
                shared.clone(),
            )?);
        }
        Ok(ClassicRuntime {
            nodes,
            shared,
            cfg: self.cfg,
            stopped: false,
        })
    }
}

/// A running (or latched) thread-per-link multi-node TCP system.
pub struct ClassicRuntime<M> {
    nodes: Vec<ClassicTcpNode<M>>,
    shared: Arc<SharedCounters>,
    cfg: NetConfig,
    stopped: bool,
}

impl<M: WireMessage + Wire + 'static> ClassicRuntime<M> {
    fn all_satisfy(&self, pred: &mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool) -> bool {
        let mut all = true;
        for (i, node) in self.nodes.iter().enumerate() {
            let mut ok = false;
            node.with_process(&mut |p| ok = pred(i, p));
            if !ok {
                all = false;
                break;
            }
        }
        all
    }

    fn wait(&mut self, budget: u64, mut pred: Option<NodePred<'_, M>>) -> (RunOutcome, bool) {
        self.shared.go.store(true, Ordering::SeqCst);
        let n = self.nodes.len();
        let deadline = Instant::now() + Duration::from_millis(self.cfg.deadline_ms);
        loop {
            std::thread::sleep(Duration::from_millis(3));
            let delivered = self.shared.delivered.load(Ordering::SeqCst);
            if let Some(p) = pred.as_mut() {
                if self.all_satisfy(p) {
                    return (
                        RunOutcome {
                            delivered,
                            quiescent: self.shared.confirm_quiescent(n),
                        },
                        true,
                    );
                }
            }
            if self.shared.confirm_quiescent(n) {
                let delivered = self.shared.delivered.load(Ordering::SeqCst);
                let sat = pred.as_mut().map(|p| self.all_satisfy(p)).unwrap_or(true);
                return (
                    RunOutcome {
                        delivered,
                        quiescent: true,
                    },
                    sat,
                );
            }
            if delivered >= budget || Instant::now() >= deadline {
                return (
                    RunOutcome {
                        delivered,
                        quiescent: false,
                    },
                    false,
                );
            }
        }
    }

    /// Stops every thread (idempotent) and waits for the nodes' owned
    /// threads to exit.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        // Release event threads still latched on `go`.
        self.shared.go.store(true, Ordering::SeqCst);
        for node in &mut self.nodes {
            node.join();
        }
    }

    /// Stops the runtime and merges every node's local log into a
    /// simulator-format [`Trace`].
    pub fn take_trace(&mut self, op_priority: fn(&str) -> u8) -> Trace {
        self.shutdown();
        let logs = self.nodes.iter().map(|nd| nd.take_log()).collect();
        merge_traces(logs, op_priority)
    }
}

impl<M> Drop for ClassicRuntime<M> {
    fn drop(&mut self) {
        if !self.stopped {
            self.stopped = true;
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.go.store(true, Ordering::SeqCst);
            for node in &mut self.nodes {
                node.join();
            }
        }
    }
}

impl<M: WireMessage + Wire + 'static> Transport<M> for ClassicRuntime<M> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn with_process(&self, p: ProcessId, f: &mut dyn FnMut(&dyn Process<M>)) {
        self.nodes[p].with_process(f);
    }

    fn metrics_snapshot(&self) -> Metrics {
        let mut m = Metrics::new(self.nodes.len());
        for node in &self.nodes {
            m.merge(&node.metrics());
        }
        m
    }

    fn run_transport(&mut self, budget: u64) -> RunOutcome {
        self.wait(budget, None).0
    }

    fn run_until_all(
        &mut self,
        budget: u64,
        pred: &mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool,
    ) -> (RunOutcome, bool) {
        self.wait(budget, Some(pred))
    }
}
