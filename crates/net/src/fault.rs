//! Deterministic, seeded network fault injection.
//!
//! The injector sits in the connection writer, between the reliability
//! layer ([`crate::link`]) and the socket: every outgoing DATA frame
//! asks the [`FaultPlan`] for a verdict before it is written. Faults
//! are therefore injected *below* the masking machinery — exactly
//! where a real lossy network would bite — so every recovery path
//! (retransmit, dedup, reconnect + resync, backoff) is exercised by
//! the same code that handles organic failures.
//!
//! # Determinism
//!
//! The verdict for a frame is a pure hash of `(seed, from, to,
//! frame_index)` — no RNG stream is consumed, so the decision for the
//! k-th write on a link is independent of thread interleaving and of
//! what other links are doing. Two consequences worth spelling out:
//!
//! * The *fault schedule* is reproducible per seed: the k-th write
//!   attempt on link `from → to` always meets the same fate.
//!   (Which frame *is* the k-th write can still vary with thread
//!   timing once recovery kicks in; integration tests therefore pin
//!   masking *invariants* — everyone decides, counters non-zero —
//!   while the pure link tests pin exact behavior.)
//! * A retransmission occupies a new frame index and thus gets a fresh
//!   verdict: a message can be unlucky repeatedly but not *forever*,
//!   so fault rates below 1 never livelock a link.
//!
//! Partition windows are frame-index intervals during which every
//! write on the link is swallowed. Retransmission attempts during the
//! window consume indexes (with backoff stretching the attempts out),
//! and the first attempt past the window restores the link — modeling
//! a partition that heals.

/// What the injector decides for one frame write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Write the frame normally.
    Deliver,
    /// Swallow the frame (the peer never sees it).
    Drop,
    /// Write the frame twice back-to-back.
    Duplicate,
    /// Hold the frame and write it *after* the next one (reorder).
    Delay,
    /// Write only the first half of the frame, then hard-close the
    /// connection: a mid-frame reset, leaving torn bytes the receiver
    /// must reject by checksum.
    Reset,
}

/// Per-mille fault rates plus an optional partition window, applied to
/// every directed link a [`FaultPlan`] governs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Fraction of frames dropped, in per-mille.
    pub drop_per_mille: u16,
    /// Fraction of frames duplicated, in per-mille.
    pub dup_per_mille: u16,
    /// Fraction of frames delayed past their successor, in per-mille.
    pub delay_per_mille: u16,
    /// Fraction of frames torn by a mid-frame connection reset, in
    /// per-mille.
    pub reset_per_mille: u16,
    /// Frame-index window `[start, end)` during which the link is
    /// partitioned: every write is dropped.
    pub partition: Option<(u64, u64)>,
}

impl FaultConfig {
    /// A moderately hostile profile exercising every masking path:
    /// drops, duplicates, reorders, occasional mid-frame resets, and
    /// an early partition window.
    pub fn chaos() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 80,
            dup_per_mille: 60,
            delay_per_mille: 60,
            reset_per_mille: 15,
            partition: Some((10, 20)),
        }
    }
}

/// A seeded fault schedule for the whole system. Cheap to copy into
/// every writer thread; stateless between calls.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

/// splitmix64-style finalizer: avalanche-mixes one word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan injecting faults per `cfg`, scheduled by `seed`.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan { seed, cfg }
    }

    /// A plan that never injects anything (production behavior).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            cfg: FaultConfig::default(),
        }
    }

    /// The verdict for the `frame_idx`-th write on link `from → to`.
    pub fn action(&self, from: usize, to: usize, frame_idx: u64) -> FaultAction {
        if let Some((a, b)) = self.cfg.partition {
            if (a..b).contains(&frame_idx) {
                return FaultAction::Drop;
            }
        }
        let h = mix(self.seed ^ mix(from as u64 ^ mix((to as u64) << 20 ^ frame_idx)));
        let roll = (h % 1000) as u16;
        let c = &self.cfg;
        if roll < c.drop_per_mille {
            FaultAction::Drop
        } else if roll < c.drop_per_mille + c.dup_per_mille {
            FaultAction::Duplicate
        } else if roll < c.drop_per_mille + c.dup_per_mille + c.delay_per_mille {
            FaultAction::Delay
        } else if roll < c.drop_per_mille + c.dup_per_mille + c.delay_per_mille + c.reset_per_mille
        {
            FaultAction::Reset
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_reproducible_per_seed() {
        let a = FaultPlan::new(42, FaultConfig::chaos());
        let b = FaultPlan::new(42, FaultConfig::chaos());
        for idx in 0..500 {
            assert_eq!(a.action(0, 1, idx), b.action(0, 1, idx));
        }
    }

    #[test]
    fn different_links_get_different_schedules() {
        let p = FaultPlan::new(42, FaultConfig::chaos());
        let l01: Vec<_> = (0..200).map(|i| p.action(0, 1, i)).collect();
        let l10: Vec<_> = (0..200).map(|i| p.action(1, 0, i)).collect();
        let l02: Vec<_> = (0..200).map(|i| p.action(0, 2, i)).collect();
        assert_ne!(l01, l10);
        assert_ne!(l01, l02);
    }

    #[test]
    fn none_always_delivers() {
        let p = FaultPlan::none();
        for idx in 0..100 {
            assert_eq!(p.action(3, 4, idx), FaultAction::Deliver);
        }
    }

    #[test]
    fn partition_window_swallows_everything_then_heals() {
        let cfg = FaultConfig {
            partition: Some((5, 9)),
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(1, cfg);
        for idx in 0..5 {
            assert_eq!(p.action(0, 1, idx), FaultAction::Deliver);
        }
        for idx in 5..9 {
            assert_eq!(p.action(0, 1, idx), FaultAction::Drop);
        }
        for idx in 9..20 {
            assert_eq!(p.action(0, 1, idx), FaultAction::Deliver);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let cfg = FaultConfig {
            drop_per_mille: 100,
            dup_per_mille: 100,
            delay_per_mille: 0,
            reset_per_mille: 0,
            partition: None,
        };
        let p = FaultPlan::new(7, cfg);
        let n = 10_000;
        let mut drops = 0;
        let mut dups = 0;
        for idx in 0..n {
            match p.action(0, 1, idx) {
                FaultAction::Drop => drops += 1,
                FaultAction::Duplicate => dups += 1,
                _ => {}
            }
        }
        // 10% each, generous tolerance — this guards the bucketing
        // arithmetic, not the hash's statistical quality.
        assert!((600..1400).contains(&drops), "drops = {drops}");
        assert!((600..1400).contains(&dups), "dups = {dups}");
    }
}
