//! Cross-node run coordination: the quiescence counters, start
//! barrier, delivery count, and the go/stop latches.
//!
//! # Generation-stamped quiescence
//!
//! The PR-8 runtime confirmed quiescence with a time heuristic: read
//! `pending == 0`, sleep 2 ms, read it again. A dispatcher whose
//! enqueue straddles that beat — intent formed before the first read,
//! counter bumped after the second — lets the runtime declare
//! quiescence early. The replacement is a generation-stamped counter
//! pair with **no sleep in the protocol**:
//!
//! * `generation` counts enqueue *intents*: a sender bumps it on every
//!   enqueue, **before** the message becomes visible anywhere else
//!   (before the `pending` increment, before any socket or channel).
//! * `retired` counts completions: bumped only after a message has
//!   been fully processed (or surfaced as undeliverable), **after**
//!   every outgoing copy it caused has had its own intent stamped.
//!
//! "Pending is zero" means `generation == retired`. Quiescence
//! requires two such reads with an unchanged generation
//! ([`SharedCounters::confirm_quiescent`]); because a completion can
//! only follow its own intent, `retired <= generation` always holds,
//! and a matching read pair proves that at the instant of the second
//! read nothing was buffered, in flight, or mid-dispatch — a slow
//! dispatcher is caught by its early intent stamp, not by hoping its
//! counter update lands inside a 2 ms window. The signed `pending`
//! gauge is kept for observability and for multi-process deployments
//! that only watch the balance.
//!
//! The start barrier is unchanged: no zero may be trusted before every
//! node has registered its initial sends (`started == n`).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Cross-node run coordination: the quiescence counters, start
/// barrier, delivery count, and the go/stop latches. One instance is
/// shared by every node of an in-process runtime; a multi-process
/// deployment gives each process its own (and coordinates by other
/// means).
#[derive(Debug, Default)]
pub struct SharedCounters {
    /// Protocol messages enqueued but not yet fully processed (the
    /// observable gauge: `generation - retired`).
    pub pending: AtomicI64,
    /// Enqueue intents, stamped before a message is visible anywhere.
    pub generation: AtomicU64,
    /// Fully processed (or surfaced-as-dropped) messages.
    pub retired: AtomicU64,
    /// Nodes whose initial sends are registered in `pending`.
    pub started: AtomicUsize,
    /// Total deliveries processed across all nodes.
    pub delivered: AtomicU64,
    /// Release latch: event threads hold `on_start` until this is set.
    pub go: AtomicBool,
    /// Shutdown latch: all threads drain and exit when set.
    pub stop: AtomicBool,
}

impl SharedCounters {
    /// Stamps one enqueue intent and raises the pending gauge. Call
    /// **before** the message is handed to any channel or socket.
    pub fn note_enqueue(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Retires one message: fully processed, surfaced as an overflow
    /// drop, or undeliverable. Call **after** any outgoing copies the
    /// message caused have had their own intents stamped — that order
    /// is the quiescence soundness argument.
    pub fn note_retired(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        self.retired.fetch_add(1, Ordering::SeqCst);
    }

    /// Confirms quiescence: the start barrier is full and two reads of
    /// "pending is zero" (`generation == retired`) bracket an
    /// unchanged generation. Sound without any sleep: `retired` never
    /// exceeds `generation`, so if the generation did not move between
    /// the reads and both balanced, nothing was mid-dispatch either
    /// time.
    pub fn confirm_quiescent(&self, n_nodes: usize) -> bool {
        if self.started.load(Ordering::SeqCst) != n_nodes {
            return false;
        }
        // First read of "pending == 0", stamping the generation.
        let retired1 = self.retired.load(Ordering::SeqCst);
        let gen1 = self.generation.load(Ordering::SeqCst);
        if retired1 != gen1 {
            return false;
        }
        // Second read: still balanced, generation unchanged.
        let retired2 = self.retired.load(Ordering::SeqCst);
        let gen2 = self.generation.load(Ordering::SeqCst);
        gen2 == gen1 && retired2 == gen2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    /// The PR-8 heuristic, verbatim: `pending == 0`, a 2 ms beat,
    /// `pending == 0` again.
    fn legacy_beat_confirms(shared: &SharedCounters) -> bool {
        if shared.pending.load(Ordering::SeqCst) != 0 {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
        shared.pending.load(Ordering::SeqCst) == 0
    }

    #[test]
    fn slow_dispatcher_fools_the_time_beat_but_not_the_generation() {
        let shared = Arc::new(SharedCounters::default());
        // A dispatcher mid-enqueue: the intent is stamped now, but the
        // artificially slow dispatcher parks the pending increment far
        // past the old 2 ms beat.
        shared.generation.fetch_add(1, Ordering::SeqCst);
        let s2 = shared.clone();
        let dispatcher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            s2.pending.fetch_add(1, Ordering::SeqCst);
        });
        // The old heuristic declares quiescence — wrongly: a message
        // is being dispatched right now.
        assert!(
            legacy_beat_confirms(&shared),
            "the 2 ms beat must be fooled by the slow dispatcher"
        );
        // The generation protocol sees intents != retirements and
        // refuses, no matter how slow the dispatcher is.
        assert!(!shared.confirm_quiescent(0));
        dispatcher.join().unwrap();
        assert!(!shared.confirm_quiescent(0), "still in flight");
        // The dispatch completes and is processed: now both agree.
        shared.note_retired();
        assert!(shared.confirm_quiescent(0));
    }

    #[test]
    fn enqueue_retire_balance_and_start_barrier() {
        let shared = SharedCounters::default();
        assert!(!shared.confirm_quiescent(1), "barrier empty: no trust");
        shared.started.fetch_add(1, Ordering::SeqCst);
        assert!(shared.confirm_quiescent(1));
        shared.note_enqueue();
        assert_eq!(shared.pending.load(Ordering::SeqCst), 1);
        assert!(!shared.confirm_quiescent(1));
        shared.note_enqueue();
        shared.note_retired();
        shared.note_retired();
        assert_eq!(shared.pending.load(Ordering::SeqCst), 0);
        assert!(shared.confirm_quiescent(1));
    }
}
