//! Merging per-node delivery logs into one `bgla_simnet::Trace`.
//!
//! The simulator produces a totally ordered trace for free — it *is*
//! the total order. A TCP run has no global clock, only per-node logs,
//! so conformance checking needs a linearization: a total order of all
//! deliveries consistent with causality, in the trace format the PR-5
//! checker already consumes.
//!
//! The causal depth shipped in every DATA frame provides one. Sorting
//! all deliveries by `(depth, node, local index)` is a valid causal
//! linearization:
//!
//! * **Cross-node edges** — if delivery `e₁` at node A causally
//!   precedes delivery `e₂` at node B (the message delivered at `e₂`
//!   was sent while handling `e₁`), then
//!   `depth(e₂) ≥ depth(e₁) + 1 > depth(e₁)`, because a message's
//!   depth is its sender's clock plus one and a receiver's clock joins
//!   to at least the message's depth. Strictly increasing depth means
//!   the sort can never flip such a pair.
//! * **Same-node order** — a node's clock is monotone non-decreasing
//!   over its delivery sequence, so `(depth, node, idx)` with the
//!   local index as tiebreak reproduces each node's log order exactly.
//!
//! Steps are then renumbered densely in sort order (the `Trace`
//! contract), and each op event lands at its parent delivery's global
//! step + 1 — the "between deliveries k−1 and k" convention the
//! checker expects — with boot-time ops at step 0. Ops sharing a step
//! are ordered by a caller-supplied kind priority, mirroring the
//! simulator-side observer batching.

use bgla_simnet::{OpEvent, ProcessId, Trace, TraceEvent};

/// One delivery as logged by the receiving node's event thread.
#[derive(Debug, Clone)]
pub struct LocalDelivery {
    /// Authenticated sender.
    pub from: ProcessId,
    /// Protocol message kind (metering bucket).
    pub kind: &'static str,
    /// Receiving node's causal clock *after* absorbing the message.
    pub depth: u64,
    /// Modeled wire size of the message (`WireMessage::wire_size`),
    /// kept modeled — not measured — so traces stay byte-comparable
    /// with simulator traces; measured bytes live in the metrics.
    pub bytes: usize,
}

/// One protocol operation observed at a node, anchored to the delivery
/// that produced it.
#[derive(Debug, Clone)]
pub struct LocalOp {
    /// Index into the node's delivery log of the event this op was
    /// observed after, or `None` for boot-time (`on_start`) ops.
    pub after_delivery: Option<usize>,
    /// The op, with `step` unassigned (filled in by the merge).
    pub ev: OpEvent,
}

/// A node's complete local history, produced by its event thread.
#[derive(Debug, Default)]
pub struct NodeLog {
    /// Deliveries in processing order.
    pub deliveries: Vec<LocalDelivery>,
    /// Ops in observation order.
    pub ops: Vec<LocalOp>,
}

/// Merges per-node logs (indexed by node id) into a simulator-format
/// trace. `op_priority` orders ops that share a step (lower first) —
/// pass `bgla_core`'s op priority for conformance work.
pub fn merge_traces(logs: Vec<NodeLog>, op_priority: fn(&str) -> u8) -> Trace {
    // Sort key for every delivery in the system.
    let mut order: Vec<(u64, ProcessId, usize)> = Vec::new();
    for (node, log) in logs.iter().enumerate() {
        for (idx, d) in log.deliveries.iter().enumerate() {
            order.push((d.depth, node, idx));
        }
    }
    order.sort_unstable();

    // Global step of each (node, local idx).
    let mut step_of: Vec<Vec<u64>> = logs.iter().map(|l| vec![0; l.deliveries.len()]).collect();
    let mut trace = Trace::default();
    for (step, &(depth, node, idx)) in order.iter().enumerate() {
        step_of[node][idx] = step as u64;
        let d = &logs[node].deliveries[idx];
        trace.push(TraceEvent {
            step: step as u64,
            from: d.from,
            to: node,
            kind: d.kind,
            depth,
            bytes: d.bytes,
        });
    }

    // Ops: parent delivery's step + 1, boot ops at step 0. Built
    // node-by-node then stably sorted, so per-node observation order
    // survives for ops sharing (step, priority).
    let mut ops: Vec<OpEvent> = Vec::new();
    for (node, log) in logs.into_iter().enumerate() {
        for op in log.ops {
            let step = match op.after_delivery {
                None => 0,
                Some(k) => step_of[node][k] + 1,
            };
            let mut ev = op.ev;
            ev.step = step;
            ops.push(ev);
        }
    }
    ops.sort_by_key(|op| (op.step, op_priority(op.kind), op.process));
    for op in ops {
        trace.push_op(op);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(from: ProcessId, depth: u64) -> LocalDelivery {
        LocalDelivery {
            from,
            kind: "m",
            depth,
            bytes: 8,
        }
    }

    fn op(process: ProcessId, kind: &'static str, after: Option<usize>) -> LocalOp {
        LocalOp {
            after_delivery: after,
            ev: OpEvent {
                step: 0,
                process,
                kind,
                ts: 0,
                values: vec![],
            },
        }
    }

    #[test]
    fn merge_is_a_causal_linearization_with_dense_steps() {
        // Node 0: depths 1, 2; node 1: depths 1, 3.
        let logs = vec![
            NodeLog {
                deliveries: vec![d(1, 1), d(1, 2)],
                ops: vec![op(0, "propose", None), op(0, "decide", Some(1))],
            },
            NodeLog {
                deliveries: vec![d(0, 1), d(0, 3)],
                ops: vec![op(1, "decide", Some(1))],
            },
        ];
        let trace = merge_traces(logs, |k| if k == "propose" { 0 } else { 1 });
        // Dense steps in (depth, node, idx) order.
        let steps: Vec<u64> = trace.events().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3]);
        let depths: Vec<u64> = trace.events().iter().map(|e| e.depth).collect();
        assert_eq!(depths, vec![1, 1, 2, 3]);
        // Node 0's second delivery (depth 2) sits at step 2, so its
        // decide lands at step 3; node 1's decide after depth 3 -> 4.
        let ops: Vec<(u64, &str, ProcessId)> = trace
            .ops()
            .iter()
            .map(|o| (o.step, o.kind, o.process))
            .collect();
        assert_eq!(
            ops,
            vec![(0, "propose", 0), (3, "decide", 0), (4, "decide", 1)]
        );
    }

    #[test]
    fn same_node_log_order_is_preserved() {
        // Equal depths at one node: the local index breaks the tie.
        let logs = vec![NodeLog {
            deliveries: vec![d(1, 1), d(2, 1), d(1, 1)],
            ops: vec![],
        }];
        let trace = merge_traces(logs, |_| 0);
        let froms: Vec<ProcessId> = trace.events().iter().map(|e| e.from).collect();
        assert_eq!(froms, vec![1, 2, 1]);
    }

    #[test]
    fn cross_node_causality_never_flips() {
        // A chain 0 -> 1 -> 0: each hop's delivery has strictly larger
        // depth, so sort order equals causal order regardless of node
        // ids.
        let logs = vec![
            NodeLog {
                deliveries: vec![d(1, 2)],
                ops: vec![],
            },
            NodeLog {
                deliveries: vec![d(0, 1)],
                ops: vec![],
            },
        ];
        let trace = merge_traces(logs, |_| 0);
        assert_eq!(trace.events()[0].to, 1);
        assert_eq!(trace.events()[1].to, 0);
    }
}
