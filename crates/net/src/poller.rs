//! The event-driven core: a fixed pool of poller threads owning every
//! socket of a runtime, driving per-link state machines as
//! poll-driven steps.
//!
//! # Readiness loop
//!
//! There is no `epoll` here by design: the workspace denies `unsafe`
//! and the environment is offline, so the readiness loop is a
//! `poll(2)`-style sweep written in-repo. Every socket is
//! nonblocking; each poller thread repeatedly sweeps the entries
//! registered to its shard, attempting nonblocking reads/accepts and
//! flushing pending writes. When a sweep makes no progress the thread
//! parks (`park_timeout`, bounded by the timer wheel's next deadline
//! and a short idle beat) — never a blocking sleep — and event threads
//! `unpark` it the moment they enqueue outbound work. Remote bytes
//! with no local wakeup are picked up by the bounded idle beat.
//!
//! # What a sweep does per entry
//!
//! * **Listener** — nonblocking `accept`; accepted sockets are made
//!   nonblocking and registered with the pool (no thread is ever
//!   spawned per connection — that was the classic runtime's reader
//!   leak).
//! * **Inbound connection** — drain available bytes, demux frames,
//!   run HELLO identification and receive-side dedup/reorder, push
//!   raw deliveries to the owning node's event thread, then write
//!   **one** cumulative ACK covering everything the wakeup delivered
//!   (ack batching: one ACK per readiness wakeup, not per DATA frame).
//! * **Outbound link** — dial/redial when due, drain HELLO replies and
//!   cumulative ACKs, move enqueued frames through the fault injector
//!   into the write buffer, and flush as far as the socket allows.
//!
//! # One timer wheel
//!
//! All retransmit and redial timers of the runtime live in a single
//! hashed [`TimerWheel`]. Sweeps never poll `retransmit_due` per link;
//! a timer fires only when the wheel expires its entry, and whichever
//! poller thread swept the wheel services it. Cancellation is lazy:
//! a fired key re-checks the link's armed deadline and re-schedules if
//! it moved. The invariant that keeps retransmission alive: whenever a
//! sender window is (or becomes) non-empty, at least one wheel entry
//! covering it exists — armed at enqueue (empty→non-empty), at ack
//! progress, at resync, and re-armed at every firing.
//!
//! # Locking
//!
//! Each connection's I/O state sits behind its own mutex so any poller
//! thread (a sweep or a wheel firing) can service it. The ordering
//! rule: an `io` lock may nest the pure link-state locks
//! (`SenderLink` / `ReceiverLink`) and the wheel, but **nothing holds
//! a link-state lock while taking an `io` lock** — the event thread
//! enqueues in two disjoint critical sections (assign a sequence
//! number, then queue the frame), which is what makes the nesting
//! one-directional and deadlock-free.

use crate::fault::{FaultAction, FaultPlan};
use crate::frame::{drain_frames, Ack, Data, Hello, NetFrame, FK_ACK, FK_DATA, FK_HELLO};
use crate::link::{LinkConfig, ReceiverLink, SenderLink};
use crate::wheel::TimerWheel;
use bgla_codec::encode_frame;
use bgla_simnet::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle park beat in ms: the upper bound on how stale a sweep can be
/// when only remote bytes (no local wakeup) are pending.
const IDLE_BEAT_MS: u64 = 1;
/// Blocking budget for one dial attempt (localhost connects resolve
/// immediately; this only bounds pathological SYN loss).
const CONNECT_TIMEOUT_MS: u64 = 50;
/// Timer wheel shape: 8 ms buckets, 256 of them (a ~2 s lap, matching
/// the largest default backoff cap).
const WHEEL_GRANULARITY_MS: u64 = 8;
const WHEEL_SLOTS: usize = 256;

/// Locks a mutex, riding through poisoning: a panicked thread must not
/// cascade into every poller of the runtime.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Node-wide measured wire accounting (every byte actually handed to
/// a socket buffer, framing included).
#[derive(Debug, Default)]
pub(crate) struct NodeStats {
    pub frames: AtomicU64,
    pub bytes: AtomicU64,
}

/// Counts one frame into the node's measured-bytes accounting and
/// appends it to a connection's write buffer.
fn buffer_counted(wbuf: &mut Vec<u8>, bytes: &[u8], stats: &NodeStats) {
    wbuf.extend_from_slice(bytes);
    stats.frames.fetch_add(1, Ordering::Relaxed);
    stats.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
}

/// Raw (undecoded) delivery channel into a node's event thread:
/// `(from, depth, payload)`. Decoding happens on the event thread so
/// poller threads stay payload-agnostic.
pub(crate) type RawInboxTx = mpsc::Sender<(ProcessId, u64, Vec<u8>)>;

/// Receive-side state one node shares with the pool: the listener and
/// every inbound connection reference it.
pub(crate) struct NodeNet {
    pub me: ProcessId,
    pub rx_links: Vec<Mutex<ReceiverLink>>,
    pub sink: RawInboxTx,
    pub stats: Arc<NodeStats>,
}

/// What a sweep learned about one entry.
enum Sweep {
    /// Bytes moved or state advanced.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The entry is finished; drop it from the shard.
    Dead,
}

// ---------------------------------------------------------------------------
// Outbound link (dialer side of `me → to`)
// ---------------------------------------------------------------------------

/// Connection state of an outbound link.
enum OutState {
    /// No socket; `next_dial_at` gates the next attempt.
    Down,
    /// Live socket. `helloed` flips when the peer's HELLO reply (with
    /// its next-expected sequence) has been processed; DATA flows only
    /// after that.
    Up {
        stream: TcpStream,
        rbuf: Vec<u8>,
        helloed: bool,
        /// Whether this socket replaced an earlier one (drives resync
        /// vs fresh-start on the HELLO reply).
        was_reconnect: bool,
    },
}

/// I/O-side state of an outbound link, serviced by whichever poller
/// thread gets there first.
struct OutIo {
    state: OutState,
    /// Frames enqueued (new sends, resync tails, retransmit bursts)
    /// not yet pushed through the fault injector.
    queue: VecDeque<Data>,
    /// Bytes accepted by the injector, not yet written to the socket.
    wbuf: Vec<u8>,
    /// The fault injector's parked frame (Delay action).
    delayed: Option<Vec<u8>>,
    /// Write-attempt index driving the deterministic fault schedule.
    frame_idx: u64,
    /// Seeded jitter stream for the dial backoff.
    rng: StdRng,
    backoff_ms: u64,
    next_dial_at: u64,
    ever_connected: bool,
}

/// The sending side of one directed link `me → to`, owned by the pool.
pub(crate) struct OutLink {
    pub me: ProcessId,
    pub to: ProcessId,
    addr: SocketAddr,
    plan: FaultPlan,
    link_cfg: LinkConfig,
    dial_backoff_ms: u64,
    dial_backoff_max_ms: u64,
    stats: Arc<NodeStats>,
    epoch: Instant,
    pub sender: Mutex<SenderLink>,
    pub reconnects: AtomicU64,
    /// Whether a live `Rto` wheel entry exists for this link. Keeps
    /// the wheel at **at most one** entry per link: arming is a no-op
    /// while an entry is live (the live entry lazily re-arms itself at
    /// the moved deadline), and a firing clears the flag first so any
    /// concurrent arm can take over.
    rto_live: AtomicBool,
    io: Mutex<OutIo>,
}

impl OutLink {
    /// Builds the link in the `Down` state with an immediate dial.
    #[allow(clippy::too_many_arguments)] // spawn-time plumbing, called once per link
    pub(crate) fn new(
        me: ProcessId,
        to: ProcessId,
        addr: SocketAddr,
        plan: FaultPlan,
        link_cfg: LinkConfig,
        link_seed: u64,
        dial_backoff_ms: u64,
        dial_backoff_max_ms: u64,
        stats: Arc<NodeStats>,
        epoch: Instant,
    ) -> Arc<OutLink> {
        Arc::new(OutLink {
            me,
            to,
            addr,
            plan,
            link_cfg,
            dial_backoff_ms,
            dial_backoff_max_ms,
            stats,
            epoch,
            sender: Mutex::new(SenderLink::new(link_cfg, link_seed)),
            reconnects: AtomicU64::new(0),
            rto_live: AtomicBool::new(false),
            io: Mutex::new(OutIo {
                state: OutState::Down,
                queue: VecDeque::new(),
                wbuf: Vec::new(),
                delayed: None,
                frame_idx: 0,
                rng: StdRng::seed_from_u64(link_seed ^ 0x5742), // "WB": backoff stream
                backoff_ms: dial_backoff_ms,
                next_dial_at: 0,
                ever_connected: false,
            }),
        })
    }
}

/// Event-thread entry point: assign a sequence number (arming the
/// wheel when the window just went non-empty), then queue the frame
/// for the next sweep. Returns `false` on bounded-outbox overflow
/// (the caller surfaces the drop). Two disjoint critical sections —
/// never `sender` nested around `io` (see the module-level locking
/// rule). Takes an `Arc` handle so the wheel key can be derived.
pub(crate) fn enqueue_arc(
    link: &Arc<OutLink>,
    pool: &PoolInner,
    depth: u64,
    payload: Vec<u8>,
) -> bool {
    let now = now_ms(link.epoch);
    let (frame, arm) = {
        let mut s = lock(&link.sender);
        let frame = s.enqueue(depth, payload, now);
        (frame, s.rto_deadline())
    };
    let Some(frame) = frame else { return false };
    lock(&link.io).queue.push_back(frame);
    if let Some(at) = arm {
        schedule_rto(link, pool, at);
    }
    true
}

/// Arms the link's retransmit timer unless an entry is already live on
/// the wheel. This is what bounds the wheel to one `Rto` entry per
/// link: lazy cancellation means a fired entry re-checks and re-arms,
/// so a second entry would double every firing forever.
fn schedule_rto(link: &Arc<OutLink>, pool: &PoolInner, at: u64) {
    if !link.rto_live.swap(true, Ordering::AcqRel) {
        pool.schedule(at, TimerKey::Rto(Arc::downgrade(link)));
    }
}

/// Transitions an outbound link's connection to `Down` after a death:
/// buffered socket bytes are discarded (unacked frames survive in the
/// sender window and resync recovers them), and a redial is armed.
fn out_conn_died(link: &Arc<OutLink>, io: &mut OutIo, pool: &PoolInner, now: u64) {
    if let OutState::Up { stream, .. } = &io.state {
        let _ = stream.shutdown(Shutdown::Both);
    }
    io.state = OutState::Down;
    // Queued frames are copies out of the sender window; the resync
    // after reconnect regenerates exactly the unacked tail in order.
    // Keeping them would bury the window head (the one frame the
    // receiver is waiting on) behind an ever-growing run of stale
    // duplicates — under reset-heavy plans that is a livelock.
    io.queue.clear();
    io.wbuf.clear();
    io.delayed = None;
    io.next_dial_at = now;
    pool.schedule(now, TimerKey::Redial(Arc::downgrade(link)));
}

/// One poll-driven step of the outbound link state machine: dial if
/// due, drain HELLO/ACK frames, move queued DATA through the fault
/// injector, flush. Never blocks beyond the bounded connect attempt.
fn out_service(link: &Arc<OutLink>, pool: &PoolInner) -> Sweep {
    let mut io_guard = lock(&link.io);
    // Reborrow: disjoint field borrows through the guard's deref.
    let io = &mut *io_guard;
    let now = now_ms(link.epoch);
    let mut progress = false;

    // Dial when down and due.
    if matches!(io.state, OutState::Down) {
        if now < io.next_dial_at {
            return Sweep::Idle;
        }
        match TcpStream::connect_timeout(&link.addr, Duration::from_millis(CONNECT_TIMEOUT_MS)) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                let was_reconnect = io.ever_connected;
                if was_reconnect {
                    link.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                io.ever_connected = true;
                io.backoff_ms = link.dial_backoff_ms;
                io.delayed = None;
                io.wbuf.clear();
                let hello = encode_frame(
                    FK_HELLO,
                    &Hello {
                        from: link.me as u64,
                        expected: 0,
                    },
                );
                buffer_counted(&mut io.wbuf, &hello, &link.stats);
                io.state = OutState::Up {
                    stream,
                    rbuf: Vec::new(),
                    helloed: false,
                    was_reconnect,
                };
                progress = true;
            }
            Err(_) => {
                let jitter = io.rng.gen_range(0..io.backoff_ms / 2 + 1);
                io.next_dial_at = now + io.backoff_ms + jitter;
                io.backoff_ms = (io.backoff_ms * 2).min(link.dial_backoff_max_ms);
                pool.schedule(io.next_dial_at, TimerKey::Redial(Arc::downgrade(link)));
                return Sweep::Idle;
            }
        }
    }

    // Drain the read side: HELLO replies and cumulative ACKs.
    let mut died = false;
    let mut frames = Vec::new();
    if let OutState::Up { stream, rbuf, .. } = &mut io.state {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut tmp) {
                Ok(0) => {
                    died = true;
                    break;
                }
                Ok(k) => {
                    rbuf.extend_from_slice(&tmp[..k]);
                    progress = true;
                }
                Err(e) if would_block(&e) => break,
                Err(_) => {
                    died = true;
                    break;
                }
            }
        }
        if !died {
            match drain_frames(rbuf) {
                Ok(f) => frames = f,
                Err(_) => died = true,
            }
        }
    }
    if died {
        out_conn_died(link, io, pool, now);
        return Sweep::Progress;
    }
    for frame in frames {
        match frame {
            NetFrame::Hello(h) => {
                if let OutState::Up {
                    helloed,
                    was_reconnect,
                    ..
                } = &mut io.state
                {
                    if !*helloed {
                        *helloed = true;
                        let resync = *was_reconnect;
                        let (tail, arm) = {
                            let mut s = lock(&link.sender);
                            let tail = if resync {
                                s.on_resync(h.expected, now)
                            } else {
                                Vec::new()
                            };
                            (tail, s.rto_deadline())
                        };
                        if resync {
                            // The tail *is* the whole unacked window;
                            // anything still queued is a duplicate.
                            io.queue.clear();
                        }
                        io.queue.extend(tail);
                        if let Some(at) = arm {
                            schedule_rto(link, pool, at);
                        }
                        progress = true;
                    }
                }
            }
            NetFrame::Ack(a) => {
                let arm = {
                    let mut s = lock(&link.sender);
                    s.on_ack(a.cum, now);
                    s.rto_deadline()
                };
                // Ack progress moves the deadline; the live entry
                // lazily re-arms itself there, so this only fires when
                // no entry is live at all.
                if let Some(at) = arm {
                    schedule_rto(link, pool, at);
                }
                progress = true;
            }
            // DATA flows accepter-ward; one arriving here is noise.
            NetFrame::Data(_) => {}
        }
    }

    // Move queued frames through the fault injector once handshaken.
    if matches!(io.state, OutState::Up { helloed: true, .. }) {
        while let Some(d) = io.queue.pop_front() {
            progress = true;
            if !inject_frame(link, io, &d) {
                out_conn_died(link, io, pool, now);
                return Sweep::Progress;
            }
        }
    }

    // Flush as far as the socket allows.
    if !io.wbuf.is_empty() {
        if let OutState::Up { stream, .. } = &mut io.state {
            let mut written = 0;
            let mut dead = false;
            while written < io.wbuf.len() {
                match stream.write(&io.wbuf[written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(k) => {
                        written += k;
                        progress = true;
                    }
                    Err(e) if would_block(&e) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            io.wbuf.drain(..written);
            if dead {
                out_conn_died(link, io, pool, now);
                return Sweep::Progress;
            }
        }
    }

    if progress {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

/// Runs one DATA frame through the deterministic fault injector,
/// buffering whatever survives. Returns `false` when the injected
/// action killed the connection (mid-frame reset).
fn inject_frame(link: &OutLink, io: &mut OutIo, d: &Data) -> bool {
    let bytes = encode_frame(FK_DATA, d);
    let idx = io.frame_idx;
    io.frame_idx += 1;
    let mut write_now: Vec<Vec<u8>> = Vec::new();
    match link.plan.action(link.me, link.to, idx) {
        FaultAction::Deliver => write_now.push(bytes),
        FaultAction::Drop => {}
        FaultAction::Duplicate => {
            write_now.push(bytes.clone());
            write_now.push(bytes);
        }
        FaultAction::Delay => {
            // Hold this frame; a previously held one is released first
            // so at most one frame is ever parked.
            if let Some(prev) = io.delayed.take() {
                write_now.push(prev);
            }
            io.delayed = Some(bytes);
        }
        FaultAction::Reset => {
            // Mid-frame reset: half a frame, then a hard close. The
            // receiver sees torn bytes and drops the connection too.
            let half = bytes.len() / 2;
            let torn = bytes[..half].to_vec();
            buffer_counted(&mut io.wbuf, &torn, &link.stats);
            if let OutState::Up { stream, .. } = &mut io.state {
                let _ = stream.write_all(&io.wbuf);
                let _ = stream.shutdown(Shutdown::Both);
            }
            io.wbuf.clear();
            io.delayed = None;
            return false;
        }
    }
    if !write_now.is_empty() {
        // Any held frame goes out *after* the current one: reorder.
        if let Some(prev) = io.delayed.take() {
            write_now.push(prev);
        }
    }
    for b in write_now {
        buffer_counted(&mut io.wbuf, &b, &link.stats);
    }
    true
}

/// A retransmit timer fired for this link: lazily re-check the armed
/// deadline, retransmit what is due, re-arm, flush.
fn out_fire_rto(link: &Arc<OutLink>, pool: &PoolInner) -> bool {
    // This entry is spent; clear the flag *first* so a concurrent arm
    // (or our own re-arm below) creates the next one.
    link.rto_live.store(false, Ordering::Release);
    let now = now_ms(link.epoch);
    let connected = {
        let io = lock(&link.io);
        matches!(io.state, OutState::Up { helloed: true, .. })
    };
    let (burst, rearm) = {
        let mut s = lock(&link.sender);
        if s.window_len() == 0 {
            // Everything acked since this entry was scheduled: done.
            return false;
        }
        if !connected {
            // Down: the resync after reconnect recovers the window;
            // keep a probe entry alive so the invariant holds.
            drop(s);
            schedule_rto(link, pool, now + link.link_cfg.rto_ms);
            return false;
        }
        match s.rto_deadline() {
            None => return false,
            Some(at) if now < at => {
                // Stale entry (the deadline moved): re-arm, no fire.
                drop(s);
                schedule_rto(link, pool, at);
                return false;
            }
            Some(_) => {
                let burst = s.retransmit_due(now);
                (burst, s.rto_deadline())
            }
        }
    };
    if let Some(at) = rearm {
        schedule_rto(link, pool, at);
    }
    if burst.is_empty() {
        return false;
    }
    lock(&link.io).queue.extend(burst);
    // Push the burst to the wire immediately rather than waiting for
    // the next sweep.
    matches!(out_service(link, pool), Sweep::Progress)
}

// ---------------------------------------------------------------------------
// Inbound connection (accepter side)
// ---------------------------------------------------------------------------

/// One accepted connection, owned by the pool (never by a thread).
pub(crate) struct InConn {
    node: Arc<NodeNet>,
    io: Mutex<InIo>,
}

struct InIo {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    peer: Option<ProcessId>,
}

/// One poll-driven step of an inbound connection: drain bytes, demux,
/// identify (HELLO) or deliver (DATA), then write one batched
/// cumulative ACK per peer touched by this wakeup.
fn in_service(conn: &InConn) -> Sweep {
    let mut io_guard = lock(&conn.io);
    // Reborrow: disjoint field borrows through the guard's deref.
    let io = &mut *io_guard;
    let mut progress = false;
    let mut died = false;
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match io.stream.read(&mut tmp) {
            Ok(0) => {
                died = true;
                break;
            }
            Ok(k) => {
                io.rbuf.extend_from_slice(&tmp[..k]);
                progress = true;
            }
            Err(e) if would_block(&e) => break,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    let frames = if died {
        Vec::new()
    } else {
        match drain_frames(&mut io.rbuf) {
            Ok(f) => f,
            // Torn or corrupt bytes (mid-frame reset): drop the
            // connection; the dialer reconnects and resyncs.
            Err(_) => {
                died = true;
                Vec::new()
            }
        }
    };
    let mut data_seen = false;
    for frame in frames {
        match frame {
            NetFrame::Hello(h) => {
                let p = h.from as usize;
                if p >= conn.node.rx_links.len() {
                    died = true;
                    break;
                }
                io.peer = Some(p);
                let expected = lock(&conn.node.rx_links[p]).expected();
                let reply = encode_frame(
                    FK_HELLO,
                    &Hello {
                        from: conn.node.me as u64,
                        expected,
                    },
                );
                let InIo { wbuf, .. } = &mut *io;
                buffer_counted(wbuf, &reply, &conn.node.stats);
            }
            NetFrame::Data(d) => {
                // DATA before HELLO is a protocol violation.
                let Some(p) = io.peer else {
                    died = true;
                    break;
                };
                data_seen = true;
                let deliverable = lock(&conn.node.rx_links[p]).on_data(d);
                for (depth, payload) in deliverable {
                    let _ = conn.node.sink.send((p, depth, payload));
                }
            }
            // ACKs flow accepter → dialer; one arriving here is noise.
            NetFrame::Ack(_) => {}
        }
    }
    // Ack batching: one cumulative ACK per readiness wakeup that
    // carried DATA, covering every frame the batch delivered — not
    // one ACK per frame. Duplicates still refresh the cumulative
    // value, so lost ACKs are repaired by the retransmissions they
    // failed to suppress.
    if data_seen {
        if let Some(p) = io.peer {
            let cum = lock(&conn.node.rx_links[p]).expected();
            let ack = encode_frame(FK_ACK, &Ack { cum });
            let InIo { wbuf, .. } = &mut *io;
            buffer_counted(wbuf, &ack, &conn.node.stats);
        }
    }
    // Flush replies/acks.
    if !io.wbuf.is_empty() && !died {
        let mut written = 0;
        while written < io.wbuf.len() {
            match io.stream.write(&io.wbuf[written..]) {
                Ok(0) => {
                    died = true;
                    break;
                }
                Ok(k) => {
                    written += k;
                    progress = true;
                }
                Err(e) if would_block(&e) => break,
                Err(_) => {
                    died = true;
                    break;
                }
            }
        }
        io.wbuf.drain(..written);
    }
    if died {
        let _ = io.stream.shutdown(Shutdown::Both);
        return Sweep::Dead;
    }
    if progress {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A listening socket registered with the pool: accepted connections
/// become [`InConn`] entries instead of threads.
pub(crate) struct ListenerEntry {
    pub listener: TcpListener,
    pub node: Arc<NodeNet>,
}

/// Everything a poller thread can own and sweep.
pub(crate) enum Entry {
    Listener(Arc<ListenerEntry>),
    Out(Arc<OutLink>),
    In(Arc<InConn>),
}

/// A wheel key: which link, which timer. Weak so a torn-down runtime's
/// links die with it and stale entries fizzle.
pub(crate) enum TimerKey {
    Rto(Weak<OutLink>),
    Redial(Weak<OutLink>),
}

/// One poller thread's work queue and wake handle.
struct Shard {
    incoming: Mutex<Vec<Entry>>,
    handle: Mutex<Option<std::thread::Thread>>,
    kicked: AtomicBool,
}

/// Shared pool state: shards, the single timer wheel, the clock epoch.
pub(crate) struct PoolInner {
    shards: Vec<Shard>,
    wheel: Mutex<TimerWheel<TimerKey>>,
    pub epoch: Instant,
    stop: AtomicBool,
    next_shard: AtomicUsize,
}

impl PoolInner {
    /// Registers an entry with the least-recently-assigned shard.
    pub(crate) fn register(&self, entry: Entry) {
        let i = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        lock(&self.shards[i].incoming).push(entry);
        self.wake_shard(i);
    }

    /// Schedules a timer on the single wheel.
    pub(crate) fn schedule(&self, deadline_ms: u64, key: TimerKey) {
        lock(&self.wheel).schedule(deadline_ms, key);
    }

    fn wake_shard(&self, i: usize) {
        let shard = &self.shards[i];
        shard.kicked.store(true, Ordering::SeqCst);
        if let Some(t) = lock(&shard.handle).as_ref() {
            t.unpark();
        }
    }

    /// Wakes every poller thread (event threads call this after
    /// enqueueing outbound frames; with at most four shards this is
    /// cheaper than tracking link→shard assignments).
    pub(crate) fn wake_all(&self) {
        for i in 0..self.shards.len() {
            self.wake_shard(i);
        }
    }
}

/// A fixed pool of poller threads owning all sockets of a runtime.
/// Clone-able handle; [`PollerPool::shutdown`] stops and joins the
/// workers (idempotent).
#[derive(Clone)]
pub struct PollerPool {
    inner: Arc<PoolInner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl PollerPool {
    /// Spawns `threads` poller threads (clamped to at least one).
    pub fn new(threads: usize) -> PollerPool {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            shards: (0..threads)
                .map(|_| Shard {
                    incoming: Mutex::new(Vec::new()),
                    handle: Mutex::new(None),
                    kicked: AtomicBool::new(false),
                })
                .collect(),
            wheel: Mutex::new(TimerWheel::new(WHEEL_GRANULARITY_MS, WHEEL_SLOTS)),
            epoch: Instant::now(),
            stop: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = inner.clone();
                std::thread::spawn(move || worker(inner, i))
            })
            .collect();
        PollerPool {
            inner,
            workers: Arc::new(Mutex::new(workers)),
        }
    }

    /// Number of poller threads in the pool.
    pub fn threads(&self) -> usize {
        self.inner.shards.len()
    }

    pub(crate) fn inner(&self) -> &Arc<PoolInner> {
        &self.inner
    }

    /// Stops and joins the poller threads (idempotent). Entries (and
    /// their sockets) are dropped by the exiting workers.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.wake_all();
        for h in lock(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

/// The readiness loop: sweep owned entries, fire the wheel, park when
/// idle (bounded by the wheel's next deadline and the idle beat).
fn worker(inner: Arc<PoolInner>, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    *lock(&shard.handle) = Some(std::thread::current());
    let mut entries: Vec<Entry> = Vec::new();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        shard.kicked.store(false, Ordering::SeqCst);
        {
            let mut q = lock(&shard.incoming);
            entries.append(&mut q);
        }
        let mut progress = false;
        entries.retain(|entry| match sweep_entry(entry, &inner) {
            Sweep::Dead => false,
            Sweep::Progress => {
                progress = true;
                true
            }
            Sweep::Idle => true,
        });
        // Fire the single wheel: whichever shard sweeps first gets the
        // due timers; the io mutexes make cross-shard servicing safe.
        let now = now_ms(inner.epoch);
        let due = lock(&inner.wheel).expire(now);
        for key in due {
            let fired = match key {
                TimerKey::Rto(weak) => weak
                    .upgrade()
                    .map(|l| out_fire_rto(&l, &inner))
                    .unwrap_or(false),
                TimerKey::Redial(weak) => weak
                    .upgrade()
                    .map(|l| matches!(out_service(&l, &inner), Sweep::Progress))
                    .unwrap_or(false),
            };
            progress |= fired;
        }
        if progress || shard.kicked.load(Ordering::SeqCst) {
            continue;
        }
        // Idle: park until the next timer, the idle beat, or a wake.
        let now = now_ms(inner.epoch);
        let mut wait = IDLE_BEAT_MS;
        if let Some(d) = lock(&inner.wheel).next_deadline() {
            wait = wait.min(d.saturating_sub(now).max(1));
        }
        std::thread::park_timeout(Duration::from_millis(wait));
    }
}

/// Sweeps one entry; listener accepts register new inbound entries.
fn sweep_entry(entry: &Entry, inner: &PoolInner) -> Sweep {
    match entry {
        Entry::Listener(l) => {
            let mut any = false;
            while let Ok((stream, _)) = l.listener.accept() {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                inner.register(Entry::In(Arc::new(InConn {
                    node: l.node.clone(),
                    io: Mutex::new(InIo {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        peer: None,
                    }),
                })));
                any = true;
            }
            if any {
                Sweep::Progress
            } else {
                Sweep::Idle
            }
        }
        Entry::Out(link) => out_service(link, inner),
        Entry::In(conn) => in_service(conn),
    }
}
