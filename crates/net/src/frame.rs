//! Transport frame layer: the three frame kinds the TCP runtime puts on
//! a wire, built on `bgla_codec`'s length-prefixed checksummed framing.
//!
//! Every frame is a standard codec frame (`BGLA` magic, version, kind
//! tag, length, FNV-1a-64 checksum); the transport adds nothing of its
//! own to the envelope. Protocol messages ride inside [`Data`] as an
//! opaque `encode_payload` byte string, so the transport never needs to
//! know the protocol message type to forward, retransmit, or dedup it.
//!
//! The kind tags live in the `0x4exx` ("N" for net) range, disjoint
//! from the snapshot tags used elsewhere in the workspace, so a frame
//! misrouted between subsystems fails loudly as a kind mismatch rather
//! than decoding as garbage.

use bgla_codec::{decode_frame, verify_frame, CodecError, Reader, Wire, Writer, FRAME_OVERHEAD};

/// Kind tag of a [`Hello`] frame.
pub const FK_HELLO: u16 = 0x4e01;
/// Kind tag of a [`Data`] frame.
pub const FK_DATA: u16 = 0x4e02;
/// Kind tag of an [`Ack`] frame.
pub const FK_ACK: u16 = 0x4e03;

/// Bytes of a codec frame header before the payload (magic + version +
/// kind + length). A stream reader pulls this much to learn the
/// payload length, then the payload plus the trailing checksum.
pub const FRAME_HEADER: usize = 16;

/// Hard upper bound on a frame payload accepted off a socket. Guards
/// allocation against a hostile or corrupt length field before the
/// checksum can be verified.
pub const MAX_FRAME_PAYLOAD: u64 = 64 * 1024 * 1024;

/// Connection handshake, sent by both ends when a connection is
/// (re-)established. The dialer introduces itself (`from`, with
/// `expected = 0`); the accepter replies with the next DATA sequence
/// number it expects from that peer, which is what lets the dialer
/// *resync*: drop acknowledged entries from its unacked queue and
/// retransmit exactly the tail the peer has not seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Process id of the sending end.
    pub from: u64,
    /// Next DATA sequence the sender of this HELLO expects to receive
    /// (meaningful on the accepter side; dialers send 0).
    pub expected: u64,
}

impl Wire for Hello {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.from);
        w.u64(self.expected);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Hello {
            from: r.u64()?,
            expected: r.u64()?,
        })
    }
}

/// One protocol message in flight on a directed link. `seq` is the
/// per-link sequence number driving retransmission and dedup; `depth`
/// is the causal depth the message would carry as a simulator envelope
/// (sender's depth at send time + 1), shipped so the receiving node's
/// clock advances exactly as it would in-memory; `payload` is the
/// protocol message's `bgla_codec` encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data {
    /// Per-directed-link sequence number, starting at 0.
    pub seq: u64,
    /// Causal depth of the carried protocol message.
    pub depth: u64,
    /// `encode_payload` bytes of the protocol message.
    pub payload: Vec<u8>,
}

impl Wire for Data {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seq);
        w.u64(self.depth);
        self.payload.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Data {
            seq: r.u64()?,
            depth: r.u64()?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// Cumulative acknowledgment: every DATA with `seq < cum` has been
/// received (possibly as a duplicate) on this link. Sent by the
/// accepter after each DATA frame it reads — duplicates included, so a
/// sender whose ACKs were lost still learns its retransmissions were
/// unnecessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// All sequence numbers below this are acknowledged.
    pub cum: u64,
}

impl Wire for Ack {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.cum);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Ack { cum: r.u64()? })
    }
}

/// A decoded transport frame, the output of [`demux_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFrame {
    /// Connection handshake / resync announcement.
    Hello(Hello),
    /// A protocol message with link sequencing.
    Data(Data),
    /// Cumulative acknowledgment.
    Ack(Ack),
}

/// Verifies one complete frame (magic, version, length, checksum) and
/// decodes it according to its kind tag. Unknown kinds are rejected:
/// the transport demux must handle every `FK_*` constant in this file
/// (enforced by `bgla-lint`'s `frame-demux-coverage` pass) and nothing
/// else arrives on a healthy link.
pub fn demux_frame(bytes: &[u8]) -> Result<NetFrame, CodecError> {
    match verify_frame(bytes)? {
        FK_HELLO => Ok(NetFrame::Hello(decode_frame(FK_HELLO, bytes)?)),
        FK_DATA => Ok(NetFrame::Data(decode_frame(FK_DATA, bytes)?)),
        FK_ACK => Ok(NetFrame::Ack(decode_frame(FK_ACK, bytes)?)),
        _ => Err(CodecError::Invalid("unknown transport frame kind")),
    }
}

/// Parses a frame header prefix and returns the total frame length
/// (header + payload + checksum) if `buf` starts with a structurally
/// plausible header, `Ok(None)` if more bytes are needed to tell, and
/// an error if the prefix can never become a valid frame (wrong magic,
/// wrong version, or an absurd length field). Checksum and payload
/// validation happen later, in [`demux_frame`], once the whole frame
/// has arrived.
pub fn frame_total_len(buf: &[u8]) -> Result<Option<usize>, CodecError> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let mut r = Reader::new(buf);
    if r.bytes(4)? != bgla_codec::FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != bgla_codec::FRAME_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let _kind = r.u16()?;
    let len = r.u64()?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(CodecError::BadLength);
    }
    Ok(Some(len as usize + FRAME_OVERHEAD))
}

/// Splits complete frames off the front of a receive buffer. Returns
/// the decoded frames; the buffer retains any trailing partial frame.
/// The first malformed prefix or corrupt frame aborts with an error —
/// the caller treats that as a dead connection (mid-frame resets leave
/// exactly this kind of torn garbage) and lets the reconnect/resync
/// machinery recover.
pub fn drain_frames(buf: &mut Vec<u8>) -> Result<Vec<NetFrame>, CodecError> {
    let mut out = Vec::new();
    loop {
        match frame_total_len(buf)? {
            None => return Ok(out),
            Some(total) => {
                if buf.len() < total {
                    return Ok(out);
                }
                let frame = demux_frame(&buf[..total])?;
                buf.drain(..total);
                out.push(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_codec::encode_frame;

    #[test]
    fn frames_roundtrip_through_demux() {
        let h = Hello {
            from: 3,
            expected: 17,
        };
        let d = Data {
            seq: 9,
            depth: 4,
            payload: vec![1, 2, 3],
        };
        let a = Ack { cum: 10 };
        assert_eq!(
            demux_frame(&encode_frame(FK_HELLO, &h)).unwrap(),
            NetFrame::Hello(h)
        );
        assert_eq!(
            demux_frame(&encode_frame(FK_DATA, &d)).unwrap(),
            NetFrame::Data(d)
        );
        assert_eq!(
            demux_frame(&encode_frame(FK_ACK, &a)).unwrap(),
            NetFrame::Ack(a)
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let bytes = encode_frame(0x4eff, &Ack { cum: 0 });
        assert_eq!(
            demux_frame(&bytes),
            Err(CodecError::Invalid("unknown transport frame kind"))
        );
    }

    #[test]
    fn drain_splits_a_coalesced_stream() {
        let mut buf = Vec::new();
        buf.extend(encode_frame(
            FK_DATA,
            &Data {
                seq: 0,
                depth: 1,
                payload: vec![7; 40],
            },
        ));
        buf.extend(encode_frame(FK_ACK, &Ack { cum: 1 }));
        // Plus half of a third frame.
        let third = encode_frame(FK_ACK, &Ack { cum: 2 });
        buf.extend(&third[..10]);

        let frames = drain_frames(&mut buf).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], NetFrame::Data(_)));
        assert!(matches!(frames[1], NetFrame::Ack(Ack { cum: 1 })));
        // The partial tail stays buffered...
        assert_eq!(buf, &third[..10]);
        // ...and completes once the rest arrives.
        buf.extend(&third[10..]);
        let frames = drain_frames(&mut buf).unwrap();
        assert_eq!(frames, vec![NetFrame::Ack(Ack { cum: 2 })]);
        assert!(buf.is_empty());
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        // A mid-frame reset leaves a valid header followed by garbage
        // from the *next* connection attempt; the checksum catches it.
        let mut good = encode_frame(
            FK_DATA,
            &Data {
                seq: 5,
                depth: 2,
                payload: vec![9; 16],
            },
        );
        let n = good.len();
        good[n - 1] ^= 0xff;
        let mut buf = good;
        assert_eq!(drain_frames(&mut buf), Err(CodecError::BadChecksum));
    }

    #[test]
    fn absurd_length_field_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend(bgla_codec::FRAME_MAGIC);
        buf.extend(bgla_codec::FRAME_VERSION.to_le_bytes());
        buf.extend(FK_DATA.to_le_bytes());
        buf.extend(u64::MAX.to_le_bytes());
        assert_eq!(frame_total_len(&buf), Err(CodecError::BadLength));
    }

    #[test]
    fn wrong_magic_fails_fast() {
        let mut buf = vec![b'X'; FRAME_HEADER];
        assert_eq!(frame_total_len(&buf), Err(CodecError::BadMagic));
        buf.truncate(3);
        // Too short to judge: not an error yet.
        assert_eq!(frame_total_len(&buf), Ok(None));
    }
}
