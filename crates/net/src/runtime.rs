//! The in-process multi-node TCP runtime: `n` [`TcpNode`]s over
//! localhost sockets, driven behind the [`Transport`] trait so every
//! simulator-facing harness (reports, spec batteries, conformance
//! checking) runs unchanged over real TCP.
//!
//! Construction wires everything up with protocol execution latched:
//! listeners are bound on ephemeral localhost ports, each node learns
//! every peer's address, one [`PollerPool`] spawns to own every socket
//! of the system, and nothing runs `on_start` until the first `run_*`
//! call releases the shared `go` latch — so a freshly built runtime is
//! inert, like a freshly built `Simulation`.
//!
//! The thread budget is fixed at build time: the pool's
//! `min(4, cores)` poller threads (override via
//! [`NetConfig::poller_threads`]) plus one event thread per node —
//! versus roughly `3·n·(n−1)` threads for the classic runtime kept in
//! [`crate::classic`].
//!
//! # Quiescence vs budget
//!
//! [`Transport::run_transport`] returns when the system quiesces, when
//! `budget` deliveries have happened, or at the wall-clock safety
//! deadline. Unlike the simulator, hitting the budget does not *pause*
//! the system — threads keep running until [`TcpRuntime::shutdown`] —
//! so a budget return is a sampling point, not a freeze. Quiescence is
//! confirmed by the generation-stamped protocol
//! ([`SharedCounters::confirm_quiescent`]): two balanced reads of the
//! intent/retirement counters bracketing an unchanged generation,
//! sound without any sleep — not the racy "zero, wait 2 ms, still
//! zero" beat the thread-per-link runtime used.

use crate::config::NetConfig;
use crate::counters::SharedCounters;
use crate::node::{NodeSpec, TcpNode};
use crate::poller::PollerPool;
use crate::trace_merge::merge_traces;
use bgla_codec::Wire;
use bgla_simnet::{
    Metrics, NodeObserver, Process, ProcessId, RunOutcome, Trace, Transport, WireMessage,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A process plus its optional per-node op observer, as collected by
/// the builder.
type ObservedProcess<M> = (Box<dyn Process<M>>, Option<NodeObserver<M>>);

/// A per-node predicate for [`Transport::run_until_all`]-style waits.
type NodePred<'a, M> = &'a mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool;

/// Builder: collect processes (and optional observers), then
/// [`TcpRuntimeBuilder::build`] to bind sockets and spawn threads.
pub struct TcpRuntimeBuilder<M> {
    cfg: NetConfig,
    procs: Vec<ObservedProcess<M>>,
}

impl<M: WireMessage + Wire + 'static> TcpRuntimeBuilder<M> {
    /// A builder with the given transport configuration.
    pub fn new(cfg: NetConfig) -> TcpRuntimeBuilder<M> {
        TcpRuntimeBuilder {
            cfg,
            procs: Vec::new(),
        }
    }

    /// Adds a process (its id is its insertion order).
    #[allow(clippy::should_implement_trait)] // appends a process, not arithmetic
    pub fn add(mut self, proc: Box<dyn Process<M>>) -> Self {
        self.procs.push((proc, None));
        self
    }

    /// Adds a process with a per-node op observer (for trace
    /// recording; see [`TcpRuntime::take_trace`]).
    pub fn add_observed(mut self, proc: Box<dyn Process<M>>, obs: NodeObserver<M>) -> Self {
        self.procs.push((proc, Some(obs)));
        self
    }

    /// Binds one localhost listener per node, distributes the address
    /// map, spawns the poller pool, and wires every node into it
    /// (latched — nothing executes yet).
    pub fn build(self) -> std::io::Result<TcpRuntime<M>> {
        let n = self.procs.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let shared = Arc::new(SharedCounters::default());
        let pool = PollerPool::new(self.cfg.resolved_poller_threads());
        let mut nodes = Vec::with_capacity(n);
        for (me, ((proc, observer), listener)) in self.procs.into_iter().zip(listeners).enumerate()
        {
            let peers = addrs
                .iter()
                .enumerate()
                .map(|(j, a)| if j == me { None } else { Some(*a) })
                .collect();
            nodes.push(TcpNode::spawn(
                NodeSpec {
                    me,
                    n,
                    proc,
                    observer,
                    listener,
                    peers,
                },
                self.cfg,
                shared.clone(),
                &pool,
            )?);
        }
        Ok(TcpRuntime {
            nodes,
            shared,
            pool,
            cfg: self.cfg,
            stopped: false,
        })
    }
}

/// A running (or latched) multi-node TCP system. Implements
/// [`Transport`]; drop or [`TcpRuntime::shutdown`] stops every thread.
pub struct TcpRuntime<M> {
    nodes: Vec<TcpNode<M>>,
    shared: Arc<SharedCounters>,
    pool: PollerPool,
    cfg: NetConfig,
    stopped: bool,
}

impl<M: WireMessage + Wire + 'static> TcpRuntime<M> {
    /// The poller pool driving this runtime's sockets (exposed so
    /// tests can assert the thread budget).
    pub fn poller_threads(&self) -> usize {
        self.pool.threads()
    }

    fn all_satisfy(&self, pred: &mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool) -> bool {
        let mut all = true;
        for (i, node) in self.nodes.iter().enumerate() {
            let mut ok = false;
            node.with_process(&mut |p| ok = pred(i, p));
            if !ok {
                all = false;
                break;
            }
        }
        all
    }

    fn wait(&mut self, budget: u64, mut pred: Option<NodePred<'_, M>>) -> (RunOutcome, bool) {
        self.shared.go.store(true, Ordering::SeqCst);
        let n = self.nodes.len();
        let deadline = Instant::now() + Duration::from_millis(self.cfg.deadline_ms);
        loop {
            std::thread::sleep(Duration::from_millis(3));
            let delivered = self.shared.delivered.load(Ordering::SeqCst);
            if let Some(p) = pred.as_mut() {
                if self.all_satisfy(p) {
                    return (
                        RunOutcome {
                            delivered,
                            quiescent: self.shared.confirm_quiescent(n),
                        },
                        true,
                    );
                }
            }
            if self.shared.confirm_quiescent(n) {
                let delivered = self.shared.delivered.load(Ordering::SeqCst);
                let sat = pred.as_mut().map(|p| self.all_satisfy(p)).unwrap_or(true);
                return (
                    RunOutcome {
                        delivered,
                        quiescent: true,
                    },
                    sat,
                );
            }
            if delivered >= budget || Instant::now() >= deadline {
                return (
                    RunOutcome {
                        delivered,
                        quiescent: false,
                    },
                    false,
                );
            }
        }
    }

    /// Stops every thread (idempotent): the stop latch drains the
    /// event threads, then the poller pool is joined.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        // Release event threads still latched on `go`.
        self.shared.go.store(true, Ordering::SeqCst);
        for node in &mut self.nodes {
            node.join();
        }
        self.pool.shutdown();
    }

    /// Stops the runtime and merges every node's local log into a
    /// simulator-format [`Trace`] (see [`crate::trace_merge`]).
    /// `op_priority` orders same-step ops — pass the protocol layer's
    /// op priority for conformance work.
    pub fn take_trace(&mut self, op_priority: fn(&str) -> u8) -> Trace {
        self.shutdown();
        let logs = self.nodes.iter().map(|nd| nd.take_log()).collect();
        merge_traces(logs, op_priority)
    }
}

impl<M> Drop for TcpRuntime<M> {
    fn drop(&mut self) {
        if !self.stopped {
            self.stopped = true;
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.go.store(true, Ordering::SeqCst);
            for node in &mut self.nodes {
                node.join();
            }
            self.pool.shutdown();
        }
    }
}

impl<M: WireMessage + Wire + 'static> Transport<M> for TcpRuntime<M> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn with_process(&self, p: ProcessId, f: &mut dyn FnMut(&dyn Process<M>)) {
        self.nodes[p].with_process(f);
    }

    fn metrics_snapshot(&self) -> Metrics {
        let mut m = Metrics::new(self.nodes.len());
        for node in &self.nodes {
            m.merge(&node.metrics());
        }
        m
    }

    fn run_transport(&mut self, budget: u64) -> RunOutcome {
        self.wait(budget, None).0
    }

    fn run_until_all(
        &mut self,
        budget: u64,
        pred: &mut dyn FnMut(ProcessId, &dyn Process<M>) -> bool,
    ) -> (RunOutcome, bool) {
        self.wait(budget, Some(pred))
    }
}
