//! One TCP node on the event-driven runtime: a single event thread
//! that owns the [`Process`], with every socket of the node (listener,
//! inbound connections, outbound links) owned by the shared
//! [`PollerPool`] instead of dedicated threads.
//!
//! # Thread anatomy (per node)
//!
//! * **Event thread** — the only thread this module spawns. Owns the
//!   `Box<dyn Process<M>>`, consumes the raw inbox of
//!   `(from, depth, payload)` deliveries pushed by poller threads,
//!   decodes, runs `on_message`, meters sends, and routes outbound
//!   copies to the pool's per-link state machines. The only thread
//!   that touches protocol state; [`TcpNode::with_process`] visits
//!   are serialized against it by the node lock.
//! * Everything else — accepting, reading, dedup/reorder, acking,
//!   dialing, fault injection, retransmission — happens on the pool's
//!   fixed poller threads ([`crate::poller`]). Total runtime threads
//!   for an n-node system: pool size + n, versus roughly
//!   `3·n·(n−1)` for the classic thread-per-link runtime.
//!
//! # Serialization outside the node lock
//!
//! The classic event loop encoded every outbound payload while still
//! holding the node lock, stretching the lock over pure CPU work and
//! blocking `with_process` visitors for the duration. Here the loop
//! splits each delivery into two halves: under the lock it runs the
//! process, records the delivery log, and meters the outbound
//! messages (metrics live in the core); after `drop(core)` it encodes
//! payloads and hands them to the pool. The quiescence order is
//! preserved — every outgoing copy's intent is stamped
//! ([`SharedCounters::note_enqueue`]) before the incoming message is
//! retired — so "pending reaches zero" still means no protocol
//! message exists anywhere.
//!
//! # Causal depth over the wire
//!
//! Every DATA frame carries the causal depth its message would have as
//! a simulator envelope (sender's clock + 1); a receiving node joins
//! its clock to it exactly as the simulator does. Self-addressed
//! copies skip the socket but take the same encode → sink → decode
//! path as any other copy, so *every* protocol message is exercised by
//! real encode/decode.

use crate::config::NetConfig;
use crate::counters::SharedCounters;
use crate::link::ReceiverLink;
use crate::poller::{
    enqueue_arc, lock, Entry, ListenerEntry, NodeNet, NodeStats, OutLink, PollerPool,
};
use crate::trace_merge::{LocalDelivery, LocalOp, NodeLog};
use bgla_codec::{decode_payload, encode_payload, Wire};
use bgla_simnet::{Context, Metrics, NodeObserver, Process, ProcessId, WireMessage};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a node needs at spawn time.
pub struct NodeSpec<M> {
    /// This node's process id.
    pub me: ProcessId,
    /// Total processes in the system.
    pub n: usize,
    /// The protocol state machine this node drives.
    pub proc: Box<dyn Process<M>>,
    /// Optional per-node op observer (for trace recording).
    pub observer: Option<NodeObserver<M>>,
    /// Bound listener for inbound connections (bind before spawn so
    /// peers can be told the address).
    pub listener: TcpListener,
    /// Peer addresses indexed by process id; `None` at `me` (and for
    /// absent peers, to which sends are surfaced as drops).
    pub peers: Vec<Option<SocketAddr>>,
}

/// State guarded by the node lock: the process plus everything the
/// event thread updates per delivery.
struct NodeCore<M> {
    proc: Box<dyn Process<M>>,
    observer: Option<NodeObserver<M>>,
    depth: u64,
    local_events: u64,
    log: NodeLog,
    metrics: Metrics,
}

fn observe<M>(core: &mut NodeCore<M>, after: Option<usize>) {
    let NodeCore {
        proc,
        observer,
        log,
        ..
    } = core;
    if let Some(obs) = observer {
        let mut evs = Vec::new();
        obs(proc.as_ref(), &mut evs);
        for ev in evs {
            log.ops.push(LocalOp {
                after_delivery: after,
                ev,
            });
        }
    }
}

type RawInbox = mpsc::Receiver<(ProcessId, u64, Vec<u8>)>;

/// Outbound fan-out state owned by the event thread.
struct Dispatcher {
    me: ProcessId,
    links: Vec<Option<Arc<OutLink>>>,
    self_tx: mpsc::Sender<(ProcessId, u64, Vec<u8>)>,
    shared: Arc<SharedCounters>,
    pool: PollerPool,
}

impl Dispatcher {
    /// Meters one event's outbound messages into the core's metrics.
    /// Called under the node lock; pure accounting, no serialization.
    fn meter<M: WireMessage>(&self, core: &mut NodeCore<M>, msgs: &[(ProcessId, M)]) {
        for (_, msg) in msgs {
            let (bytes, proofs) = msg.metered();
            core.metrics.record_send(self.me, msg.kind(), bytes, proofs);
        }
    }

    /// Encodes and routes one event's outbound messages — called
    /// *after* the node lock is dropped, so serialization never runs
    /// under it. Stamps each copy's enqueue intent before the copy
    /// becomes visible anywhere (the caller retires the incoming
    /// message only after this returns — that order is the quiescence
    /// soundness argument).
    fn route<M: WireMessage + Wire>(&self, msgs: Vec<(ProcessId, M)>, out_depth: u64) {
        let mut woke_pool = false;
        for (to, msg) in msgs {
            self.shared.note_enqueue();
            let payload = encode_payload(&msg);
            if to == self.me {
                // No socket for self-delivery, but the same codec
                // round-trip as any other copy: the event loop decodes
                // this payload exactly like a remote one.
                let _ = self.self_tx.send((self.me, out_depth, payload));
            } else if let Some(link) = self.links.get(to).and_then(|l| l.as_ref()) {
                if enqueue_arc(link, self.pool.inner(), out_depth, payload) {
                    woke_pool = true;
                } else {
                    // Bounded outbox overflow: surfaced, not masked.
                    self.shared.note_retired();
                }
            } else {
                // No link to this peer (absent in the address map).
                self.shared.note_retired();
            }
        }
        if woke_pool {
            self.pool.inner().wake_all();
        }
    }
}

/// A running TCP node on the event-driven runtime. Dropping it does
/// *not* stop its event thread — set the shared `stop` latch and call
/// [`TcpNode::join`] (the runtime does both in its `shutdown`).
pub struct TcpNode<M> {
    me: ProcessId,
    core: Arc<Mutex<NodeCore<M>>>,
    out: Vec<Option<Arc<OutLink>>>,
    net: Arc<NodeNet>,
    stats: Arc<NodeStats>,
    threads: Vec<JoinHandle<()>>,
}

impl<M: WireMessage + Wire + 'static> TcpNode<M> {
    /// Wires the node into the pool (listener + outbound links) and
    /// spawns its event thread. Protocol execution (`on_start`) is
    /// held until the shared `go` latch is set, so a whole system can
    /// be wired up before any message flows.
    pub fn spawn(
        spec: NodeSpec<M>,
        cfg: NetConfig,
        shared: Arc<SharedCounters>,
        pool: &PollerPool,
    ) -> std::io::Result<TcpNode<M>> {
        let NodeSpec {
            me,
            n,
            proc,
            observer,
            listener,
            peers,
        } = spec;
        listener.set_nonblocking(true)?;
        let epoch = pool.inner().epoch;
        let core = Arc::new(Mutex::new(NodeCore {
            proc,
            observer,
            depth: 0,
            local_events: 0,
            log: NodeLog::default(),
            metrics: Metrics::new(n),
        }));
        let stats = Arc::new(NodeStats::default());
        let (inbox_tx, inbox_rx) = mpsc::channel::<(ProcessId, u64, Vec<u8>)>();

        // Receive side: one listener entry; accepted connections become
        // pool entries feeding the raw inbox.
        let net = Arc::new(NodeNet {
            me,
            rx_links: (0..n).map(|_| Mutex::new(ReceiverLink::new())).collect(),
            sink: inbox_tx.clone(),
            stats: stats.clone(),
        });
        pool.inner()
            .register(Entry::Listener(Arc::new(ListenerEntry {
                listener,
                node: net.clone(),
            })));

        // Send side: one pool-owned link state machine per peer.
        let mut out: Vec<Option<Arc<OutLink>>> = vec![None; n];
        for (to, addr) in peers.iter().enumerate() {
            let Some(addr) = *addr else { continue };
            if to == me {
                continue;
            }
            // Distinct deterministic stream per directed link.
            let link_seed = cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(((me as u64) << 32) | to as u64);
            let link = OutLink::new(
                me,
                to,
                addr,
                cfg.faults,
                cfg.link,
                link_seed,
                cfg.dial_backoff_ms,
                cfg.dial_backoff_max_ms,
                stats.clone(),
                epoch,
            );
            out[to] = Some(link.clone());
            pool.inner().register(Entry::Out(link));
        }

        // The event thread — the node's only thread.
        let mut threads = Vec::new();
        {
            let core = core.clone();
            let shared2 = shared.clone();
            let disp = Dispatcher {
                me,
                links: out.clone(),
                self_tx: inbox_tx,
                shared,
                pool: pool.clone(),
            };
            threads.push(std::thread::spawn(move || {
                event_loop(me, n, core, inbox_rx, disp, shared2)
            }));
        }

        Ok(TcpNode {
            me,
            core,
            out,
            net,
            stats,
            threads,
        })
    }
}

impl<M> TcpNode<M> {
    /// This node's process id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Visits the process state at an event boundary (holds the node
    /// lock, so the event thread is between deliveries).
    pub fn with_process(&self, f: &mut dyn FnMut(&dyn Process<M>)) {
        let core = lock(&self.core);
        f(core.proc.as_ref());
    }

    /// Snapshot of this node's accounting: modeled protocol metering
    /// from the event thread, plus the measured frame/byte counters
    /// and the reliability counters summed over its links.
    pub fn metrics(&self) -> Metrics {
        let mut m = lock(&self.core).metrics.clone();
        m.net_frames = self.stats.frames.load(Ordering::Relaxed);
        m.net_frame_bytes = self.stats.bytes.load(Ordering::Relaxed);
        for link in self.out.iter().flatten() {
            let s = lock(&link.sender);
            m.net_retransmits += s.retransmits;
            m.net_outbox_dropped += s.overflow_dropped;
            m.net_reconnects += link.reconnects.load(Ordering::Relaxed);
        }
        for rx in self.net.rx_links.iter() {
            m.net_dup_frames += lock(rx).dups;
        }
        m
    }

    /// Takes the node's delivery/op log (for trace merging). Call
    /// after the threads have stopped for a complete history.
    pub fn take_log(&self) -> NodeLog {
        std::mem::take(&mut lock(&self.core).log)
    }

    /// Joins this node's event thread. The shared `stop` latch must
    /// already be set or this blocks until it is.
    pub fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn event_loop<M: WireMessage + Wire + 'static>(
    me: ProcessId,
    n: usize,
    core: Arc<Mutex<NodeCore<M>>>,
    inbox: RawInbox,
    disp: Dispatcher,
    shared: Arc<SharedCounters>,
) {
    while !shared.go.load(Ordering::SeqCst) {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if shared.stop.load(Ordering::SeqCst) {
        return;
    }
    let start_msgs = {
        let mut core = lock(&core);
        let mut ctx = Context::for_embedding(me, n, 0, 0);
        core.proc.on_start(&mut ctx);
        observe(&mut core, None);
        let msgs = ctx.take_outbox();
        disp.meter(&mut core, &msgs);
        msgs
    };
    // Start-up sends begin causal chains: depth 1 (simulator rule).
    // Encoded and routed outside the lock.
    disp.route(start_msgs, 1);
    // Start barrier: only once every node's initial sends are counted
    // may anyone trust a zero `pending` read.
    shared.started.fetch_add(1, Ordering::SeqCst);
    loop {
        match inbox.recv_timeout(Duration::from_millis(2)) {
            Ok((from, depth, payload)) => {
                let Ok(msg) = decode_payload::<M>(&payload) else {
                    // Undecodable payload from an identified peer:
                    // this copy will never be processed; retire it so
                    // the system can still quiesce.
                    shared.note_retired();
                    continue;
                };
                let (msgs, out_depth) = {
                    let mut core = lock(&core);
                    core.depth = core.depth.max(depth);
                    core.local_events += 1;
                    let abs_depth = core.depth;
                    core.log.deliveries.push(LocalDelivery {
                        from,
                        kind: msg.kind(),
                        depth: abs_depth,
                        bytes: msg.wire_size(),
                    });
                    let after = core.log.deliveries.len() - 1;
                    let mut ctx = Context::for_embedding(me, n, core.depth, core.local_events);
                    core.proc.on_message(from, msg, &mut ctx);
                    observe(&mut core, Some(after));
                    core.metrics.delivered += 1;
                    let out_depth = core.depth + 1;
                    let msgs = ctx.take_outbox();
                    disp.meter(&mut core, &msgs);
                    (msgs, out_depth)
                };
                // Encode + hand off outside the lock; every outgoing
                // intent is stamped before the incoming retires.
                disp.route(msgs, out_depth);
                shared.delivered.fetch_add(1, Ordering::SeqCst);
                shared.note_retired();
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}
