//! Per-directed-link reliability state machines.
//!
//! [`SenderLink`] and [`ReceiverLink`] are the heart of the fault
//! masking contract: together they rebuild a reliable FIFO link on top
//! of a wire that drops, duplicates, delays, and resets. They are
//! deliberately **pure** — no sockets, no threads, no clocks. The
//! caller feeds in the current time as a millisecond count and carries
//! the returned frames to whatever wire it owns. That makes every
//! masking path (retransmit-after-timeout, exponential backoff,
//! dedup, resync-after-reconnect, bounded-outbox overflow) a plain
//! function of its inputs, pinned exactly by unit tests with no
//! real I/O or sleeps involved.
//!
//! The scheme is a cumulative-ack sliding window, go-back-N flavored:
//! the sender keeps every unacknowledged [`Data`] frame; when the ack
//! timer fires it retransmits a bounded burst from the front of the
//! window and doubles the timeout (plus seeded jitter, so a fleet of
//! links does not retransmit in lockstep). The receiver delivers
//! in order, stashes out-of-order arrivals, discards duplicates, and
//! acknowledges *every* DATA frame — duplicates included — with the
//! cumulative next-expected sequence, so lost ACKs are repaired by the
//! very retransmissions they failed to suppress.

use crate::frame::Data;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Tuning knobs for one directed link. The defaults suit localhost
/// tests: an aggressive first timeout, a small cap, real jitter.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Initial retransmission timeout in ms.
    pub rto_ms: u64,
    /// Upper bound the exponential backoff saturates at, in ms.
    pub rto_max_ms: u64,
    /// Cap on the *effective* retransmit deadline within one
    /// link-epoch (the stretch between reconnect/resync events), in
    /// ms. The doubling state still climbs toward `rto_max_ms` — see
    /// [`SenderLink::current_rto`] — but the armed deadline never
    /// exceeds this, so an overlapping reset window and drop burst
    /// cannot stack multi-second quiet periods: the link keeps probing
    /// at the cap until the epoch sees ack progress.
    pub rto_epoch_cap_ms: u64,
    /// Maximum seeded jitter added to each backed-off timeout, in ms.
    pub jitter_ms: u64,
    /// At most this many frames are retransmitted per timeout firing
    /// (bounds the burst a long outage can trigger).
    pub retransmit_burst: usize,
    /// Bounded outbox horizon: the maximum number of unacknowledged
    /// messages buffered for a peer. Beyond it the link stops masking
    /// and *surfaces* the fault by dropping new messages (counted in
    /// [`SenderLink::overflow_dropped`]) — the peer-down contract.
    pub max_unacked: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rto_ms: 40,
            rto_max_ms: 2_000,
            rto_epoch_cap_ms: 150,
            jitter_ms: 10,
            retransmit_burst: 32,
            max_unacked: 4_096,
        }
    }
}

/// Sending half of a reliable link: sequence assignment, the unacked
/// window, the retransmission timer with exponential backoff + jitter,
/// and reconnect resync.
#[derive(Debug)]
pub struct SenderLink {
    cfg: LinkConfig,
    rng: StdRng,
    next_seq: u64,
    /// Frames sent but not yet cumulatively acknowledged, seq-ascending.
    unacked: VecDeque<Data>,
    /// Deadline (caller-supplied ms clock) of the pending ack timer,
    /// `None` when the window is empty.
    rto_at: Option<u64>,
    /// Current (backed-off) timeout span.
    cur_rto: u64,
    /// Total frames retransmitted on timer or resync.
    pub retransmits: u64,
    /// Messages dropped because the window was full (peer down past
    /// the bounded outbox horizon) — the surfaced fault.
    pub overflow_dropped: u64,
    /// Resyncs performed after a reconnect.
    pub resyncs: u64,
}

impl SenderLink {
    /// A fresh link; `seed` drives the jitter stream (deterministic per
    /// seed, distinct per link when the caller mixes link identity in).
    pub fn new(cfg: LinkConfig, seed: u64) -> SenderLink {
        SenderLink {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            unacked: VecDeque::new(),
            rto_at: None,
            cur_rto: cfg.rto_ms,
            retransmits: 0,
            overflow_dropped: 0,
            resyncs: 0,
        }
    }

    /// Sequence number the next enqueued message will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Unacknowledged frames currently buffered.
    pub fn window_len(&self) -> usize {
        self.unacked.len()
    }

    /// Current backed-off retransmission timeout span in ms (exposed so
    /// tests can pin backoff growth). This is the doubling *state*;
    /// the armed deadline uses [`Self::effective_rto`].
    pub fn current_rto(&self) -> u64 {
        self.cur_rto
    }

    /// The timeout span actually armed: the backed-off state capped by
    /// the per-link-epoch ceiling (`rto_epoch_cap_ms`).
    pub fn effective_rto(&self) -> u64 {
        self.cur_rto.min(self.cfg.rto_epoch_cap_ms)
    }

    /// Deadline (caller-clock ms) of the armed retransmit timer, or
    /// `None` when nothing is outstanding. The poller uses this to arm
    /// its timer wheel.
    pub fn rto_deadline(&self) -> Option<u64> {
        self.rto_at
    }

    /// Accepts one protocol message for transmission. Returns the
    /// framed [`Data`] to put on the wire, or `None` if the peer is
    /// down past the bounded outbox horizon — the caller counts that
    /// as a surfaced drop and moves on.
    pub fn enqueue(&mut self, depth: u64, payload: Vec<u8>, now_ms: u64) -> Option<Data> {
        if self.unacked.len() >= self.cfg.max_unacked {
            self.overflow_dropped += 1;
            return None;
        }
        let frame = Data {
            seq: self.next_seq,
            depth,
            payload,
        };
        self.next_seq += 1;
        if self.unacked.is_empty() {
            // Window was idle: timer restarts from the base timeout.
            self.cur_rto = self.cfg.rto_ms;
            self.rto_at = Some(now_ms + self.effective_rto());
        }
        self.unacked.push_back(frame.clone());
        Some(frame)
    }

    /// Processes a cumulative ack: drops acknowledged frames and, on
    /// progress, resets the backoff (the link is alive again).
    pub fn on_ack(&mut self, cum: u64, now_ms: u64) {
        let mut progressed = false;
        while self.unacked.front().is_some_and(|d| d.seq < cum) {
            self.unacked.pop_front();
            progressed = true;
        }
        if self.unacked.is_empty() {
            self.rto_at = None;
            self.cur_rto = self.cfg.rto_ms;
        } else if progressed {
            self.cur_rto = self.cfg.rto_ms;
            self.rto_at = Some(now_ms + self.effective_rto());
        }
    }

    /// Fires the retransmission timer if due: returns a bounded burst
    /// of frames to retransmit and backs off the timeout (doubling,
    /// saturating at the cap, plus seeded jitter). Returns an empty
    /// vec when the timer has not expired or nothing is outstanding.
    pub fn retransmit_due(&mut self, now_ms: u64) -> Vec<Data> {
        match self.rto_at {
            Some(at) if now_ms >= at && !self.unacked.is_empty() => {
                let burst: Vec<Data> = self
                    .unacked
                    .iter()
                    .take(self.cfg.retransmit_burst)
                    .cloned()
                    .collect();
                self.retransmits += burst.len() as u64;
                self.cur_rto = (self.cur_rto * 2).min(self.cfg.rto_max_ms);
                let jitter = if self.cfg.jitter_ms > 0 {
                    self.rng.gen_range(0..self.cfg.jitter_ms)
                } else {
                    0
                };
                self.rto_at = Some(now_ms + self.effective_rto() + jitter);
                burst
            }
            _ => Vec::new(),
        }
    }

    /// Resynchronizes after a reconnect, given the peer's HELLO-borne
    /// next-expected sequence: acknowledged frames are dropped, and
    /// the still-unseen tail is returned for immediate retransmission.
    pub fn on_resync(&mut self, peer_expected: u64, now_ms: u64) -> Vec<Data> {
        self.resyncs += 1;
        self.on_ack(peer_expected, now_ms);
        let tail: Vec<Data> = self
            .unacked
            .iter()
            .take(self.cfg.retransmit_burst)
            .cloned()
            .collect();
        if !tail.is_empty() {
            self.retransmits += tail.len() as u64;
            self.cur_rto = self.cfg.rto_ms;
            self.rto_at = Some(now_ms + self.effective_rto());
        }
        tail
    }
}

/// Receiving half of a reliable link: in-order delivery, out-of-order
/// stashing, duplicate discard, cumulative ack generation.
#[derive(Debug, Default)]
pub struct ReceiverLink {
    /// Next sequence number to deliver.
    expected: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    stash: BTreeMap<u64, (u64, Vec<u8>)>,
    /// Duplicate DATA frames discarded.
    pub dups: u64,
}

impl ReceiverLink {
    /// A fresh receiver expecting sequence 0.
    pub fn new() -> ReceiverLink {
        ReceiverLink::default()
    }

    /// Next sequence this receiver expects — the cumulative ack value,
    /// and what a HELLO reply advertises for resync.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Processes one DATA frame. Returns the newly deliverable
    /// `(depth, payload)` messages in order (empty for duplicates and
    /// gap-leaving arrivals). The caller acks with [`Self::expected`]
    /// afterwards regardless.
    pub fn on_data(&mut self, frame: Data) -> Vec<(u64, Vec<u8>)> {
        if frame.seq < self.expected || self.stash.contains_key(&frame.seq) {
            self.dups += 1;
            return Vec::new();
        }
        self.stash.insert(frame.seq, (frame.depth, frame.payload));
        let mut out = Vec::new();
        while let Some(msg) = self.stash.remove(&self.expected) {
            out.push(msg);
            self.expected += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig {
            rto_ms: 40,
            rto_max_ms: 2_000,
            rto_epoch_cap_ms: 2_000, // cap out of the way for exact pins
            jitter_ms: 0,            // deterministic timers for exact pins
            retransmit_burst: 32,
            max_unacked: 4,
        }
    }

    fn payload(b: u8) -> Vec<u8> {
        vec![b; 3]
    }

    #[test]
    fn in_order_flow_never_retransmits() {
        let mut tx = SenderLink::new(cfg(), 1);
        let mut rx = ReceiverLink::new();
        for i in 0..3u8 {
            let f = tx.enqueue(1, payload(i), 10).unwrap();
            let delivered = rx.on_data(f);
            assert_eq!(delivered.len(), 1);
            tx.on_ack(rx.expected(), 11);
        }
        assert_eq!(tx.retransmits, 0);
        assert_eq!(tx.window_len(), 0);
        assert_eq!(rx.dups, 0);
        // Timer disarmed: far-future poll retransmits nothing.
        assert!(tx.retransmit_due(1_000_000).is_empty());
    }

    #[test]
    fn lost_frame_is_retransmitted_with_exponential_backoff() {
        let mut tx = SenderLink::new(cfg(), 2);
        let f0 = tx.enqueue(1, payload(0), 0).unwrap();
        // The wire eats f0. Before the timeout: nothing.
        assert!(tx.retransmit_due(39).is_empty());
        // At 40 ms the timer fires, retransmitting f0, and the timeout
        // doubles: 40 -> 80 -> 160 -> 320.
        let r1 = tx.retransmit_due(40);
        assert_eq!(r1, vec![f0.clone()]);
        assert_eq!(tx.current_rto(), 80);
        assert!(tx.retransmit_due(119).is_empty());
        let r2 = tx.retransmit_due(120);
        assert_eq!(r2, vec![f0.clone()]);
        assert_eq!(tx.current_rto(), 160);
        let r3 = tx.retransmit_due(280);
        assert_eq!(r3, vec![f0]);
        assert_eq!(tx.current_rto(), 320);
        assert_eq!(tx.retransmits, 3);
        // An ack finally lands: window empties, backoff resets.
        tx.on_ack(1, 300);
        assert_eq!(tx.window_len(), 0);
        assert_eq!(tx.current_rto(), 40);
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let mut tx = SenderLink::new(cfg(), 3);
        tx.enqueue(1, payload(0), 0).unwrap();
        let mut now = 0;
        for _ in 0..12 {
            now += tx.current_rto();
            tx.retransmit_due(now);
        }
        assert_eq!(tx.current_rto(), 2_000);
    }

    #[test]
    fn epoch_cap_bounds_the_armed_deadline_while_backoff_still_climbs() {
        let mut c = cfg();
        c.rto_epoch_cap_ms = 150;
        let mut tx = SenderLink::new(c, 9);
        tx.enqueue(1, payload(0), 0).unwrap();
        // Fire the timer repeatedly: the doubling state saturates at
        // the big cap, but the armed deadline never drifts more than
        // the epoch cap past "now" — the link keeps probing.
        let mut now = 0;
        for _ in 0..10 {
            now = tx.rto_deadline().unwrap();
            assert!(!tx.retransmit_due(now).is_empty());
            let armed = tx.rto_deadline().unwrap();
            assert!(
                armed - now <= 150,
                "armed span {} exceeds the epoch cap",
                armed - now
            );
        }
        assert_eq!(tx.current_rto(), 2_000, "doubling state still climbs");
        assert_eq!(tx.effective_rto(), 150, "wire deadline stays capped");
        // Ack progress ends the stall: backoff state resets to base.
        tx.on_ack(1, now);
        assert_eq!(tx.current_rto(), 40);
    }

    #[test]
    fn jitter_desynchronizes_timers_but_is_seed_stable() {
        let mk = |seed| {
            let mut c = cfg();
            c.jitter_ms = 10;
            let mut tx = SenderLink::new(c, seed);
            tx.enqueue(1, payload(0), 0).unwrap();
            tx.retransmit_due(40);
            tx.rto_at.unwrap()
        };
        // Same seed, same jittered deadline; the stream is the contract.
        assert_eq!(mk(7), mk(7));
        let deadline = mk(7);
        assert!((120..130).contains(&deadline), "40 + 80 + jitter in [0,10)");
    }

    #[test]
    fn receiver_dedups_and_reorders() {
        let mut tx = SenderLink::new(cfg(), 4);
        let f0 = tx.enqueue(5, payload(0), 0).unwrap();
        let f1 = tx.enqueue(5, payload(1), 0).unwrap();
        let f2 = tx.enqueue(5, payload(2), 0).unwrap();
        let mut rx = ReceiverLink::new();
        // f1 arrives early: stashed, nothing deliverable.
        assert!(rx.on_data(f1.clone()).is_empty());
        assert_eq!(rx.expected(), 0);
        // A duplicate of the stashed frame: counted, still nothing.
        assert!(rx.on_data(f1.clone()).is_empty());
        assert_eq!(rx.dups, 1);
        // f0 fills the gap: both deliver, in order.
        let got = rx.on_data(f0.clone());
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, payload(0));
        assert_eq!(got[1].1, payload(1));
        assert_eq!(rx.expected(), 2);
        // Stale retransmissions of delivered frames are dup-dropped.
        assert!(rx.on_data(f0).is_empty());
        assert!(rx.on_data(f1).is_empty());
        assert_eq!(rx.dups, 3);
        // The tail still flows.
        assert_eq!(rx.on_data(f2).len(), 1);
        assert_eq!(rx.expected(), 3);
    }

    #[test]
    fn bounded_outbox_surfaces_peer_down() {
        let mut tx = SenderLink::new(cfg(), 5);
        for i in 0..4u8 {
            assert!(tx.enqueue(1, payload(i), 0).is_some());
        }
        // Window full (max_unacked = 4): the masking stops.
        assert!(tx.enqueue(1, payload(9), 0).is_none());
        assert!(tx.enqueue(1, payload(9), 0).is_none());
        assert_eq!(tx.overflow_dropped, 2);
        // Sequence numbers were NOT consumed by the drops.
        assert_eq!(tx.next_seq(), 4);
        // Peer comes back: the window drains and sending resumes.
        tx.on_ack(4, 100);
        assert!(tx.enqueue(1, payload(10), 100).is_some());
    }

    #[test]
    fn resync_after_reconnect_retransmits_exactly_the_unseen_tail() {
        let mut tx = SenderLink::new(cfg(), 6);
        let _f0 = tx.enqueue(1, payload(0), 0).unwrap();
        let f1 = tx.enqueue(1, payload(1), 0).unwrap();
        let f2 = tx.enqueue(1, payload(2), 0).unwrap();
        // Connection dies; peer's HELLO on reconnect says expected = 1
        // (it had received f0 before the reset).
        let tail = tx.on_resync(1, 50);
        assert_eq!(tail, vec![f1, f2]);
        assert_eq!(tx.resyncs, 1);
        assert_eq!(tx.retransmits, 2);
        assert_eq!(tx.window_len(), 2);
        // Backoff restarted at base after resync.
        assert_eq!(tx.current_rto(), 40);
    }

    #[test]
    fn ack_of_everything_on_resync_retransmits_nothing() {
        let mut tx = SenderLink::new(cfg(), 7);
        tx.enqueue(1, payload(0), 0).unwrap();
        let tail = tx.on_resync(1, 10);
        assert!(tail.is_empty());
        assert_eq!(tx.retransmits, 0);
        assert!(tx.retransmit_due(1_000_000).is_empty());
    }

    #[test]
    fn retransmit_burst_is_bounded() {
        let mut c = cfg();
        c.max_unacked = 100;
        c.retransmit_burst = 8;
        let mut tx = SenderLink::new(c, 8);
        for i in 0..20 {
            tx.enqueue(1, payload(i as u8), 0).unwrap();
        }
        let burst = tx.retransmit_due(40);
        assert_eq!(burst.len(), 8);
        assert_eq!(burst[0].seq, 0);
        assert_eq!(tx.retransmits, 8);
    }
}
