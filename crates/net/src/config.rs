//! Transport configuration shared by the event-driven runtime and the
//! preserved [`crate::classic`] runtime.

use crate::fault::FaultPlan;
use crate::link::LinkConfig;

/// Transport tuning for a node or a whole runtime.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-link reliability knobs (timeouts, window, burst).
    pub link: LinkConfig,
    /// Fault injection schedule ([`FaultPlan::none`] in production).
    pub faults: FaultPlan,
    /// Seed for the non-fault randomness: retransmit jitter and dial
    /// backoff jitter (mixed with link identity per stream).
    pub seed: u64,
    /// Initial dial/reconnect backoff in ms.
    pub dial_backoff_ms: u64,
    /// Cap for the dial/reconnect exponential backoff in ms.
    pub dial_backoff_max_ms: u64,
    /// Wall-clock safety deadline for a driven run, in ms.
    pub deadline_ms: u64,
    /// Poller pool size for the event-driven runtime; `0` means auto
    /// (`min(4, available cores)`). The classic runtime ignores it.
    pub poller_threads: usize,
}

impl NetConfig {
    /// The poller pool size after resolving the `0 = auto` default.
    pub fn resolved_poller_threads(&self) -> usize {
        if self.poller_threads != 0 {
            return self.poller_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link: LinkConfig::default(),
            faults: FaultPlan::none(),
            seed: 0,
            dial_backoff_ms: 10,
            dial_backoff_max_ms: 500,
            deadline_ms: 30_000,
            poller_threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_threads_resolve_auto_and_explicit() {
        let auto = NetConfig::default();
        let t = auto.resolved_poller_threads();
        assert!((1..=4).contains(&t), "auto pool size {t} out of range");
        let fixed = NetConfig {
            poller_threads: 2,
            ..NetConfig::default()
        };
        assert_eq!(fixed.resolved_poller_threads(), 2);
    }
}
