//! The thread-budget pin: an n-node runtime spends `pool + n` threads
//! regardless of link count or fault pressure, and gives them all back
//! on shutdown.
//!
//! This is the regression test for the classic runtime's reader leak:
//! there, every accepted socket detached a reader thread, every
//! outbound link spent a writer and a dialer, and reset-heavy plans
//! multiplied accepted sockets without bound. The event-driven runtime
//! must stay at exactly the fixed poller pool plus one event thread
//! per node even while a reset-heavy plan churns reconnects — which is
//! precisely when the classic design leaked fastest.
//!
//! Lives in its own integration-test binary on purpose: thread
//! counting via `/proc/self/task` is only meaningful when no sibling
//! test spawns threads in the same process.

use bgla_net::{FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntimeBuilder};
use bgla_simnet::{Context, Process, ProcessId, Transport};
use std::any::Any;

/// Threads in this process right now (Linux: one entry per task).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("/proc/self/task readable")
        .count()
}

/// Broadcasts once, bounces replies a few hops so links stay busy
/// while resets churn them.
struct Chatter {
    hops: u64,
}

impl Process<u64> for Chatter {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        ctx.broadcast(self.hops);
    }
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Context<u64>) {
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn runtime_threads_stay_within_pool_plus_one_per_node() {
    let n = 6;
    let cfg = NetConfig {
        // Reset-heavy: every link dies and redials over and over, so a
        // thread-per-connection design would grow without bound here.
        faults: FaultPlan::new(
            0x7B0D,
            FaultConfig {
                drop_per_mille: 40,
                reset_per_mille: 250,
                ..FaultConfig::default()
            },
        ),
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        seed: 11,
        ..NetConfig::default()
    };

    let base = live_threads();
    let mut rt = TcpRuntimeBuilder::new(cfg)
        .add(Box::new(Chatter { hops: 4 }))
        .add(Box::new(Chatter { hops: 4 }))
        .add(Box::new(Chatter { hops: 4 }))
        .add(Box::new(Chatter { hops: 4 }))
        .add(Box::new(Chatter { hops: 4 }))
        .add(Box::new(Chatter { hops: 4 }))
        .build()
        .expect("bind localhost");
    let budget = rt.poller_threads() + n;

    let out = rt.run_transport(1_000_000);
    assert!(out.quiescent, "reset chaos must still be masked");

    // Peak check *while the system is live*: all sockets are up, the
    // plan has forced reconnect churn, and the count still fits the
    // fixed budget.
    let live = live_threads();
    assert!(
        live <= base + budget,
        "thread budget exceeded: {base} before build, {live} live, \
         budget {budget} (pool {} + {n} event threads)",
        rt.poller_threads(),
    );

    let m = rt.metrics_snapshot();
    assert!(
        m.net_reconnects > 0,
        "the reset plan must actually churn connections"
    );

    // Shutdown gives every thread back.
    rt.shutdown();
    let after = live_threads();
    assert!(
        after <= base,
        "threads leaked across shutdown: {base} before, {after} after"
    );
}
