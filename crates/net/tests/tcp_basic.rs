//! End-to-end checks of the TCP runtime machinery with toy processes:
//! clean-wire delivery, quiescence, metrics, depth propagation, trace
//! recording, and fault-injected runs — all independent of the BGLA
//! protocol layer (which gets its own conformance tests at the
//! workspace root).

use bgla_net::{FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntime, TcpRuntimeBuilder};
use bgla_simnet::{Context, NodeObserver, OpEvent, Process, ProcessId, Transport};
use std::any::Any;

/// Broadcasts one message at start; counts what it hears; replies to
/// pings below a bound so multi-hop causal chains exist.
struct Chatter {
    got: u64,
    max_depth_seen: u64,
    hops: u64,
}

impl Chatter {
    fn new(hops: u64) -> Chatter {
        Chatter {
            got: 0,
            max_depth_seen: 0,
            hops,
        }
    }
}

impl Process<u64> for Chatter {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        ctx.broadcast(self.hops);
    }
    fn on_message(&mut self, from: ProcessId, msg: u64, ctx: &mut Context<u64>) {
        self.got += 1;
        self.max_depth_seen = self.max_depth_seen.max(ctx.depth);
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn build(n: usize, hops: u64, cfg: NetConfig) -> TcpRuntime<u64> {
    let mut b = TcpRuntimeBuilder::new(cfg);
    for _ in 0..n {
        b = b.add(Box::new(Chatter::new(hops)));
    }
    b.build().expect("bind localhost")
}

fn chatter_got(rt: &TcpRuntime<u64>, p: ProcessId) -> u64 {
    let mut got = 0;
    rt.with_process(p, &mut |proc_| {
        got = proc_.as_any().downcast_ref::<Chatter>().unwrap().got;
    });
    got
}

#[test]
fn clean_wire_delivers_everything_and_quiesces() {
    let n = 4;
    let mut rt = build(n, 0, NetConfig::default());
    let out = rt.run_transport(100_000);
    assert!(out.quiescent, "clean 4-node run must quiesce");
    // Every node broadcast one message to all n: n*n deliveries.
    assert_eq!(out.delivered, (n * n) as u64);
    let total: u64 = (0..n).map(|p| chatter_got(&rt, p)).sum();
    assert_eq!(total, (n * n) as u64);

    let m = rt.metrics_snapshot();
    assert_eq!(m.total_sent(), (n * n) as u64);
    assert_eq!(m.delivered, (n * n) as u64);
    // Real frames hit the wire: n*(n-1) DATA minimum, plus ACKs and
    // HELLOs; measured bytes include framing overhead.
    assert!(m.net_frames as usize >= n * (n - 1));
    assert!(m.net_frame_bytes > m.net_frames * 24);
    // A clean wire needs no masking.
    assert_eq!(m.net_retransmits, 0);
    assert_eq!(m.net_reconnects, 0);
    assert_eq!(m.net_outbox_dropped, 0);
    rt.shutdown();
}

#[test]
fn causal_depth_propagates_like_the_simulator() {
    // Ping-pong chains of 3 hops: the longest single chain is
    // broadcast (depth 1) + 3 bounces = 4, so the deepest observed
    // clock is at least 4. It may exceed 4 — a node's clock is the max
    // over *everything* it observed, and under real concurrency
    // independent chains interleave and compound (exactly as in the
    // simulator when a scheduler interleaves them) — but it can never
    // exceed one unit per delivery performed.
    let n = 2;
    let mut rt = build(n, 3, NetConfig::default());
    let out = rt.run_transport(100_000);
    assert!(out.quiescent);
    let mut max_depth = 0;
    for p in 0..n {
        rt.with_process(p, &mut |proc_| {
            let c = proc_.as_any().downcast_ref::<Chatter>().unwrap();
            max_depth = max_depth.max(c.max_depth_seen);
        });
    }
    assert!(
        (4..=out.delivered).contains(&max_depth),
        "depth {max_depth}"
    );
    rt.shutdown();
}

#[test]
fn run_until_all_stops_at_the_milestone() {
    let n = 3;
    let mut rt = build(n, 0, NetConfig::default());
    let (_, sat) = rt.run_until_all(100_000, &mut |_, proc_| {
        proc_.as_any().downcast_ref::<Chatter>().unwrap().got >= 1
    });
    assert!(sat, "every node hears at least one broadcast");
    rt.shutdown();
}

#[test]
fn chaos_wire_masks_faults_and_still_delivers_everything() {
    let n = 4;
    let hops = 2;
    let cfg = NetConfig {
        faults: FaultPlan::new(0xB61A, FaultConfig::chaos()),
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        seed: 7,
        ..NetConfig::default()
    };
    let mut rt = build(n, hops, cfg);
    let out = rt.run_transport(1_000_000);
    assert!(
        out.quiescent,
        "fault masking must reconstruct reliable links (delivered {})",
        out.delivered
    );
    // Reliable-link semantics: exactly the same delivery count as a
    // clean wire — n broadcasts + per-pair bounce chains.
    let expected = (n * n) as u64 + (n * n) as u64 * hops;
    assert_eq!(out.delivered, expected);

    let m = rt.metrics_snapshot();
    // The chaos profile (8% drop, 6% dup, 6% delay, 1.5% reset, one
    // partition window per link) must exercise the masking paths.
    assert!(m.net_retransmits > 0, "drops must force retransmissions");
    assert!(m.net_dup_frames > 0, "dups/retransmits must hit dedup");
    assert!(
        m.net_outbox_dropped == 0,
        "no peer is down: nothing surfaced"
    );
    rt.shutdown();
}

#[test]
fn mid_frame_resets_force_reconnects() {
    let n = 3;
    // Reset-heavy profile: reconnect/resync is the dominant path.
    let cfg = NetConfig {
        faults: FaultPlan::new(
            0x5EED,
            FaultConfig {
                reset_per_mille: 300,
                ..FaultConfig::default()
            },
        ),
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        ..NetConfig::default()
    };
    let mut rt = build(n, 3, cfg);
    let out = rt.run_transport(1_000_000);
    assert!(out.quiescent, "resets must be masked");
    let m = rt.metrics_snapshot();
    assert!(m.net_reconnects > 0, "30% resets must force reconnects");
    assert!(m.net_retransmits > 0, "torn frames must be retransmitted");
    rt.shutdown();
}

#[test]
fn observer_logs_merge_into_a_dense_causal_trace() {
    let n = 3;
    let mut b = TcpRuntimeBuilder::new(NetConfig::default());
    for _ in 0..n {
        // Observer: one "heard" op per delivery processed.
        let mut last = 0u64;
        let obs: NodeObserver<u64> = Box::new(move |proc_, out| {
            let c = proc_.as_any().downcast_ref::<Chatter>().unwrap();
            while last < c.got {
                last += 1;
                out.push(OpEvent {
                    step: 0,
                    process: 0, // filled by nothing; process set below
                    kind: "heard",
                    ts: last,
                    values: vec![last],
                });
            }
        });
        b = b.add_observed(Box::new(Chatter::new(1)), obs);
    }
    let mut rt = b.build().expect("bind localhost");
    let out = rt.run_transport(100_000);
    assert!(out.quiescent);
    let delivered = out.delivered;
    let trace = rt.take_trace(|_| 0);
    // Every delivery appears, densely stepped, depth-monotone.
    assert_eq!(trace.events().len() as u64, delivered);
    for (i, ev) in trace.events().iter().enumerate() {
        assert_eq!(ev.step, i as u64);
        if i > 0 {
            assert!(ev.depth >= trace.events()[i - 1].depth);
        }
    }
    // One "heard" op per delivery, each stepped after its parent.
    assert_eq!(trace.ops().len() as u64, delivered);
}
