//! Versioned, checksummed, length-prefixed binary codec.
//!
//! This is the serialization substrate for everything the BGLA stack
//! persists or ships: durable process snapshots (crash recovery), the
//! interned proof store, and — by design — the wire transport the
//! ROADMAP networking item needs. It is deliberately tiny and
//! dependency-free: a [`Writer`]/[`Reader`] pair over little-endian
//! integers, a [`Wire`] trait with impls for the std building blocks,
//! and a self-describing *frame* wrapper.
//!
//! # Frame format
//!
//! ```text
//! +-------+---------+--------+---------+-----------+----------+
//! | magic | version |  kind  |   len   |  payload  | checksum |
//! | BGLA  |   u16   |  u16   |   u64   | len bytes |   u64    |
//! +-------+---------+--------+---------+-----------+----------+
//! ```
//!
//! All integers are little-endian. `kind` is a caller-defined tag
//! (snapshot type, message type) checked on decode so a WTS snapshot
//! can never be misread as an SbS one. `checksum` is FNV-1a-64 over
//! every preceding byte (magic through payload): it detects disk and
//! wire *corruption* — truncation, bit flips, torn writes — not
//! adversarial tampering, which the protocol layer handles with real
//! signatures. Decoding rejects trailing bytes, non-canonical
//! encodings (unsorted sets, non-minimal tags) and anything the target
//! type's invariants refuse, so `decode(encode(x)) == x` and every
//! accepted byte string has exactly one meaning.
//!
//! # Canonicality
//!
//! Ordered collections encode in their natural order and decoding
//! enforces *strictly* ascending keys: an encoding with duplicated or
//! shuffled elements is rejected as [`CodecError::Invalid`] rather
//! than silently re-canonicalized. This keeps the encoding injective,
//! which the content-addressed proof store relies on.

use std::fmt;

/// Current frame format version. Bump on any incompatible layout
/// change; decoders reject other versions as [`CodecError::BadVersion`].
pub const FRAME_VERSION: u16 = 1;

/// The 4-byte frame magic.
pub const FRAME_MAGIC: [u8; 4] = *b"BGLA";

/// Fixed frame overhead: magic + version + kind + len + checksum.
pub const FRAME_OVERHEAD: usize = 4 + 2 + 2 + 8 + 8;

/// Why a decode was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the encoding did.
    Truncated,
    /// Frame does not start with `BGLA`.
    BadMagic,
    /// Frame version is not [`FRAME_VERSION`].
    BadVersion(u16),
    /// Frame kind tag differs from the expected one.
    BadKind {
        /// Tag the caller asked for.
        expected: u16,
        /// Tag found in the frame header.
        found: u16,
    },
    /// Frame length field disagrees with the actual byte count.
    BadLength,
    /// FNV-1a-64 checksum mismatch (bit flip / torn write).
    BadChecksum,
    /// A structurally valid read produced a value the target type
    /// rejects (bad enum tag, unsorted set, invalid UTF-8…).
    Invalid(&'static str),
    /// Decoding finished with unconsumed input left over.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported frame version {v} (expected {FRAME_VERSION})"
                )
            }
            CodecError::BadKind { expected, found } => {
                write!(f, "frame kind mismatch: expected {expected}, found {found}")
            }
            CodecError::BadLength => write!(f, "frame length field inconsistent"),
            CodecError::BadChecksum => write!(f, "checksum mismatch (corrupt frame)"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the frame checksum. Not cryptographic; the
/// threat here is corruption, not forgery.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends raw bytes (no length prefix — callers add their own).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Consumes the next `N` bytes as a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        self.bytes(N)?.try_into().map_err(|_| CodecError::Truncated)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        self.array().map(|[b]| b)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a collection length and sanity-checks it against the
    /// remaining input (every element costs at least one byte), so a
    /// corrupted length can't trigger a pathological allocation.
    pub fn seq_len(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Succeeds only when every input byte was consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Binary serialization to/from the BGLA codec.
///
/// `decode` must accept exactly the strings `encode` produces and
/// reject everything else (wrong tags, unsorted collections, trailing
/// garbage is rejected by the framing helpers).
pub trait Wire: Sized {
    /// Appends the encoding of `self`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a bare (unframed) payload.
pub fn encode_payload<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a bare payload, requiring full consumption.
pub fn decode_payload<T: Wire>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

/// Encodes `value` inside a versioned, checksummed frame tagged `kind`.
pub fn encode_frame<T: Wire>(kind: u16, value: &T) -> Vec<u8> {
    let payload = encode_payload(value);
    let mut w = Writer::new();
    w.bytes(&FRAME_MAGIC);
    w.u16(FRAME_VERSION);
    w.u16(kind);
    w.u64(payload.len() as u64);
    w.bytes(&payload);
    let sum = fnv1a64(&w.buf);
    w.u64(sum);
    w.into_bytes()
}

/// Validates a frame's envelope (magic, version, length, checksum)
/// and returns its kind tag without touching the payload. This is
/// what a snapshot store runs at load time to detect corruption
/// before anything is deserialized.
pub fn verify_frame(bytes: &[u8]) -> Result<u16, CodecError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(CodecError::Truncated);
    }
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != FRAME_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = r.u16()?;
    let len = r.u64()?;
    let body = bytes.len() - FRAME_OVERHEAD;
    if len != body as u64 {
        // Distinguish "file cut short" from "length field nonsense".
        return if len > body as u64 {
            Err(CodecError::Truncated)
        } else {
            Err(CodecError::BadLength)
        };
    }
    let split = bytes.len().checked_sub(8).ok_or(CodecError::Truncated)?;
    let mut tail = Reader::new(bytes.get(split..).ok_or(CodecError::Truncated)?);
    let sum = tail.u64()?;
    if fnv1a64(bytes.get(..split).ok_or(CodecError::Truncated)?) != sum {
        return Err(CodecError::BadChecksum);
    }
    Ok(kind)
}

/// Decodes a frame produced by [`encode_frame`], checking magic,
/// version, kind tag, length, and checksum before deserializing.
pub fn decode_frame<T: Wire>(kind: u16, bytes: &[u8]) -> Result<T, CodecError> {
    let found = verify_frame(bytes)?;
    if found != kind {
        return Err(CodecError::BadKind {
            expected: kind,
            found,
        });
    }
    let end = bytes.len().checked_sub(8).ok_or(CodecError::Truncated)?;
    decode_payload(bytes.get(16..end).ok_or(CodecError::Truncated)?)
}

macro_rules! wire_int {
    ($t:ty, $put:ident, $get:ident) => {
        impl Wire for $t {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    };
}

wire_int!(u8, u8, u8);
wire_int!(u16, u16, u16);
wire_int!(u32, u32, u32);
wire_int!(u64, u64, u64);
wire_int!(usize, usize, usize);

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let raw = r.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Invalid("utf-8"))
    }
}

impl<const N: usize> Wire for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.array()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Wire + Ord> Wire for std::collections::BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut out = std::collections::BTreeSet::new();
        let mut prev: Option<T> = None;
        for _ in 0..n {
            let item = T::decode(r)?;
            if let Some(p) = prev.take() {
                if p >= item {
                    return Err(CodecError::Invalid("set not strictly ascending"));
                }
                out.insert(p);
            }
            prev = Some(item);
        }
        if let Some(p) = prev {
            out.insert(p);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord + Clone, V: Wire> Wire for std::collections::BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut out = std::collections::BTreeMap::new();
        let mut prev: Option<K> = None;
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if let Some(p) = &prev {
                if *p >= k {
                    return Err(CodecError::Invalid("map keys not strictly ascending"));
                }
            }
            prev = Some(k.clone());
            out.insert(k, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        0xABu8.encode(&mut w);
        0x1234u16.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        0x0102_0304_0506_0708u64.encode(&mut w);
        true.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::decode(&mut r).unwrap(), 0x1234);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x0102_0304_0506_0708);
        assert!(bool::decode(&mut r).unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn composite_roundtrips() {
        let v: Vec<Option<(u64, String)>> = vec![
            Some((7, "seven".to_string())),
            None,
            Some((0, String::new())),
        ];
        assert_eq!(
            decode_payload::<Vec<Option<(u64, String)>>>(&encode_payload(&v)).unwrap(),
            v
        );
        let set: BTreeSet<u64> = [5, 1, 3].into_iter().collect();
        assert_eq!(
            decode_payload::<BTreeSet<u64>>(&encode_payload(&set)).unwrap(),
            set
        );
        let map: BTreeMap<(usize, u64), Vec<u32>> = [((1, 2), vec![3, 4]), ((1, 3), vec![])]
            .into_iter()
            .collect();
        assert_eq!(
            decode_payload::<BTreeMap<(usize, u64), Vec<u32>>>(&encode_payload(&map)).unwrap(),
            map
        );
    }

    #[test]
    fn non_canonical_collections_rejected() {
        // Hand-build [2, 1] and [1, 1] as "sets": both must be refused.
        for pair in [[2u64, 1u64], [1, 1]] {
            let mut w = Writer::new();
            w.usize(2);
            w.u64(pair[0]);
            w.u64(pair[1]);
            let bytes = w.into_bytes();
            assert_eq!(
                decode_payload::<BTreeSet<u64>>(&bytes),
                Err(CodecError::Invalid("set not strictly ascending"))
            );
        }
        let mut w = Writer::new();
        w.usize(2);
        w.u64(9);
        w.u8(1);
        w.u64(3);
        w.u8(2);
        let bytes = w.into_bytes();
        assert_eq!(
            decode_payload::<BTreeMap<u64, u8>>(&bytes),
            Err(CodecError::Invalid("map keys not strictly ascending"))
        );
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            decode_payload::<bool>(&[2]),
            Err(CodecError::Invalid("bool tag"))
        );
        assert_eq!(
            decode_payload::<Option<u8>>(&[7, 0]),
            Err(CodecError::Invalid("option tag"))
        );
    }

    #[test]
    fn absurd_length_is_truncation_not_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        assert_eq!(
            decode_payload::<Vec<u64>>(&w.into_bytes()),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn frame_roundtrip_and_kind_check() {
        let value: Vec<u64> = vec![1, 2, 3];
        let frame = encode_frame(42, &value);
        assert_eq!(verify_frame(&frame).unwrap(), 42);
        assert_eq!(decode_frame::<Vec<u64>>(42, &frame).unwrap(), value);
        assert_eq!(
            decode_frame::<Vec<u64>>(41, &frame),
            Err(CodecError::BadKind {
                expected: 41,
                found: 42
            })
        );
    }

    #[test]
    fn every_truncation_of_a_frame_is_rejected() {
        let frame = encode_frame(7, &vec![10u64, 20, 30]);
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<Vec<u64>>(7, &frame[..cut]).is_err(),
                "prefix of len {cut} accepted"
            );
        }
    }

    #[test]
    fn every_bitflip_of_a_frame_is_rejected() {
        let frame = encode_frame(7, &vec![10u64, 20, 30]);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_frame::<Vec<u64>>(7, &bad).is_err(),
                    "flip at byte {i} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_payload(&7u64);
        bytes.push(0);
        assert_eq!(
            decode_payload::<u64>(&bytes),
            Err(CodecError::TrailingBytes)
        );
    }
}
