//! Executable forms of the six RSM properties (Section 7.1).

use crate::client::{OpResult, WorkloadClient};
use crate::cmd::Cmd;
use bgla_core::ValueSet;
use std::fmt;

/// An RSM property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmViolation {
    /// A client never finished its script.
    NotLive {
        /// The unfinished client's id.
        client: u64,
    },
    /// Two reads (possibly on different clients) returned incomparable
    /// values.
    ReadInconsistent,
    /// A later read of one client returned less than an earlier one.
    ReadNotMonotone {
        /// The client that observed the shrink.
        client: u64,
    },
    /// An update that completed before a read is missing from the read's
    /// value.
    UpdateInvisible {
        /// The client whose update went missing.
        client: u64,
    },
    /// Update Stability broken: a read contains `u2` but not `u1` even
    /// though `u1` completed before `u2` was triggered.
    UpdateUnstable,
}

impl fmt::Display for RsmViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsmViolation::NotLive { client } => write!(f, "client {client} did not finish"),
            RsmViolation::ReadInconsistent => write!(f, "two reads are incomparable"),
            RsmViolation::ReadNotMonotone { client } => {
                write!(f, "client {client} observed a shrinking read")
            }
            RsmViolation::UpdateInvisible { client } => {
                write!(
                    f,
                    "client {client}: completed update missing from later read"
                )
            }
            RsmViolation::UpdateUnstable => write!(f, "update stability violated"),
        }
    }
}

impl std::error::Error for RsmViolation {}

/// **Liveness**: every client finished its script.
pub fn check_liveness(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    for c in clients {
        if !c.finished() {
            return Err(RsmViolation::NotLive {
                client: c.client_id,
            });
        }
    }
    Ok(())
}

/// **Read Consistency**: any two read values (across all clients) are
/// comparable.
pub fn check_read_consistency(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    let reads: Vec<ValueSet<Cmd>> = clients.iter().flat_map(|c| c.reads()).collect();
    for i in 0..reads.len() {
        for j in (i + 1)..reads.len() {
            if !reads[i].is_subset(&reads[j]) && !reads[j].is_subset(&reads[i]) {
                return Err(RsmViolation::ReadInconsistent);
            }
        }
    }
    Ok(())
}

/// **Read Monotonicity**: per client, later reads contain earlier reads
/// (sequential clients: completion precedes the next trigger).
pub fn check_read_monotonicity(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    for c in clients {
        let reads = c.reads();
        for w in reads.windows(2) {
            if !w[0].is_subset(&w[1]) {
                return Err(RsmViolation::ReadNotMonotone {
                    client: c.client_id,
                });
            }
        }
    }
    Ok(())
}

/// **Update Visibility**: within one sequential client, every update
/// completed before a read appears in that read's value.
pub fn check_update_visibility(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    for c in clients {
        let mut completed: Vec<Cmd> = Vec::new();
        for r in &c.results {
            match r {
                OpResult::Updated(cmd) => completed.push(cmd.clone()),
                OpResult::ReadValue(v) => {
                    if completed.iter().any(|u| !v.contains(u)) {
                        return Err(RsmViolation::UpdateInvisible {
                            client: c.client_id,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// **Update Stability**: if `u1` completed before `u2` was triggered
/// (sequential client ⇒ earlier in `results`), then any read containing
/// `u2` also contains `u1`. Checked across all clients' reads.
pub fn check_update_stability(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    // Per client, the completion order of its own updates.
    for c in clients {
        let updates: Vec<Cmd> = c
            .results
            .iter()
            .filter_map(|r| match r {
                OpResult::Updated(u) => Some(u.clone()),
                _ => None,
            })
            .collect();
        for reader in clients {
            for read in reader.reads() {
                for k in 1..updates.len() {
                    if read.contains(&updates[k]) && !read.contains(&updates[k - 1]) {
                        return Err(RsmViolation::UpdateUnstable);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs the whole battery (Read Validity is enforced structurally: a
/// read value comes from a confirmed, quorum-committed decision — see
/// `Replica`'s confirmation plug-in).
pub fn check_all(clients: &[&WorkloadClient]) -> Result<(), RsmViolation> {
    check_liveness(clients)?;
    check_read_consistency(clients)?;
    check_read_monotonicity(clients)?;
    check_update_visibility(clients)?;
    check_update_stability(clients)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientOp;
    use crate::cmd::Op;

    fn mk_client(id: u64, results: Vec<OpResult>) -> WorkloadClient {
        let mut c = WorkloadClient::new(id, 4, 1, vec![]);
        c.results = results;
        c
    }

    #[test]
    fn monotonicity_detects_shrink() {
        let r1: ValueSet<Cmd> = [Cmd::new(1, 0, Op::Add(1))].into_iter().collect();
        let r0 = ValueSet::new();
        let good = mk_client(
            1,
            vec![
                OpResult::ReadValue(r0.clone()),
                OpResult::ReadValue(r1.clone()),
            ],
        );
        assert!(check_read_monotonicity(&[&good]).is_ok());
        let bad = mk_client(1, vec![OpResult::ReadValue(r1), OpResult::ReadValue(r0)]);
        assert!(check_read_monotonicity(&[&bad]).is_err());
    }

    #[test]
    fn visibility_detects_missing_update() {
        let u = Cmd::new(1, 0, Op::Add(1));
        let bad = mk_client(
            1,
            vec![OpResult::Updated(u), OpResult::ReadValue(ValueSet::new())],
        );
        assert!(check_update_visibility(&[&bad]).is_err());
    }

    #[test]
    fn stability_detects_reordering() {
        let u1 = Cmd::new(1, 0, Op::Add(1));
        let u2 = Cmd::new(1, 1, Op::Add(2));
        let writer = mk_client(
            1,
            vec![OpResult::Updated(u1.clone()), OpResult::Updated(u2.clone())],
        );
        // A read that sees u2 but not u1: unstable.
        let read: ValueSet<Cmd> = [u2].into_iter().collect();
        let reader = mk_client(2, vec![OpResult::ReadValue(read)]);
        assert!(check_update_stability(&[&writer, &reader]).is_err());
    }

    #[test]
    fn liveness_requires_finished_scripts() {
        let unfinished = WorkloadClient::new(1, 4, 1, vec![ClientOp::Read]);
        assert!(check_liveness(&[&unfinished]).is_err());
    }
}
