//! The RSM replica: a GWTS participant plus the client-facing interface
//! and the confirmation plug-in of Algorithm 7.

use crate::cmd::Cmd;
use bgla_core::gwts::{GwtsMsg, GwtsProcess};
use bgla_core::{SystemConfig, ValueSet};
use bgla_simnet::{Context, Process, ProcessId, WireMessage};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// Messages of the replicated state machine deployment: GWTS traffic
/// among replicas plus the client protocol.
#[derive(Debug, Clone)]
pub enum RsmMsg {
    /// Replica ↔ replica: the agreement substrate.
    Gwts(GwtsMsg<Cmd>),
    /// Client → replica: submit a command (Alg. 5 line 3 / Alg. 6
    /// line 3).
    NewValue(Cmd),
    /// Replica → client: a decision containing one of the client's
    /// pending commands (`<decide, Accepted_set, replica>`).
    Decide(ValueSet<Cmd>),
    /// Client → replica: confirm that a set was decided (Alg. 6 line 8).
    CnfReq(ValueSet<Cmd>),
    /// Replica → client: confirmation (Alg. 7 line 5).
    CnfRep(ValueSet<Cmd>),
}

impl WireMessage for RsmMsg {
    fn kind(&self) -> &'static str {
        match self {
            RsmMsg::Gwts(g) => g.kind(),
            RsmMsg::NewValue(_) => "new_value",
            RsmMsg::Decide(_) => "decide",
            RsmMsg::CnfReq(_) => "cnf_req",
            RsmMsg::CnfRep(_) => "cnf_rep",
        }
    }
    fn wire_size(&self) -> usize {
        match self {
            RsmMsg::Gwts(g) => g.wire_size(),
            RsmMsg::NewValue(c) => bgla_core::Value::wire_size(c),
            RsmMsg::Decide(s) | RsmMsg::CnfReq(s) | RsmMsg::CnfRep(s) => 8 + s.wire_size(),
        }
    }
}

/// A correct replica.
///
/// Wraps a [`GwtsProcess`] over commands. The replica's id must be in
/// `0..n_replicas`; clients occupy higher simulation ids. All GWTS
/// traffic stays within the replica id range.
pub struct Replica {
    /// Agreement engine.
    pub inner: GwtsProcess<Cmd>,
    n_replicas: usize,
    me: ProcessId,
    /// Commands whose deciding clients still await notification:
    /// command -> clients.
    pending_notify: BTreeMap<Cmd, BTreeSet<ProcessId>>,
    /// Confirmation requests not yet satisfiable (Alg. 7's
    /// `Pending_conf`).
    pending_conf: Vec<(ProcessId, ValueSet<Cmd>)>,
    /// How many inner decisions have been broadcast to clients already.
    notified_upto: usize,
    /// Command validity filter (Lemma 12: garbage from Byzantine clients
    /// is discarded because it "is not an element of the lattice").
    validator: fn(&Cmd) -> bool,
}

impl Replica {
    /// Creates replica `me` of `n_replicas` tolerating `f`, running
    /// `max_rounds` GWTS rounds.
    pub fn new(me: ProcessId, config: SystemConfig, max_rounds: u64) -> Replica {
        Replica {
            inner: GwtsProcess::new(me, config, BTreeMap::new(), max_rounds),
            n_replicas: config.n,
            me,
            pending_notify: BTreeMap::new(),
            pending_conf: Vec::new(),
            notified_upto: 0,
            validator: |_| true,
        }
    }

    /// Installs a command validity predicate.
    pub fn with_validator(mut self, v: fn(&Cmd) -> bool) -> Self {
        self.validator = v;
        self
    }

    /// Forwards an event to the inner GWTS process and remaps its outbox.
    fn run_inner<F>(&mut self, ctx: &mut Context<RsmMsg>, f: F)
    where
        F: FnOnce(&mut GwtsProcess<Cmd>, &mut Context<GwtsMsg<Cmd>>),
    {
        let mut inner_ctx =
            Context::for_embedding(self.me, self.n_replicas, ctx.depth, ctx.local_events);
        f(&mut self.inner, &mut inner_ctx);
        for (to, msg) in inner_ctx.take_outbox() {
            ctx.send(to, RsmMsg::Gwts(msg));
        }
        self.after_inner(ctx);
    }

    /// Post-event hook: notify clients of fresh decisions, answer
    /// pending confirmations.
    fn after_inner(&mut self, ctx: &mut Context<RsmMsg>) {
        // Fresh decisions -> notify clients whose commands were included.
        while self.notified_upto < self.inner.decisions.len() {
            // bgla-lint: allow(byzantine-panic, "while condition bounds notified_upto")
            let decision = self.inner.decisions[self.notified_upto].clone();
            self.notified_upto += 1;
            let satisfied: Vec<Cmd> = self
                .pending_notify
                .keys()
                .filter(|c| decision.contains(c))
                .cloned()
                .collect();
            for cmd in satisfied {
                if let Some(clients) = self.pending_notify.remove(&cmd) {
                    for client in clients {
                        ctx.send(client, RsmMsg::Decide(decision.clone()));
                    }
                }
            }
        }
        // Alg. 7: confirm sets that the public ack history proves
        // committed.
        let mut i = 0;
        while i < self.pending_conf.len() {
            // bgla-lint: allow(byzantine-panic, "while condition bounds i")
            let (client, set) = self.pending_conf[i].clone();
            if self.inner.has_committed(&set) {
                ctx.send(client, RsmMsg::CnfRep(set));
                self.pending_conf.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl Process<RsmMsg> for Replica {
    fn on_start(&mut self, ctx: &mut Context<RsmMsg>) {
        self.run_inner(ctx, |inner, ictx| inner.on_start(ictx));
    }

    fn on_message(&mut self, from: ProcessId, msg: RsmMsg, ctx: &mut Context<RsmMsg>) {
        match msg {
            RsmMsg::Gwts(g) => {
                // Only replicas speak GWTS; ignore client forgeries.
                if from < self.n_replicas {
                    self.run_inner(ctx, |inner, ictx| inner.on_message(from, g, ictx));
                }
            }
            RsmMsg::NewValue(cmd) => {
                if !(self.validator)(&cmd) {
                    return; // not an element of the lattice: discard
                }
                // If already decided, answer immediately; else submit and
                // subscribe the client.
                if let Some(d) = self
                    .inner
                    .decisions
                    .iter()
                    .find(|d| d.contains(&cmd))
                    .cloned()
                {
                    ctx.send(from, RsmMsg::Decide(d));
                    return;
                }
                self.pending_notify
                    .entry(cmd.clone())
                    .or_default()
                    .insert(from);
                self.inner.new_value(cmd);
                self.after_inner(ctx);
            }
            RsmMsg::CnfReq(set) => {
                self.pending_conf.push((from, set));
                self.after_inner(ctx);
            }
            // Replies are for clients; a replica receiving them (e.g.
            // from a confused/Byzantine peer) ignores them.
            RsmMsg::Decide(_) | RsmMsg::CnfRep(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_core::gwts::GwtsState;

    #[test]
    fn replica_rejects_invalid_commands() {
        let config = SystemConfig::new(4, 1);
        let mut r = Replica::new(0, config, 4).with_validator(|c| c.client < 100);
        let mut ctx = Context::for_embedding(0, 6, 0, 0);
        let bad = Cmd::new(500, 0, crate::cmd::Op::Add(1));
        r.on_message(5, RsmMsg::NewValue(bad), &mut ctx);
        assert!(r.pending_notify.is_empty());
        assert!(r.inner.all_inputs.is_empty());
    }

    #[test]
    fn replica_subscribes_clients() {
        let config = SystemConfig::new(4, 1);
        let mut r = Replica::new(0, config, 4);
        let mut ctx = Context::for_embedding(0, 6, 0, 0);
        let cmd = Cmd::new(1, 0, crate::cmd::Op::Add(1));
        r.on_message(5, RsmMsg::NewValue(cmd.clone()), &mut ctx);
        assert!(r.pending_notify.contains_key(&cmd));
        assert_eq!(r.inner.all_inputs, vec![cmd]);
        assert_eq!(r.inner.state(), GwtsState::Disclosing);
    }

    #[test]
    fn gwts_from_client_ids_is_ignored() {
        let config = SystemConfig::new(4, 1);
        let mut r = Replica::new(0, config, 4);
        let mut ctx = Context::for_embedding(0, 6, 0, 0);
        // A Byzantine client (id 5 >= n_replicas) tries to inject GWTS
        // traffic; the replica must not process it.
        let forged = GwtsMsg::Nack {
            accepted: ValueSet::new(),
            ts: 0,
            round: 0,
        };
        r.on_message(5, RsmMsg::Gwts(forged), &mut ctx);
        assert_eq!(ctx.pending(), 0);
    }
}
