//! Byzantine-tolerant Replicated State Machine with commutative updates
//! (Section 7 of Di Luna, Anceaume, Querzoni, 2019).
//!
//! The construction applies Generalized Lattice Agreement to the power
//! set of update commands: replicas run GWTS over commands; an `update`
//! submits a command to `f + 1` replicas and completes once `f + 1`
//! replicas report a decision containing it; a `read` is an update of a
//! unique `nop` followed by a *confirmation* round proving the returned
//! set was really decided (Algorithms 5–7).
//!
//! Guarantees (Theorem 6): liveness, read validity, read consistency,
//! read monotonicity, update stability, update visibility — all
//! wait-free and linearizable for commutative updates, with up to
//! `f ≤ (n−1)/3` Byzantine replicas and **any number of Byzantine
//! clients** (Lemma 12).
//!
//! * [`cmd`] — the command algebra (unique, tagged commands; `nop`s).
//! * [`replica`] — GWTS replica + client interface + confirmation
//!   plug-in.
//! * [`client`] — honest clients ([`client::WorkloadClient`]) and
//!   Byzantine ones.
//! * [`checks`] — executable versions of the six RSM properties.
//! * [`state`] — commutative state machines (counter, set registry)
//!   folding decided command sets into application state.
#![warn(missing_docs)]
// Thresholds are written exactly as in the paper (`f + 1`, `2f + 1`,
// `⌊(n+f)/2⌋ + 1`); clippy's `x > y` rewrite would obscure the quorum math.
#![allow(clippy::int_plus_one)]

pub mod checks;
pub mod client;
pub mod cmd;
pub mod replica;
pub mod state;

pub use client::{ClientOp, WorkloadClient};
pub use cmd::{Cmd, Op};
pub use replica::{Replica, RsmMsg};
pub use state::CounterState;
