//! The command algebra.
//!
//! Commands must be *unique* (paper: "which can be easily done by
//! tagging it with the identifier of the client and a sequence number")
//! and commutative under set union. Reads are implemented as unique
//! `nop` commands that modify the replicated set like any command but
//! have no effect when the state is executed.

use bgla_codec::{CodecError, Reader, Wire, Writer};
use bgla_core::Value;
use bgla_crypto::ToBytes;

/// The operation payload of a command.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Add an amount to the replicated counter.
    Add(u64),
    /// Insert a string into the replicated grow-only set.
    Put(String),
    /// No effect on execution; used by reads (`nop_{c,r}` in Alg. 6).
    Nop,
}

/// A uniquely tagged command.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cmd {
    /// Issuing client id.
    pub client: u64,
    /// Per-client sequence number (uniqueness tag).
    pub seq: u64,
    /// The operation.
    pub op: Op,
}

impl Cmd {
    /// An application command.
    pub fn new(client: u64, seq: u64, op: Op) -> Cmd {
        Cmd { client, seq, op }
    }

    /// The unique `nop` for read `seq` of `client`.
    pub fn nop(client: u64, seq: u64) -> Cmd {
        Cmd {
            client,
            seq,
            op: Op::Nop,
        }
    }

    /// Whether this is a read marker.
    pub fn is_nop(&self) -> bool {
        matches!(self.op, Op::Nop)
    }
}

impl Value for Cmd {
    fn wire_size(&self) -> usize {
        16 + match &self.op {
            Op::Add(_) => 9,
            Op::Put(s) => 9 + s.len(),
            Op::Nop => 1,
        }
    }
}

impl Wire for Cmd {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.client);
        w.u64(self.seq);
        match &self.op {
            Op::Add(x) => {
                w.u8(0);
                w.u64(*x);
            }
            Op::Put(s) => {
                w.u8(1);
                s.encode(w);
            }
            Op::Nop => w.u8(2),
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let client = r.u64()?;
        let seq = r.u64()?;
        let op = match r.u8()? {
            0 => Op::Add(r.u64()?),
            1 => Op::Put(String::decode(r)?),
            2 => Op::Nop,
            _ => return Err(CodecError::Invalid("unknown Op tag")),
        };
        Ok(Cmd { client, seq, op })
    }
}

impl ToBytes for Cmd {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.client.write_bytes(out);
        self.seq.write_bytes(out);
        match &self.op {
            Op::Add(x) => {
                out.push(0);
                x.write_bytes(out);
            }
            Op::Put(s) => {
                out.push(1);
                s.write_bytes(out);
            }
            Op::Nop => out.push(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_unique_by_tag() {
        let a = Cmd::new(1, 0, Op::Add(5));
        let b = Cmd::new(1, 1, Op::Add(5));
        assert_ne!(a, b);
    }

    #[test]
    fn nops_are_detectable() {
        assert!(Cmd::nop(1, 2).is_nop());
        assert!(!Cmd::new(1, 2, Op::Add(0)).is_nop());
    }

    #[test]
    fn encoding_is_injective_across_ops() {
        let a = Cmd::new(1, 0, Op::Add(2)).to_bytes_vec();
        let b = Cmd::new(1, 0, Op::Put("2".into())).to_bytes_vec();
        let c = Cmd::nop(1, 0).to_bytes_vec();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
