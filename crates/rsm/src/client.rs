//! RSM clients: the Update and Read procedures of Algorithms 5 and 6,
//! plus Byzantine client behaviors for Lemma 12's robustness claims.

use crate::cmd::{Cmd, Op};
use crate::replica::RsmMsg;
use bgla_core::ValueSet;
use bgla_simnet::{Context, Process, ProcessId};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// One step of a client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// `update(op)`: completes when `f + 1` replicas report decisions
    /// containing the command.
    Update(Op),
    /// `read()`: a nop update followed by the confirmation round;
    /// returns the confirmed command set.
    Read,
}

/// What a finished operation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Update acknowledged.
    Updated(Cmd),
    /// Read returned this (confirmed) command set.
    ReadValue(ValueSet<Cmd>),
}

/// Phase of the in-flight operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Waiting for f+1 decide messages containing `cmd`.
    AwaitDecides {
        cmd: Cmd,
        is_read: bool,
        decides: BTreeMap<ProcessId, ValueSet<Cmd>>,
    },
    /// Read confirmation: waiting for f+1 CnfRep for any candidate set.
    AwaitConfirm {
        confirms: BTreeMap<ValueSet<Cmd>, BTreeSet<ProcessId>>,
    },
    Done,
}

/// An honest sequential client: runs `script` one operation at a time,
/// starting each op only after the previous completed (the orderings the
/// RSM properties quantify over).
pub struct WorkloadClient {
    /// Client id used in command tags.
    pub client_id: u64,
    n_replicas: usize,
    f: usize,
    script: Vec<ClientOp>,
    next_op: usize,
    seq: u64,
    phase: Phase,
    /// Completed operations, in issue order.
    pub results: Vec<OpResult>,
}

impl WorkloadClient {
    /// New client. `client_id` should be unique across clients.
    pub fn new(client_id: u64, n_replicas: usize, f: usize, script: Vec<ClientOp>) -> Self {
        WorkloadClient {
            client_id,
            n_replicas,
            f,
            script,
            next_op: 0,
            seq: 0,
            phase: Phase::Idle,
            results: Vec::new(),
        }
    }

    /// Read results observed so far, in completion order.
    pub fn reads(&self) -> Vec<ValueSet<Cmd>> {
        self.results
            .iter()
            .filter_map(|r| match r {
                OpResult::ReadValue(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    /// Whether the whole script completed.
    pub fn finished(&self) -> bool {
        self.next_op >= self.script.len() && matches!(self.phase, Phase::Idle | Phase::Done)
    }

    fn submit_next(&mut self, ctx: &mut Context<RsmMsg>) {
        if self.next_op >= self.script.len() {
            self.phase = Phase::Done;
            return;
        }
        // bgla-lint: allow(byzantine-panic, "next_op < script.len() checked above")
        let op = self.script[self.next_op].clone();
        self.next_op += 1;
        let (cmd, is_read) = match op {
            ClientOp::Update(op) => (Cmd::new(self.client_id, self.seq, op), false),
            ClientOp::Read => (Cmd::nop(self.client_id, self.seq), true),
        };
        self.seq += 1;
        // Alg. 5 line 3: any subset of f+1 replicas suffices.
        ctx.multicast(0..self.f + 1, RsmMsg::NewValue(cmd.clone()));
        self.phase = Phase::AwaitDecides {
            cmd,
            is_read,
            decides: BTreeMap::new(),
        };
    }
}

impl Process<RsmMsg> for WorkloadClient {
    fn on_start(&mut self, ctx: &mut Context<RsmMsg>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: RsmMsg, ctx: &mut Context<RsmMsg>) {
        if from >= self.n_replicas {
            return; // only replicas talk to clients
        }
        match (&mut self.phase, msg) {
            (
                Phase::AwaitDecides {
                    cmd,
                    is_read,
                    decides,
                },
                RsmMsg::Decide(set),
            ) => {
                if !set.contains(cmd) {
                    return;
                }
                decides.insert(from, set);
                if decides.len() >= self.f + 1 {
                    if *is_read {
                        // Alg. 6: ask all replicas to confirm each of the
                        // f+1 candidate decision values.
                        let candidates: BTreeSet<ValueSet<Cmd>> =
                            decides.values().cloned().collect();
                        for c in &candidates {
                            ctx.multicast(0..self.n_replicas, RsmMsg::CnfReq(c.clone()));
                        }
                        self.phase = Phase::AwaitConfirm {
                            confirms: BTreeMap::new(),
                        };
                    } else {
                        self.results.push(OpResult::Updated(cmd.clone()));
                        self.phase = Phase::Idle;
                        self.submit_next(ctx);
                    }
                }
            }
            (Phase::AwaitConfirm { confirms }, RsmMsg::CnfRep(set)) => {
                let entry = confirms.entry(set.clone()).or_default();
                entry.insert(from);
                if entry.len() >= self.f + 1 {
                    // First set confirmed by f+1 replicas is returned;
                    // execution strips the nops.
                    let value: ValueSet<Cmd> =
                        set.iter().filter(|c| !c.is_nop()).cloned().collect();
                    self.results.push(OpResult::ReadValue(value));
                    self.phase = Phase::Idle;
                    self.submit_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Byzantine client: submits a command to only **one** replica instead of
/// `f + 1` (Lemma 12: a single correct replica receiving it suffices for
/// it to be decided — or, if that replica is Byzantine, the command may
/// be lost, which only hurts the misbehaving client).
pub struct StingyClient {
    /// Tag used in its commands.
    pub client_id: u64,
    /// The single replica contacted.
    pub target: ProcessId,
    /// The operation submitted.
    pub op: Op,
}

impl Process<RsmMsg> for StingyClient {
    fn on_start(&mut self, ctx: &mut Context<RsmMsg>) {
        ctx.send(
            self.target,
            RsmMsg::NewValue(Cmd::new(self.client_id, 0, self.op.clone())),
        );
    }
    fn on_message(&mut self, _f: ProcessId, _m: RsmMsg, _c: &mut Context<RsmMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Byzantine client: floods updates without waiting for completion
/// ("invokes a sequence of updates without waiting" — handled as
/// concurrent operations).
pub struct PipeliningClient {
    /// Tag used in its commands.
    pub client_id: u64,
    /// Number of replicas (to address the fan-out).
    pub n_replicas: usize,
    /// `f` bound.
    pub f: usize,
    /// How many updates to blast at once.
    pub burst: u64,
}

impl Process<RsmMsg> for PipeliningClient {
    fn on_start(&mut self, ctx: &mut Context<RsmMsg>) {
        for seq in 0..self.burst {
            let cmd = Cmd::new(self.client_id, seq, Op::Add(1));
            ctx.multicast(0..self.f + 1, RsmMsg::NewValue(cmd));
        }
    }
    fn on_message(&mut self, _f: ProcessId, _m: RsmMsg, _c: &mut Context<RsmMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Byzantine client: submits garbage commands (rejected by the replica
/// validator) and forged GWTS traffic (ignored: wrong id range).
pub struct GarbageClient {
    /// Tag used in its commands.
    pub client_id: u64,
    /// Number of replicas.
    pub n_replicas: usize,
}

impl Process<RsmMsg> for GarbageClient {
    fn on_start(&mut self, ctx: &mut Context<RsmMsg>) {
        // A command the validator rejects (validator in tests rejects
        // client ids >= 1000).
        let garbage = Cmd::new(1000 + self.client_id, 0, Op::Add(u64::MAX));
        ctx.multicast(0..self.n_replicas, RsmMsg::NewValue(garbage));
        // Forged agreement traffic.
        ctx.multicast(
            0..self.n_replicas,
            RsmMsg::Gwts(bgla_core::gwts::GwtsMsg::Nack {
                accepted: ValueSet::new(),
                ts: 999,
                round: 999,
            }),
        );
    }
    fn on_message(&mut self, _f: ProcessId, _m: RsmMsg, _c: &mut Context<RsmMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}
