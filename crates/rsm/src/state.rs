//! Commutative state machines: folding a decided command set into
//! application state. Because updates commute, the fold order is
//! irrelevant — exactly the property the RSM construction needs.

use crate::cmd::{Cmd, Op};
use std::collections::BTreeSet;

#[allow(unused_imports)]
use bgla_core::ValueSet;

/// The paper's motivating example: a dependable counter with `add` and
/// `read` (Section 1), extended with a grow-only string set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterState {
    /// Sum of all `Add` amounts.
    pub total: u64,
    /// All `Put` strings.
    pub entries: BTreeSet<String>,
    /// Number of commands applied (nops excluded).
    pub applied: usize,
}

impl CounterState {
    /// Executes a decided command set. `execute` in Algorithm 6: clients
    /// run this locally on the returned set (any set representation —
    /// `ValueSet`, `BTreeSet` — iterates commands).
    pub fn execute<'a, I: IntoIterator<Item = &'a Cmd>>(cmds: I) -> CounterState {
        let mut st = CounterState::default();
        for c in cmds {
            match &c.op {
                Op::Add(x) => {
                    st.total += x;
                    st.applied += 1;
                }
                Op::Put(s) => {
                    st.entries.insert(s.clone());
                    st.applied += 1;
                }
                Op::Nop => {}
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_ignores_nops() {
        let cmds: BTreeSet<Cmd> = [
            Cmd::new(1, 0, Op::Add(3)),
            Cmd::nop(1, 1),
            Cmd::new(2, 0, Op::Add(4)),
            Cmd::new(2, 1, Op::Put("x".into())),
        ]
        .into_iter()
        .collect();
        let st = CounterState::execute(&cmds);
        assert_eq!(st.total, 7);
        assert_eq!(st.applied, 3);
        assert!(st.entries.contains("x"));
    }

    #[test]
    fn execution_is_monotone_in_the_set() {
        let small: BTreeSet<Cmd> = [Cmd::new(1, 0, Op::Add(3))].into_iter().collect();
        let mut big = small.clone();
        big.insert(Cmd::new(1, 1, Op::Add(5)));
        assert!(CounterState::execute(&small).total <= CounterState::execute(&big).total);
    }

    #[test]
    fn duplicate_free_by_uniqueness() {
        // The same (client, seq) command inserted twice is one set
        // element: updates are applied exactly once.
        let mut set = BTreeSet::new();
        set.insert(Cmd::new(1, 0, Op::Add(3)));
        set.insert(Cmd::new(1, 0, Op::Add(3)));
        assert_eq!(CounterState::execute(&set).total, 3);
    }
}
