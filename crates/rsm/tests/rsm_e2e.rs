//! End-to-end RSM runs: replicas + clients co-simulated, all six
//! properties checked, with and without Byzantine replicas and clients.

use bgla_core::SystemConfig;
use bgla_rsm::checks;
use bgla_rsm::client::{GarbageClient, PipeliningClient, StingyClient};
use bgla_rsm::{ClientOp, Cmd, CounterState, Op, Replica, RsmMsg, WorkloadClient};
use bgla_simnet::{
    FifoScheduler, Process, RandomScheduler, Scheduler, Simulation, SimulationBuilder,
};

const MAX_ROUNDS: u64 = 40;

/// Builds a sim with `n` replicas (`f` tolerance) and the given clients.
fn rsm_sim(
    n: usize,
    f: usize,
    clients: Vec<Box<dyn Process<RsmMsg>>>,
    scheduler: Box<dyn Scheduler>,
) -> Simulation<RsmMsg> {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(
            Replica::new(i, config, MAX_ROUNDS).with_validator(|c| c.client < 1000),
        ));
    }
    for c in clients {
        b = b.add(c);
    }
    b.build()
}

fn workload(id: u64, n: usize, f: usize, script: Vec<ClientOp>) -> Box<dyn Process<RsmMsg>> {
    Box::new(WorkloadClient::new(id, n, f, script))
}

fn clients_of(sim: &Simulation<RsmMsg>, ids: &[usize]) -> Vec<WorkloadClient> {
    ids.iter()
        .map(|&i| {
            let c = sim.process_as::<WorkloadClient>(i).unwrap();
            // Clone the observable pieces into a fresh client for the
            // checkers (WorkloadClient has no Clone; rebuild).
            let mut copy = WorkloadClient::new(c.client_id, 0, 0, vec![]);
            copy.results = c.results.clone();
            copy
        })
        .collect()
}

#[test]
fn single_client_update_read() {
    let (n, f) = (4, 1);
    let script = vec![
        ClientOp::Update(Op::Add(5)),
        ClientOp::Read,
        ClientOp::Update(Op::Add(7)),
        ClientOp::Read,
    ];
    let mut sim = rsm_sim(
        n,
        f,
        vec![workload(1, n, f, script)],
        Box::new(FifoScheduler::new()),
    );
    sim.run(20_000_000);
    let client = sim.process_as::<WorkloadClient>(4).unwrap();
    assert!(
        client.finished(),
        "client did not finish: {:?}",
        client.results
    );
    let reads = client.reads();
    assert_eq!(reads.len(), 2);
    // First read sees the first add; second read sees both.
    assert_eq!(CounterState::execute(&reads[0]).total, 5);
    assert_eq!(CounterState::execute(&reads[1]).total, 12);
}

#[test]
fn multiple_clients_all_properties_hold() {
    for seed in 0..5 {
        let (n, f) = (4, 1);
        let scripts = vec![
            vec![
                ClientOp::Update(Op::Add(1)),
                ClientOp::Read,
                ClientOp::Update(Op::Add(2)),
                ClientOp::Read,
            ],
            vec![
                ClientOp::Update(Op::Put("a".into())),
                ClientOp::Read,
                ClientOp::Read,
            ],
            vec![
                ClientOp::Read,
                ClientOp::Update(Op::Add(10)),
                ClientOp::Read,
            ],
        ];
        let clients: Vec<Box<dyn Process<RsmMsg>>> = scripts
            .into_iter()
            .enumerate()
            .map(|(k, s)| workload(k as u64 + 1, n, f, s))
            .collect();
        let mut sim = rsm_sim(n, f, clients, Box::new(RandomScheduler::new(seed)));
        sim.run(50_000_000);
        let snapshot = clients_of(&sim, &[4, 5, 6]);
        let refs: Vec<&WorkloadClient> = snapshot.iter().collect();
        checks::check_all(&refs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn byzantine_replica_does_not_break_clients() {
    // Replica 3 is silent (crashed from the start).
    for seed in 0..3 {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..3 {
            b = b.add(Box::new(Replica::new(i, config, MAX_ROUNDS)));
        }
        // Byzantine replica: drops everything.
        struct DeadReplica;
        impl Process<RsmMsg> for DeadReplica {
            fn on_message(&mut self, _f: usize, _m: RsmMsg, _c: &mut bgla_simnet::Context<RsmMsg>) {
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        b = b.add(Box::new(DeadReplica));
        // Clients contact replicas 0..f+1 = 0..2 (correct ones here).
        b = b.add(workload(
            1,
            n,
            f,
            vec![ClientOp::Update(Op::Add(3)), ClientOp::Read],
        ));
        b = b.add(workload(2, n, f, vec![ClientOp::Read]));
        let mut sim = b.build();
        sim.run(50_000_000);
        let snapshot = clients_of(&sim, &[4, 5]);
        let refs: Vec<&WorkloadClient> = snapshot.iter().collect();
        checks::check_all(&refs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let c1 = &snapshot[0];
        let last_read = c1.reads().pop().unwrap();
        assert_eq!(CounterState::execute(&last_read).total, 3);
    }
}

#[test]
fn byzantine_clients_cannot_corrupt_state() {
    let (n, f) = (4, 1);
    let clients: Vec<Box<dyn Process<RsmMsg>>> = vec![
        workload(1, n, f, vec![ClientOp::Update(Op::Add(5)), ClientOp::Read]),
        Box::new(GarbageClient {
            client_id: 50,
            n_replicas: n,
        }),
        Box::new(StingyClient {
            client_id: 60,
            target: 0,
            op: Op::Add(100),
        }),
        Box::new(PipeliningClient {
            client_id: 70,
            n_replicas: n,
            f,
            burst: 3,
        }),
    ];
    let mut sim = rsm_sim(n, f, clients, Box::new(FifoScheduler::new()));
    sim.run(50_000_000);
    let honest = sim.process_as::<WorkloadClient>(4).unwrap();
    assert!(honest.finished());
    let read = honest.reads().pop().unwrap();
    let st = CounterState::execute(&read);
    // Garbage rejected: the u64::MAX add never lands.
    assert!(read.iter().all(|c: &Cmd| c.client < 1000));
    // Honest value present.
    assert!(st.total >= 5);
    // Stingy client's command went to one *correct* replica: it is
    // eventually decided (may or may not be in this read's snapshot);
    // pipelined commands are treated as concurrent updates. Neither can
    // exceed the legal sum.
    assert!(st.total <= 5 + 100 + 3);
}

#[test]
fn reads_reflect_quorum_confirmed_decisions_only() {
    // Read Validity, structurally: whatever a read returns must be a
    // set the replicas' public ack history committed. We verify via the
    // replicas themselves after quiescence.
    let (n, f) = (4, 1);
    let script = vec![ClientOp::Update(Op::Add(9)), ClientOp::Read];
    let mut sim = rsm_sim(
        n,
        f,
        vec![workload(1, n, f, script)],
        Box::new(FifoScheduler::new()),
    );
    sim.run(20_000_000);
    let client = sim.process_as::<WorkloadClient>(4).unwrap();
    let read_with_nops: bgla_core::ValueSet<Cmd> = {
        // Reconstruct: the client strips nops; ask replicas for a
        // committed superset instead.
        client.reads().pop().unwrap()
    };
    let mut confirmed = false;
    for i in 0..n {
        let r = sim.process_as::<Replica>(i).unwrap();
        if r.inner
            .decisions
            .iter()
            .any(|d| read_with_nops.iter().all(|c| d.contains(c)))
        {
            confirmed = true;
        }
    }
    assert!(
        confirmed,
        "read value not contained in any replica decision"
    );
}
