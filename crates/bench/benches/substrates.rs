//! Criterion benches for the substrates: the from-scratch crypto stack,
//! the reliable broadcast engine, and lattice operations.

use bgla_crypto::{hmac_sha512, sha512, Keypair};
use bgla_lattice::{JoinSemiLattice, SetLattice};
use bgla_rbcast::{RbMsg, RbcastEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sha512(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha512");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha512(d))
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 256];
    c.bench_function("hmac_sha512_256B", |b| {
        b.iter(|| hmac_sha512(b"key", &data))
    });
}

fn bench_ed25519(c: &mut Criterion) {
    let kp = Keypair::for_process(0);
    let msg = b"benchmark message for ed25519";
    let sig = kp.sign(msg);
    c.bench_function("ed25519_sign", |b| b.iter(|| kp.sign(msg)));
    c.bench_function("ed25519_verify", |b| {
        b.iter(|| assert!(kp.public.verify(msg, &sig)))
    });
    c.bench_function("ed25519_keygen", |b| {
        b.iter(|| Keypair::from_seed([7u8; 32]).public)
    });
}

fn bench_ed25519_batch(c: &mut Criterion) {
    use bgla_crypto::ed25519::verify_batch;
    let items: Vec<(bgla_crypto::PublicKey, Vec<u8>, bgla_crypto::Signature)> = (0..16)
        .map(|i| {
            let kp = Keypair::for_process(i);
            let msg = format!("batch item {i}").into_bytes();
            let sig = kp.sign(&msg);
            (kp.public, msg, sig)
        })
        .collect();
    let refs: Vec<(bgla_crypto::PublicKey, &[u8], bgla_crypto::Signature)> = items
        .iter()
        .map(|(p, m, s)| (*p, m.as_slice(), *s))
        .collect();
    c.bench_function("ed25519_verify_16_individually", |b| {
        b.iter(|| refs.iter().all(|(p, m, s)| p.verify(m, s)))
    });
    c.bench_function("ed25519_verify_16_batched", |b| {
        b.iter(|| verify_batch(&refs, 42))
    });
}

fn bench_rbcast(c: &mut Criterion) {
    // Cost of driving one full broadcast instance through every
    // process's engine (message handling only, no network).
    let mut g = c.benchmark_group("rbcast_instance");
    for n in [4usize, 10, 31] {
        let f = (n - 1) / 3;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engines: Vec<RbcastEngine<u64>> =
                    (0..n).map(|_| RbcastEngine::new(n, f)).collect();
                let mut queue: Vec<(usize, RbMsg<u64>)> = Vec::new();
                for m in engines[0].broadcast(0, 42) {
                    for _to in 0..n {
                        queue.push((0, m.clone()));
                    }
                }
                let mut delivered = 0usize;
                let mut idx = 0;
                // Round-robin the queue through all engines.
                while idx < queue.len() {
                    let (from, msg) = queue[idx].clone();
                    idx += 1;
                    for (me, e) in engines.iter_mut().enumerate() {
                        let _ = me;
                        let (out, dels) = e.on_message(from, msg.clone());
                        delivered += dels.len();
                        for m in out {
                            queue.push((me, m));
                            if queue.len() > 100_000 {
                                break;
                            }
                        }
                    }
                }
                delivered
            })
        });
    }
    g.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let a: SetLattice<u64> = SetLattice::from_iter(0..1000);
    let b_: SetLattice<u64> = SetLattice::from_iter(500..1500);
    c.bench_function("set_lattice_join_1k", |bch| {
        bch.iter(|| a.joined(&b_).len())
    });
    c.bench_function("set_lattice_leq_1k", |bch| bch.iter(|| a.leq(&b_)));
}

criterion_group!(
    benches,
    bench_sha512,
    bench_hmac,
    bench_ed25519,
    bench_ed25519_batch,
    bench_rbcast,
    bench_lattice
);
criterion_main!(benches);
