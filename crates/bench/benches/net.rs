//! Loopback TCP runtime benches: frame codec throughput, full WTS
//! agreement latency over real localhost sockets (clean and under the
//! chaos fault profile), and the **measured-vs-modeled bytes table**.
//!
//! Timed cases (group `net`):
//!
//! * `frame_roundtrip/{payload}` — `encode_frame` + `demux_frame` of a
//!   DATA frame (`throughput_bytes` = the full frame size);
//! * `wts_agreement/clean` — build a 4-node WTS system on loopback TCP
//!   and run it to quiescence;
//! * `wts_agreement/chaos` — the same run under the seeded chaos fault
//!   profile (drops, duplicates, reorders, mid-frame resets, a healing
//!   partition), so the cost of masking is visible next to the clean
//!   baseline.
//!
//! The `net_bytes` group is not a timing measurement: each entry's
//! `throughput_bytes` carries one cell of the bytes table —
//! `modeled/...` is the protocol-level metering (payload bytes the
//! simulator would charge for the same run), `measured/...` is every
//! byte actually written to a socket (framing, acks, handshakes,
//! retransmissions). The gap between them is the price of the real
//! wire; under faults it widens with retransmits and reconnect
//! handshakes. The bench panics if a run fails to quiesce, if a
//! decision violates the LA spec, or if measured bytes ever undercut
//! modeled bytes (framing alone makes that impossible in a sane run).
//!
//! The `net_sweep` group is the scale experiment: every algorithm
//! (WTS, SbS, GWTS, GSbS) run honestly to quiescence on loopback,
//! each row's `throughput_bytes` carrying the measured wire bytes of
//! that run — how the real-wire cost of agreement grows with system
//! size, per algorithm, in one table. WTS climbs the full ladder
//! n ∈ {4, 8, 16, 32, 48}; the signature and streaming algorithms
//! stop at n = 16 (the cap is printed, not silent): their wire bytes
//! grow ≳ n³ — O(n²) messages each shipping O(n)-signature proofs —
//! so sbs/16 already moves ~280 MB through loopback and n = 32 cannot
//! finish inside any reasonable deadline on a small box.
//!
//! `NET_BENCH_SMOKE=1` shrinks sample counts and truncates the sweep;
//! the committed `BENCH_net.json` baseline is produced by a full run
//! (`CRITERION_JSON=BENCH_net.json cargo bench -p bgla-bench --bench
//! net`).

use bgla_codec::encode_frame;
use bgla_core::gsbs::GsbsProcess;
use bgla_core::gwts::GwtsProcess;
use bgla_core::harness::{assert_la_spec, wts_report};
use bgla_core::sbs::SbsProcess;
use bgla_core::wts::WtsProcess;
use bgla_core::SystemConfig;
use bgla_net::{Data, FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntimeBuilder, FK_DATA};
use bgla_simnet::{Metrics, Transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::{BTreeMap, BTreeSet};

const N: usize = 4;
const F: usize = 1;
const BUDGET: u64 = 1_000_000;

fn net_cfg(faulty: bool) -> NetConfig {
    NetConfig {
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        faults: if faulty {
            FaultPlan::new(0xBE7C, FaultConfig::chaos())
        } else {
            FaultPlan::none()
        },
        seed: 0x7CB,
        ..NetConfig::default()
    }
}

/// Builds a 4-node WTS system on loopback, runs it to quiescence,
/// checks the LA spec, and returns the merged metrics.
fn wts_run(faulty: bool) -> Metrics {
    let config = SystemConfig::new(N, F);
    let mut b = TcpRuntimeBuilder::new(net_cfg(faulty));
    for i in 0..N {
        b = b.add(Box::new(WtsProcess::<u64>::new(i, config, 100 + i as u64)));
    }
    let mut rt = b.build().expect("bind localhost");
    let out = rt.run_transport(BUDGET);
    assert!(out.quiescent, "loopback WTS run must quiesce");
    let correct: Vec<usize> = (0..N).collect();
    let report = wts_report::<u64>(&rt, &correct);
    let inputs: BTreeSet<u64> = (0..N).map(|i| 100 + i as u64).collect();
    assert_la_spec(&report, &inputs, F);
    rt.metrics_snapshot()
}

fn bench_net(c: &mut Criterion) {
    let smoke = std::env::var("NET_BENCH_SMOKE").is_ok();

    let mut g = c.benchmark_group("net");

    // Agreement cases first: a group throughput declaration sticks for
    // the rest of the group, and these rows should carry none.
    g.sample_size(if smoke { 2 } else { 10 });
    g.bench_with_input(BenchmarkId::new("wts_agreement", "clean"), &(), |b, _| {
        b.iter(|| wts_run(false))
    });
    g.bench_with_input(BenchmarkId::new("wts_agreement", "chaos"), &(), |b, _| {
        b.iter(|| wts_run(true))
    });

    let payload = vec![0xA5u8; 256];
    let frame = encode_frame(
        FK_DATA,
        &Data {
            seq: 7,
            depth: 3,
            payload: payload.clone(),
        },
    );
    g.sample_size(if smoke { 10 } else { 60 });
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("frame_roundtrip", payload.len()),
        &(),
        |b, _| {
            b.iter(|| {
                let bytes = encode_frame(
                    FK_DATA,
                    &Data {
                        seq: 7,
                        depth: 3,
                        payload: payload.clone(),
                    },
                );
                bgla_net::demux_frame(&bytes).expect("roundtrip")
            })
        },
    );
    g.finish();

    // The bytes table: one representative run per profile, exported as
    // `throughput_bytes` so the committed JSON carries the cells.
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>6} {:>6}",
        "profile", "modeled_bytes", "measured_bytes", "retrans", "dups", "reconn"
    );
    let mut tbl = c.benchmark_group("net_bytes");
    tbl.sample_size(2);
    for (label, faulty) in [("clean", false), ("chaos", true)] {
        let m = wts_run(faulty);
        let modeled = m.total_bytes();
        let measured = m.net_frame_bytes;
        assert!(
            measured > modeled,
            "{label}: measured wire bytes ({measured}) must exceed modeled \
             protocol bytes ({modeled}) — framing overhead alone guarantees it"
        );
        println!(
            "{label:<10} {modeled:>14} {measured:>14} {:>8} {:>6} {:>6}",
            m.net_retransmits, m.net_dup_frames, m.net_reconnects
        );
        tbl.throughput(Throughput::Bytes(modeled));
        tbl.bench_with_input(BenchmarkId::new("modeled", label), &(), |b, _| b.iter(|| 0));
        tbl.throughput(Throughput::Bytes(measured));
        tbl.bench_with_input(BenchmarkId::new("measured", label), &(), |b, _| {
            b.iter(|| 0)
        });
    }
    tbl.finish();

    // The scale sweep: measured wire bytes per algorithm per system
    // size, honest runs on one poller pool. Per-algorithm ladders: the
    // sizes are capped where the algorithm's traffic growth makes a
    // single run exceed minutes of wall clock, and the cap is printed
    // so no one mistakes a short ladder for full coverage.
    let full: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 16, 32, 48] };
    let heavy: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 16] };
    println!();
    if !smoke {
        println!(
            "net_sweep: sbs/gwts/gsbs ladders stop at n = 16 — their wire \
             bytes grow ≳ n³ (O(n²) messages × O(n)-signature proofs), so \
             n = 32 cannot finish in a bounded run; wts carries 32 and 48"
        );
    }
    println!(
        "{:<6} {:>4} {:>14} {:>14} {:>10}",
        "algo", "n", "modeled_bytes", "measured_bytes", "delivered"
    );
    let mut sweep = c.benchmark_group("net_sweep");
    sweep.sample_size(2);
    for (algo, sizes, run) in [
        ("wts", full, sweep_wts as fn(usize) -> Metrics),
        ("sbs", heavy, sweep_sbs),
        ("gwts", heavy, sweep_gwts),
        ("gsbs", heavy, sweep_gsbs),
    ] {
        for &n in sizes {
            let m = run(n);
            let modeled = m.total_bytes();
            let measured = m.net_frame_bytes;
            assert!(
                measured > modeled,
                "{algo}/{n}: measured bytes must exceed modeled bytes"
            );
            println!(
                "{algo:<6} {n:>4} {modeled:>14} {measured:>14} {:>10}",
                m.delivered
            );
            sweep.throughput(Throughput::Bytes(measured));
            sweep.bench_with_input(BenchmarkId::new(algo, n), &(), |b, _| b.iter(|| 0));
        }
    }
    sweep.finish();
}

/// Clean transport config for a sweep run at system size `n`.
fn sweep_cfg(n: usize) -> NetConfig {
    NetConfig {
        seed: 0x57EE ^ n as u64,
        deadline_ms: 120_000,
        ..NetConfig::default()
    }
}

/// Largest f with n > 3f.
fn sweep_f(n: usize) -> usize {
    (n - 1) / 3
}

fn sweep_wts(n: usize) -> Metrics {
    let config = SystemConfig::new(n, sweep_f(n));
    let mut b = TcpRuntimeBuilder::new(sweep_cfg(n));
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::<u64>::new(i, config, 100 + i as u64)));
    }
    let mut rt = b.build().expect("bind localhost");
    assert!(rt.run_transport(BUDGET).quiescent, "wts/{n} must quiesce");
    for i in 0..n {
        rt.with_process(i, &mut |p| {
            let w = p.as_any().downcast_ref::<WtsProcess<u64>>().unwrap();
            assert!(w.decision.is_some(), "wts/{n}: node {i} did not decide");
        });
    }
    rt.metrics_snapshot()
}

fn sweep_sbs(n: usize) -> Metrics {
    let config = SystemConfig::new(n, sweep_f(n));
    let mut b = TcpRuntimeBuilder::new(sweep_cfg(n));
    for i in 0..n {
        b = b.add(Box::new(SbsProcess::<u64>::new(i, config, 100 + i as u64)));
    }
    let mut rt = b.build().expect("bind localhost");
    assert!(rt.run_transport(BUDGET).quiescent, "sbs/{n} must quiesce");
    for i in 0..n {
        rt.with_process(i, &mut |p| {
            let s = p.as_any().downcast_ref::<SbsProcess<u64>>().unwrap();
            assert!(s.decision.is_some(), "sbs/{n}: node {i} did not decide");
        });
    }
    rt.metrics_snapshot()
}

/// One round of inputs, two drain rounds — the streaming shape the
/// conformance suite uses, scaled by n.
fn sweep_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut schedule = BTreeMap::new();
    schedule.insert(0, vec![100 + i as u64]);
    schedule
}

fn sweep_gwts(n: usize) -> Metrics {
    let config = SystemConfig::new(n, sweep_f(n));
    let mut b = TcpRuntimeBuilder::new(sweep_cfg(n));
    for i in 0..n {
        b = b.add(Box::new(GwtsProcess::<u64>::new(
            i,
            config,
            sweep_schedule(i),
            3,
        )));
    }
    let mut rt = b.build().expect("bind localhost");
    assert!(rt.run_transport(BUDGET).quiescent, "gwts/{n} must quiesce");
    for i in 0..n {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GwtsProcess<u64>>().unwrap();
            assert!(
                !g.decisions.is_empty(),
                "gwts/{n}: node {i} never decided a round"
            );
        });
    }
    rt.metrics_snapshot()
}

fn sweep_gsbs(n: usize) -> Metrics {
    let config = SystemConfig::new(n, sweep_f(n));
    let mut b = TcpRuntimeBuilder::new(sweep_cfg(n));
    for i in 0..n {
        b = b.add(Box::new(GsbsProcess::<u64>::new(
            i,
            config,
            sweep_schedule(i),
            3,
        )));
    }
    let mut rt = b.build().expect("bind localhost");
    assert!(rt.run_transport(BUDGET).quiescent, "gsbs/{n} must quiesce");
    for i in 0..n {
        rt.with_process(i, &mut |p| {
            let g = p.as_any().downcast_ref::<GsbsProcess<u64>>().unwrap();
            assert!(
                !g.decisions.is_empty(),
                "gsbs/{n}: node {i} never decided a round"
            );
        });
    }
    rt.metrics_snapshot()
}

criterion_group!(net, bench_net);
criterion_main!(net);
