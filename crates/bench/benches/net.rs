//! Loopback TCP runtime benches: frame codec throughput, full WTS
//! agreement latency over real localhost sockets (clean and under the
//! chaos fault profile), and the **measured-vs-modeled bytes table**.
//!
//! Timed cases (group `net`):
//!
//! * `frame_roundtrip/{payload}` — `encode_frame` + `demux_frame` of a
//!   DATA frame (`throughput_bytes` = the full frame size);
//! * `wts_agreement/clean` — build a 4-node WTS system on loopback TCP
//!   and run it to quiescence;
//! * `wts_agreement/chaos` — the same run under the seeded chaos fault
//!   profile (drops, duplicates, reorders, mid-frame resets, a healing
//!   partition), so the cost of masking is visible next to the clean
//!   baseline.
//!
//! The `net_bytes` group is not a timing measurement: each entry's
//! `throughput_bytes` carries one cell of the bytes table —
//! `modeled/...` is the protocol-level metering (payload bytes the
//! simulator would charge for the same run), `measured/...` is every
//! byte actually written to a socket (framing, acks, handshakes,
//! retransmissions). The gap between them is the price of the real
//! wire; under faults it widens with retransmits and reconnect
//! handshakes. The bench panics if a run fails to quiesce, if a
//! decision violates the LA spec, or if measured bytes ever undercut
//! modeled bytes (framing alone makes that impossible in a sane run).
//!
//! `NET_BENCH_SMOKE=1` shrinks sample counts; the committed
//! `BENCH_net.json` baseline is produced by a full run
//! (`CRITERION_JSON=BENCH_net.json cargo bench -p bgla-bench --bench
//! net`).

use bgla_codec::encode_frame;
use bgla_core::harness::{assert_la_spec, wts_report};
use bgla_core::wts::WtsProcess;
use bgla_core::SystemConfig;
use bgla_net::{Data, FaultConfig, FaultPlan, LinkConfig, NetConfig, TcpRuntimeBuilder, FK_DATA};
use bgla_simnet::{Metrics, Transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeSet;

const N: usize = 4;
const F: usize = 1;
const BUDGET: u64 = 1_000_000;

fn net_cfg(faulty: bool) -> NetConfig {
    NetConfig {
        link: LinkConfig {
            rto_ms: 20,
            ..LinkConfig::default()
        },
        faults: if faulty {
            FaultPlan::new(0xBE7C, FaultConfig::chaos())
        } else {
            FaultPlan::none()
        },
        seed: 0x7CB,
        ..NetConfig::default()
    }
}

/// Builds a 4-node WTS system on loopback, runs it to quiescence,
/// checks the LA spec, and returns the merged metrics.
fn wts_run(faulty: bool) -> Metrics {
    let config = SystemConfig::new(N, F);
    let mut b = TcpRuntimeBuilder::new(net_cfg(faulty));
    for i in 0..N {
        b = b.add(Box::new(WtsProcess::<u64>::new(i, config, 100 + i as u64)));
    }
    let mut rt = b.build().expect("bind localhost");
    let out = rt.run_transport(BUDGET);
    assert!(out.quiescent, "loopback WTS run must quiesce");
    let correct: Vec<usize> = (0..N).collect();
    let report = wts_report::<u64>(&rt, &correct);
    let inputs: BTreeSet<u64> = (0..N).map(|i| 100 + i as u64).collect();
    assert_la_spec(&report, &inputs, F);
    rt.metrics_snapshot()
}

fn bench_net(c: &mut Criterion) {
    let smoke = std::env::var("NET_BENCH_SMOKE").is_ok();

    let mut g = c.benchmark_group("net");

    // Agreement cases first: a group throughput declaration sticks for
    // the rest of the group, and these rows should carry none.
    g.sample_size(if smoke { 2 } else { 10 });
    g.bench_with_input(BenchmarkId::new("wts_agreement", "clean"), &(), |b, _| {
        b.iter(|| wts_run(false))
    });
    g.bench_with_input(BenchmarkId::new("wts_agreement", "chaos"), &(), |b, _| {
        b.iter(|| wts_run(true))
    });

    let payload = vec![0xA5u8; 256];
    let frame = encode_frame(
        FK_DATA,
        &Data {
            seq: 7,
            depth: 3,
            payload: payload.clone(),
        },
    );
    g.sample_size(if smoke { 10 } else { 60 });
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("frame_roundtrip", payload.len()),
        &(),
        |b, _| {
            b.iter(|| {
                let bytes = encode_frame(
                    FK_DATA,
                    &Data {
                        seq: 7,
                        depth: 3,
                        payload: payload.clone(),
                    },
                );
                bgla_net::demux_frame(&bytes).expect("roundtrip")
            })
        },
    );
    g.finish();

    // The bytes table: one representative run per profile, exported as
    // `throughput_bytes` so the committed JSON carries the cells.
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>6} {:>6}",
        "profile", "modeled_bytes", "measured_bytes", "retrans", "dups", "reconn"
    );
    let mut tbl = c.benchmark_group("net_bytes");
    tbl.sample_size(2);
    for (label, faulty) in [("clean", false), ("chaos", true)] {
        let m = wts_run(faulty);
        let modeled = m.total_bytes();
        let measured = m.net_frame_bytes;
        assert!(
            measured > modeled,
            "{label}: measured wire bytes ({measured}) must exceed modeled \
             protocol bytes ({modeled}) — framing overhead alone guarantees it"
        );
        println!(
            "{label:<10} {modeled:>14} {measured:>14} {:>8} {:>6} {:>6}",
            m.net_retransmits, m.net_dup_frames, m.net_reconnects
        );
        tbl.throughput(Throughput::Bytes(modeled));
        tbl.bench_with_input(BenchmarkId::new("modeled", label), &(), |b, _| b.iter(|| 0));
        tbl.throughput(Throughput::Bytes(measured));
        tbl.bench_with_input(BenchmarkId::new("measured", label), &(), |b, _| {
            b.iter(|| 0)
        });
    }
    tbl.finish();
}

criterion_group!(net, bench_net);
criterion_main!(net);
