//! Criterion bench for RSM operations: wall-clock cost of a full
//! update+read client session against a 4-replica BFT deployment.

use bgla_core::SystemConfig;
use bgla_rsm::{ClientOp, Op, Replica, WorkloadClient};
use bgla_simnet::{FifoScheduler, SimulationBuilder};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_rsm_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsm_update_read_session");
    g.sample_size(10);
    g.bench_function("n4_f1", |b| {
        b.iter(|| {
            let (n, f) = (4usize, 1usize);
            let config = SystemConfig::new(n, f);
            let mut builder = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
            for i in 0..n {
                builder = builder.add(Box::new(Replica::new(i, config, 20)));
            }
            builder = builder.add(Box::new(WorkloadClient::new(
                1,
                n,
                f,
                vec![ClientOp::Update(Op::Add(1)), ClientOp::Read],
            )));
            let mut sim = builder.build();
            sim.run(u64::MAX / 2);
            let client = sim.process_as::<WorkloadClient>(n).unwrap();
            assert!(client.finished());
            sim.metrics().total_sent()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rsm_session);
criterion_main!(benches);
