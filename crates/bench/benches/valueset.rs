//! Criterion bench for the `ValueSet` representation: the message
//! fan-out pattern every agreement algorithm executes on its hot path,
//! measured against the `BTreeSet` baseline it replaced, plus the
//! delta-message codec and an end-to-end GWTS round with deltas
//! on/off.
//!
//! Run with `cargo bench --bench valueset`; set `CRITERION_JSON=path`
//! to dump the results (that is how `BENCH_valueset.json` at the repo
//! root is produced).

use bgla_core::valueset::{DeltaReceiver, DeltaSender};
use bgla_core::ValueSet;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

const SET_SIZE: u64 = 1_000;
const FANOUT: usize = 16;

/// The hot-path pattern: a proposer broadcasts its set to n processes
/// (clone per send) and every receiver joins it into its accumulated
/// state. `BTreeSet` pays a node-per-element deep clone per send.
fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("clone_join_fanout_1k_n16");

    let btree_src: BTreeSet<u64> = (0..SET_SIZE).collect();
    let btree_receivers: Vec<BTreeSet<u64>> = (0..FANOUT)
        .map(|i| (0..SET_SIZE / 2 + i as u64).collect())
        .collect();
    g.bench_with_input(BenchmarkId::from_parameter("btreeset"), &(), |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for recv in &btree_receivers {
                // send: deep clone; receive: join into local state.
                let msg = btree_src.clone();
                let mut local = recv.clone();
                local.extend(msg);
                total += local.len();
            }
            black_box(total)
        })
    });

    let vs_src: ValueSet<u64> = (0..SET_SIZE).collect();
    let vs_receivers: Vec<ValueSet<u64>> = (0..FANOUT)
        .map(|i| (0..SET_SIZE / 2 + i as u64).collect())
        .collect();
    g.bench_with_input(BenchmarkId::from_parameter("valueset"), &(), |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for recv in &vs_receivers {
                // send: O(1) refcount; receive: merge-walk join.
                let msg = vs_src.clone();
                let mut local = recv.clone();
                local.join_with(&msg);
                total += local.len();
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Re-broadcast of an unchanged (already-superset) proposal — the most
/// common steady-state event. ValueSet detects `⊇` by merge-walk with
/// zero allocation; BTreeSet clones the whole message first.
fn bench_steady_state_redeliver(c: &mut Criterion) {
    let mut g = c.benchmark_group("redeliver_superset_1k");
    let btree_src: BTreeSet<u64> = (0..SET_SIZE).collect();
    g.bench_with_input(BenchmarkId::from_parameter("btreeset"), &(), |b, _| {
        let mut local = btree_src.clone();
        b.iter(|| {
            let msg = btree_src.clone();
            local.extend(msg);
            black_box(local.len())
        })
    });
    let vs_src: ValueSet<u64> = (0..SET_SIZE).collect();
    g.bench_with_input(BenchmarkId::from_parameter("valueset"), &(), |b, _| {
        let mut local = vs_src.clone();
        b.iter(|| {
            let msg = vs_src.clone();
            local.join_with(&msg);
            black_box(local.len())
        })
    });
    g.finish();
}

/// Delta codec round-trip: encode a refinement (base 1k values, 8
/// added) for 16 acceptors and resolve it at each.
fn bench_delta_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_codec_1k_plus8_n16");
    let base: ValueSet<u64> = (0..SET_SIZE).collect();
    let refined: ValueSet<u64> = (0..SET_SIZE + 8).collect();
    let mut tx: DeltaSender<u64> = DeltaSender::new(true);
    let mut rx: DeltaReceiver<u64> = DeltaReceiver::new();
    tx.record_broadcast(0, &base);
    for to in 0..FANOUT {
        rx.record(0, 0, &base);
        tx.record_reply(to, 0);
    }
    tx.record_broadcast(1, &refined);
    g.bench_with_input(
        BenchmarkId::from_parameter("encode_resolve"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut bytes = 0usize;
                for to in 0..FANOUT {
                    let upd = tx.encode_for(to, 1, &refined);
                    bytes += upd.wire_size();
                    let full = rx.resolve(0, &upd).expect("base held");
                    black_box(full.len());
                }
                black_box(bytes)
            })
        },
    );
    // The full-set strawman for the same traffic.
    g.bench_with_input(BenchmarkId::from_parameter("full_resend"), &(), |b, _| {
        b.iter(|| {
            let mut bytes = 0usize;
            for _to in 0..FANOUT {
                let msg = refined.clone();
                bytes += msg.wire_size();
                black_box(msg.len());
            }
            black_box(bytes)
        })
    });
    g.finish();
}

/// End-to-end: a 3-round GWTS stream (n = 7), deltas on vs off —
/// wall-clock and the modeled byte counts both matter here.
fn bench_gwts_deltas(c: &mut Criterion) {
    use bgla_core::gwts::GwtsProcess;
    use bgla_core::SystemConfig;
    use bgla_simnet::{FifoScheduler, SimulationBuilder};
    use std::collections::BTreeMap;

    let mut g = c.benchmark_group("gwts_stream_n7_r3");
    g.sample_size(10);
    for deltas in [false, true] {
        let label = if deltas { "deltas_on" } else { "deltas_off" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &deltas, |b, &deltas| {
            b.iter(|| {
                let (n, f, rounds) = (7usize, 2usize, 3u64);
                let config = SystemConfig::new(n, f);
                let mut builder =
                    SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
                for i in 0..n {
                    let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                    schedule.insert(0, (0..40).map(|k| (i as u64) * 1_000 + k).collect());
                    builder = builder.add(Box::new(
                        GwtsProcess::new(i, config, schedule, rounds).with_deltas(deltas),
                    ));
                }
                let mut sim = builder.build();
                sim.run(u64::MAX / 2);
                sim.metrics().total_bytes()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fanout,
    bench_steady_state_redeliver,
    bench_delta_codec,
    bench_gwts_deltas
);
criterion_main!(benches);
