//! Per-delivery step cost of the simulation engine, slab vs classic.
//!
//! The workload holds the in-flight population constant: a seeder
//! process floods `size` messages at start-up, and every delivery sends
//! exactly one message onward, so `iter(|| sim.step())` measures the
//! steady-state cost of one delivery at `size` messages in flight. The
//! `classic/*` rows run the preserved pre-slab engine
//! ([`bgla_bench::classic`]) on the identical workload — the
//! slab-vs-classic ratio at 10k in flight is the headline number in the
//! committed `BENCH_simstep.json`.
//!
//! Smoke mode (`SIMSTEP_SMOKE=1`, used by CI) shrinks sizes and sample
//! counts so the bench just proves it runs.

use bgla_bench::classic::{
    ClassicDelay, ClassicFifo, ClassicRandom, ClassicScheduler, ClassicSimulation,
};
use bgla_simnet::{
    Context, DelayScheduler, FifoScheduler, Process, ProcessId, RandomScheduler, Scheduler,
    SimulationBuilder,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::any::Any;

const N: usize = 8;

/// Keeps the in-flight population constant: seeds `seed_count` messages
/// at start, then relays every delivery onward.
struct Churn {
    seed_count: usize,
}

impl Process<u64> for Churn {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        for i in 0..self.seed_count {
            ctx.send(i % ctx.n, i as u64);
        }
    }
    fn on_message(&mut self, _from: ProcessId, msg: u64, ctx: &mut Context<u64>) {
        ctx.send((ctx.me + 1) % ctx.n, msg);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn churn_procs(size: usize) -> Vec<Box<dyn Process<u64>>> {
    (0..N)
        .map(|i| {
            Box::new(Churn {
                seed_count: if i == 0 { size } else { 0 },
            }) as Box<dyn Process<u64>>
        })
        .collect()
}

fn new_schedulers(size: usize) -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("fifo", Box::new(FifoScheduler::new())),
        ("random", Box::new(RandomScheduler::new(1))),
        ("delay", Box::new(DelayScheduler::new(1, size as u64))),
    ]
}

fn classic_schedulers(size: usize) -> Vec<(&'static str, Box<dyn ClassicScheduler>)> {
    vec![
        ("fifo", Box::new(ClassicFifo)),
        ("random", Box::new(ClassicRandom::new(1))),
        ("delay", Box::new(ClassicDelay::new(1, size as u64))),
    ]
}

fn bench_simstep(c: &mut Criterion) {
    let smoke = std::env::var("SIMSTEP_SMOKE").is_ok();
    let sizes: &[usize] = if smoke { &[256] } else { &[1_000, 10_000] };

    let mut g = c.benchmark_group("simstep");
    g.sample_size(if smoke { 5 } else { 20 });
    g.throughput(Throughput::Elements(1));

    for &size in sizes {
        for (name, sched) in new_schedulers(size) {
            let mut sim = SimulationBuilder::new().scheduler(sched);
            for p in churn_procs(size) {
                sim = sim.add(p);
            }
            let mut sim = sim.build();
            sim.start();
            assert_eq!(sim.in_flight(), size);
            g.bench_with_input(
                BenchmarkId::new(format!("slab/{name}"), size),
                &size,
                |b, _| b.iter(|| sim.step()),
            );
        }
        for (name, sched) in classic_schedulers(size) {
            let mut old = ClassicSimulation::new(churn_procs(size), sched);
            old.start();
            g.bench_with_input(
                BenchmarkId::new(format!("classic/{name}"), size),
                &size,
                |b, _| b.iter(|| old.step()),
            );
        }
    }
    g.finish();
}

criterion_group!(simstep, bench_simstep);
criterion_main!(simstep);
