//! Wire cost of the delta-encoded, proof-by-reference `ack_req`/`nack`
//! pipeline (`with_proven_deltas`) vs the ship-everything-inline
//! baseline, on refinement-heavy workloads where proposals are
//! re-broadcast many times.
//!
//! Cases (each as `deltas` vs `full`):
//!
//! * `sbs_refine/{n}` — one-shot SbS under a random schedule: staggered
//!   init arrival gives proposers diverging safety sets, so acceptors
//!   nack and proposals are re-broadcast up to `2f` times;
//! * `gsbs_stream/{n}` — a multi-round GSbS stream (FIFO): the proven
//!   proposal is cumulative across rounds, so the baseline re-ships
//!   every earlier round's batches and proofs in every round, while
//!   deltas ship each proof once per peer.
//!
//! Each benchmark id's `throughput_bytes` records the modeled
//! `ack_req + nack` bytes of one full simulation run in that mode —
//! that is the headline number (the committed `BENCH_proofdelta.json`
//! pins the ≥ 5× reduction); the timed quantity is the wall clock of
//! the same run, showing the encode/decode bookkeeping is not paid for
//! in time.
//!
//! The committed baseline is produced by a full run
//! (`CRITERION_JSON=BENCH_proofdelta.json cargo bench -p bgla-bench
//! --bench proofdelta`); CI runs `PROOFDELTA_SMOKE=1` with shrunk sizes
//! to prove the bench stays alive.

use bgla_core::gsbs::GsbsProcess;
use bgla_core::sbs::SbsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{FifoScheduler, Metrics, RandomScheduler, Simulation, SimulationBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;

fn proof_traffic_bytes(m: &Metrics) -> u64 {
    m.bytes_by_kind.get("ack_req").copied().unwrap_or(0)
        + m.bytes_by_kind.get("nack").copied().unwrap_or(0)
}

fn sbs_run(n: usize, seed: u64, deltas: bool) -> Simulation<bgla_core::sbs::SbsMsg<u64>> {
    let f = (n - 1) / 3;
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..n {
        b = b.add(Box::new(
            SbsProcess::new(i, config, 100 + i as u64).with_proven_deltas(deltas),
        ));
    }
    let mut sim = b.build();
    assert!(sim.run(u64::MAX / 2).quiescent);
    sim
}

fn gsbs_run(n: usize, rounds: u64, deltas: bool) -> Simulation<bgla_core::gsbs::GsbsMsg<u64>> {
    let f = (n - 1) / 3;
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds.saturating_sub(2) {
            schedule.insert(r, vec![(i as u64) * 1_000 + r]);
        }
        b = b.add(Box::new(
            GsbsProcess::new(i, config, schedule, rounds).with_proven_deltas(deltas),
        ));
    }
    let mut sim = b.build();
    assert!(sim.run(u64::MAX / 2).quiescent);
    sim
}

fn bench_proofdelta(c: &mut Criterion) {
    let smoke = std::env::var("PROOFDELTA_SMOKE").is_ok();
    let mut g = c.benchmark_group("proofdelta");
    g.sample_size(if smoke { 3 } else { 10 });

    // One-shot SbS, refinement-heavy random schedule.
    let (sbs_n, sbs_seed) = if smoke { (4, 3) } else { (10, 3) };
    let mut sbs_bytes = [0u64; 2];
    for (slot, (label, deltas)) in [("deltas", true), ("full", false)].iter().enumerate() {
        let bytes = proof_traffic_bytes(sbs_run(sbs_n, sbs_seed, *deltas).metrics());
        sbs_bytes[slot] = bytes;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(
            BenchmarkId::new(format!("sbs_refine/{label}"), sbs_n),
            &sbs_n,
            |b, &n| b.iter(|| sbs_run(n, sbs_seed, *deltas)),
        );
    }
    println!(
        "sbs_refine/{sbs_n}: ack_req+nack bytes {} (deltas) vs {} (full) = {:.1}x",
        sbs_bytes[0],
        sbs_bytes[1],
        sbs_bytes[1] as f64 / sbs_bytes[0].max(1) as f64
    );

    // Multi-round GSbS stream: cumulative proposals.
    let (gsbs_n, gsbs_rounds) = if smoke { (4, 3) } else { (10, 8) };
    let mut gsbs_bytes = [0u64; 2];
    for (slot, (label, deltas)) in [("deltas", true), ("full", false)].iter().enumerate() {
        let bytes = proof_traffic_bytes(gsbs_run(gsbs_n, gsbs_rounds, *deltas).metrics());
        gsbs_bytes[slot] = bytes;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(
            BenchmarkId::new(format!("gsbs_stream/{label}"), gsbs_n),
            &gsbs_n,
            |b, &n| b.iter(|| gsbs_run(n, gsbs_rounds, *deltas)),
        );
    }
    println!(
        "gsbs_stream/{gsbs_n}: ack_req+nack bytes {} (deltas) vs {} (full) = {:.1}x",
        gsbs_bytes[0],
        gsbs_bytes[1],
        gsbs_bytes[1] as f64 / gsbs_bytes[0].max(1) as f64
    );

    if !smoke {
        // The committed-baseline claim: at least a 5x reduction on the
        // refinement-heavy workloads (smoke sizes are too small to
        // refine much, so only the full run enforces it).
        let ratio = gsbs_bytes[1] as f64 / gsbs_bytes[0].max(1) as f64;
        assert!(
            ratio >= 5.0,
            "gsbs_stream delta reduction fell below 5x: {ratio:.2}"
        );
    }
    g.finish();
}

criterion_group!(proofdelta, bench_proofdelta);
criterion_main!(proofdelta);
