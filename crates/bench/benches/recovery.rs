//! Durability costs and the crash-recovery sweep.
//!
//! Timed cases:
//!
//! * `snapshot_encode/{algo}` — serializing one mid-run process into a
//!   framed, checksummed snapshot (`throughput_bytes` = frame size);
//! * `snapshot_decode/{algo}` — validating + deserializing that frame
//!   back into a bootable process;
//! * `crash_cycle/{algo}` — a full crash-recovery-to-quiescence run:
//!   honest execution under a FIFO schedule, one crash shortly after
//!   the victim's first decide, snapshot restore, rejoin, quiescence,
//!   and the restart-spanning prefix check.
//!
//! After the timed groups the bench always runs the **crash-recovery
//! sweep**: all four algorithms × scheduler grid × crash tactics with a
//! faithful store (must be violation-free), plus the planted
//! stale-snapshot rollback (must be *detected* as `RestartRegression`
//! on multi-round GWTS and *absorbed* on one-shot WTS). Any deviation
//! panics, so CI fails loudly.
//!
//! `RECOVERY_SMOKE=1` shrinks sample counts and the sweep grid to a
//! CI-sized check; the committed `BENCH_recovery.json` baseline is
//! produced by a full run (`CRITERION_JSON=BENCH_recovery.json cargo
//! bench -p bgla-bench --bench recovery`).

use bgla_core::gsbs::{GsbsMsg, GsbsProcess};
use bgla_core::gwts::{GwtsMsg, GwtsProcess};
use bgla_core::harness::{
    gsbs_observer, gsbs_system, gwts_observer, gwts_system, sbs_observer, sbs_system, wts_observer,
    wts_system,
};
use bgla_core::linearize::{CheckerConfig, TraceViolation};
use bgla_core::recovery::{
    first_decide_steps, resolve_tactics, run_crash_conformance, CrashPlan, CrashTactic, MemStore,
    RebuildFn, RollbackStore, SnapshotPolicy,
};
use bgla_core::sbs::{SbsMsg, SbsProcess};
use bgla_core::search::{Observer, SystemFactory};
use bgla_core::wts::{WtsMsg, WtsProcess};
use bgla_core::SystemConfig;
use bgla_simnet::{
    FifoScheduler, ProcessId, RandomScheduler, Scheduler, SearchScheduler, WireMessage,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;

const N: usize = 4;
const F: usize = 1;
const VICTIM: ProcessId = 0;
const BUDGET: u64 = 5_000_000;

/// Deliveries to absorb before snapshotting the encode/decode subject:
/// enough to populate rbcast engines, counters and (for the signature
/// algorithms) signed sets and proofs.
const WARM_STEPS: u64 = 25;

fn ident(v: &u64) -> u64 {
    *v
}

fn gen_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut s = BTreeMap::new();
    s.insert(0, vec![100 + i as u64]);
    s
}

/// Inputs in rounds 0 and 1, so a stale round-0 snapshot rolls back
/// over a real decision gap (the rollback plant needs this).
fn growing_schedule(i: usize) -> BTreeMap<u64, Vec<u64>> {
    let mut s = BTreeMap::new();
    s.insert(0, vec![100 + i as u64]);
    s.insert(1, vec![200 + i as u64]);
    s
}

// ---------------------------------------------------------------------------
// Rebuild closures (restore-from-snapshot, genesis fallback)
// ---------------------------------------------------------------------------

fn wts_rebuild(config: SystemConfig) -> Box<RebuildFn<'static, WtsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| WtsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as _, false),
            None => (
                Box::new(WtsProcess::new(p, config, 10 + p as u64)) as _,
                true,
            ),
        },
    )
}

fn sbs_rebuild(config: SystemConfig) -> Box<RebuildFn<'static, SbsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| SbsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as _, false),
            None => (
                Box::new(SbsProcess::new(p, config, 10 + p as u64)) as _,
                true,
            ),
        },
    )
}

fn gwts_rebuild(
    config: SystemConfig,
    schedule: fn(usize) -> BTreeMap<u64, Vec<u64>>,
    rounds: u64,
) -> Box<RebuildFn<'static, GwtsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| GwtsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as _, false),
            None => (
                Box::new(GwtsProcess::new(p, config, schedule(p), rounds)) as _,
                true,
            ),
        },
    )
}

fn gsbs_rebuild(
    config: SystemConfig,
    schedule: fn(usize) -> BTreeMap<u64, Vec<u64>>,
    rounds: u64,
) -> Box<RebuildFn<'static, GsbsMsg<u64>>> {
    Box::new(
        move |p, snap| match snap.and_then(|b| GsbsProcess::<u64>::from_snapshot(&b).ok()) {
            Some(proc) => (Box::new(proc) as _, false),
            None => (
                Box::new(GsbsProcess::new(p, config, schedule(p), rounds)) as _,
                true,
            ),
        },
    )
}

// ---------------------------------------------------------------------------
// One crash-recovery cycle + the sweep over schedulers × tactics
// ---------------------------------------------------------------------------

/// Runs one faithful-store crash-recovery cycle and asserts it is
/// clean; returns (restarts, genesis rejoins) for reporting.
fn crash_cycle<M: WireMessage + 'static>(
    label: &str,
    build: &mut SystemFactory<'_, M>,
    mk_observer: &dyn Fn() -> Observer<M>,
    rebuild: &mut RebuildFn<'_, M>,
    cfg: &CheckerConfig,
    tactics: &[CrashTactic],
    mk_sched: &dyn Fn() -> Box<dyn Scheduler>,
) -> (u64, usize) {
    let pilot = first_decide_steps(build, mk_observer, mk_sched(), BUDGET);
    let plan = resolve_tactics(tactics, &pilot);
    let mut store = MemStore::new();
    let run = run_crash_conformance(
        build,
        mk_observer,
        rebuild,
        SnapshotPolicy::combined(20),
        &mut store,
        &plan,
        &cfg.clone().without_inclusivity(),
        mk_sched(),
        BUDGET,
    );
    assert!(run.outcome.quiescent, "{label}: did not quiesce");
    assert!(run.restarts >= 1, "{label}: the plan never restarted");
    assert!(
        run.genesis_rejoins.len() <= F,
        "{label}: genesis rejoins exceed f"
    );
    match run.result {
        Ok(w) => w
            .validate()
            .unwrap_or_else(|e| panic!("{label}: bad witness: {e}")),
        Err(v) => panic!("{label}: conformance violation: {v}"),
    }
    (run.restarts, run.genesis_rejoins.len())
}

/// A named scheduler grid: (label, scheduler factory) rows.
type SchedGrid<'a> = Vec<(&'a str, Box<dyn Fn() -> Box<dyn Scheduler>>)>;

fn sweep_algo<M: WireMessage + 'static>(
    label: &str,
    build: &mut SystemFactory<'_, M>,
    mk_observer: &dyn Fn() -> Observer<M>,
    rebuild: &mut RebuildFn<'_, M>,
    cfg: &CheckerConfig,
    smoke: bool,
) {
    let scheds: SchedGrid<'_> = if smoke {
        vec![("fifo", Box::new(|| Box::new(FifoScheduler::new())))]
    } else {
        vec![
            ("fifo", Box::new(|| Box::new(FifoScheduler::new()))),
            ("random", Box::new(|| Box::new(RandomScheduler::new(7)))),
            ("search", Box::new(|| Box::new(SearchScheduler::new(3)))),
        ]
    };
    let tactic_sets: Vec<(&str, Vec<CrashTactic>)> = {
        let mut t = vec![
            (
                "after-decide",
                vec![CrashTactic::AfterDecide {
                    victim: VICTIM,
                    lag: 2,
                    downtime: 25,
                }],
            ),
            (
                "double-crash",
                vec![CrashTactic::DoubleCrash {
                    victim: VICTIM,
                    step: 6,
                    gap: 12,
                    downtime: 15,
                }],
            ),
        ];
        if !smoke {
            t.push((
                "at-step",
                vec![CrashTactic::AtStep {
                    victim: VICTIM,
                    step: 5,
                    downtime: 30,
                }],
            ));
            t.push((
                "before-decide",
                vec![CrashTactic::BeforeDecide {
                    victim: VICTIM,
                    lead: 3,
                    downtime: 25,
                }],
            ));
        }
        t
    };
    for (sched_name, mk_sched) in &scheds {
        for (tactic_name, tactics) in &tactic_sets {
            let cell = format!("{label}/{sched_name}/{tactic_name}");
            let (restarts, rejoins) =
                crash_cycle(&cell, build, mk_observer, rebuild, cfg, tactics, mk_sched);
            println!("  {cell}: clean ({restarts} restarts, {rejoins} genesis rejoins)");
        }
    }
}

/// The CI gate: faithful-store sweep over every algorithm, then the
/// planted rollback adversary — detected on multi-round GWTS, absorbed
/// on one-shot WTS.
fn crash_recovery_sweep(smoke: bool) {
    println!(
        "\ncrash-recovery sweep{}:",
        if smoke { " (smoke grid)" } else { "" }
    );
    let config = SystemConfig::new(N, F);
    let honest: Vec<usize> = (0..N).collect();
    let cfg = CheckerConfig::honest_system(N, F);
    let rounds = 3u64;

    {
        let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
        sweep_algo(
            "wts",
            &mut build,
            &|| wts_observer(honest.clone(), ident),
            &mut *wts_rebuild(config),
            &cfg,
            smoke,
        );
    }
    {
        let mut build =
            |sched: Box<dyn Scheduler>| gwts_system(N, F, rounds, gen_schedule, sched).0;
        sweep_algo(
            "gwts",
            &mut build,
            &|| gwts_observer(honest.clone(), ident),
            &mut *gwts_rebuild(config, gen_schedule, rounds),
            &cfg,
            smoke,
        );
    }
    {
        let mut build = |sched: Box<dyn Scheduler>| sbs_system(N, F, |i| 10 + i as u64, sched).0;
        sweep_algo(
            "sbs",
            &mut build,
            &|| sbs_observer(honest.clone(), ident),
            &mut *sbs_rebuild(config),
            &cfg,
            smoke,
        );
    }
    {
        let mut build =
            |sched: Box<dyn Scheduler>| gsbs_system(N, F, rounds, gen_schedule, sched).0;
        sweep_algo(
            "gsbs",
            &mut build,
            &|| gsbs_observer(honest.clone(), ident),
            &mut *gsbs_rebuild(config, gen_schedule, rounds),
            &cfg,
            smoke,
        );
    }

    // Rollback plant, detected: GWTS with a growing per-round schedule
    // restores a stale round-0 snapshot after quiescence.
    {
        let mut build =
            |sched: Box<dyn Scheduler>| gwts_system(N, F, rounds, growing_schedule, sched).0;
        let mk_observer = || gwts_observer(honest.clone(), ident);
        let mut rebuild = gwts_rebuild(config, growing_schedule, rounds);
        let mut store = RollbackStore::new();
        let run = run_crash_conformance(
            &mut build,
            &mk_observer,
            &mut *rebuild,
            SnapshotPolicy::decide_triggered(),
            &mut store,
            &CrashPlan::single(VICTIM, u64::MAX, 1),
            &cfg.clone().without_inclusivity(),
            Box::new(FifoScheduler::new()),
            BUDGET,
        );
        let v = run
            .result
            .expect_err("gwts rollback plant: the stale snapshot must be detected");
        assert!(
            matches!(
                v.violation,
                TraceViolation::RestartRegression {
                    process: VICTIM,
                    ..
                }
            ),
            "gwts rollback plant: wrong violation class: {v}"
        );
        println!("  gwts/rollback-plant: detected ({})", v.violation);
    }
    // Rollback plant, absorbed: one-shot WTS's only snapshot *is* its
    // decision, so the stale restore is faithful.
    {
        let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
        let mk_observer = || wts_observer(honest.clone(), ident);
        let mut rebuild = wts_rebuild(config);
        let mut store = RollbackStore::new();
        let run = run_crash_conformance(
            &mut build,
            &mk_observer,
            &mut *rebuild,
            SnapshotPolicy::decide_triggered(),
            &mut store,
            &CrashPlan::single(VICTIM, u64::MAX, 1),
            &cfg,
            Box::new(FifoScheduler::new()),
            BUDGET,
        );
        run.result
            .unwrap_or_else(|v| panic!("wts rollback plant: must be absorbed: {v}"))
            .validate()
            .unwrap();
        println!("  wts/rollback-plant: absorbed (one-shot durability)");
    }
    println!("crash-recovery sweep: all cells clean\n");
}

// ---------------------------------------------------------------------------
// Timed groups
// ---------------------------------------------------------------------------

/// Runs `sim` for [`WARM_STEPS`] deliveries so snapshots carry real
/// mid-protocol state.
fn warm<M: WireMessage + 'static>(sim: &mut bgla_simnet::Simulation<M>) {
    sim.start();
    for _ in 0..WARM_STEPS {
        if !sim.step() {
            break;
        }
    }
}

fn bench_recovery(c: &mut Criterion) {
    let smoke = std::env::var("RECOVERY_SMOKE").is_ok();
    let mut g = c.benchmark_group("recovery");
    g.sample_size(if smoke { 3 } else { 10 });

    // Mid-run subjects for snapshot encode/decode.
    let (mut wts_sim, _) = wts_system(N, F, |i| 10 + i as u64, Box::new(RandomScheduler::new(11)));
    warm(&mut wts_sim);
    let (mut gwts_sim, _) = gwts_system(N, F, 3, gen_schedule, Box::new(RandomScheduler::new(11)));
    warm(&mut gwts_sim);
    let (mut sbs_sim, _) = sbs_system(N, F, |i| 10 + i as u64, Box::new(RandomScheduler::new(11)));
    warm(&mut sbs_sim);
    let (mut gsbs_sim, _) = gsbs_system(N, F, 3, gen_schedule, Box::new(RandomScheduler::new(11)));
    warm(&mut gsbs_sim);

    macro_rules! codec_benches {
        ($algo:literal, $sim:ident, $ty:ty) => {{
            let p = $sim.process_as::<$ty>(0).expect("plain process");
            let frame = p.snapshot_bytes();
            g.throughput(Throughput::Bytes(frame.len() as u64));
            g.bench_with_input(BenchmarkId::new("snapshot_encode", $algo), &(), |b, _| {
                b.iter(|| p.snapshot_bytes())
            });
            g.bench_with_input(BenchmarkId::new("snapshot_decode", $algo), &(), |b, _| {
                b.iter(|| <$ty>::from_snapshot(&frame).expect("own snapshot decodes"))
            });
            println!("{}: mid-run snapshot frame = {} bytes", $algo, frame.len());
        }};
    }
    codec_benches!("wts", wts_sim, WtsProcess<u64>);
    codec_benches!("gwts", gwts_sim, GwtsProcess<u64>);
    codec_benches!("sbs", sbs_sim, SbsProcess<u64>);
    codec_benches!("gsbs", gsbs_sim, GsbsProcess<u64>);

    // Full crash-recovery cycles to quiescence (crash after the first
    // decide: the restore path really replays a decided snapshot).
    let config = SystemConfig::new(N, F);
    let honest: Vec<usize> = (0..N).collect();
    let cfg = CheckerConfig::honest_system(N, F);
    let tactics = [CrashTactic::AfterDecide {
        victim: VICTIM,
        lag: 2,
        downtime: 25,
    }];
    let fifo: &dyn Fn() -> Box<dyn Scheduler> = &|| Box::new(FifoScheduler::new());

    g.bench_with_input(BenchmarkId::new("crash_cycle", "wts"), &(), |b, _| {
        let mut build = |sched: Box<dyn Scheduler>| wts_system(N, F, |i| 10 + i as u64, sched).0;
        let mk_observer = || wts_observer(honest.clone(), ident);
        let mut rebuild = wts_rebuild(config);
        b.iter(|| {
            crash_cycle(
                "wts/crash_cycle",
                &mut build,
                &mk_observer,
                &mut *rebuild,
                &cfg,
                &tactics,
                fifo,
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("crash_cycle", "gwts"), &(), |b, _| {
        let mut build = |sched: Box<dyn Scheduler>| gwts_system(N, F, 3, gen_schedule, sched).0;
        let mk_observer = || gwts_observer(honest.clone(), ident);
        let mut rebuild = gwts_rebuild(config, gen_schedule, 3);
        b.iter(|| {
            crash_cycle(
                "gwts/crash_cycle",
                &mut build,
                &mk_observer,
                &mut *rebuild,
                &cfg,
                &tactics,
                fifo,
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("crash_cycle", "sbs"), &(), |b, _| {
        let mut build = |sched: Box<dyn Scheduler>| sbs_system(N, F, |i| 10 + i as u64, sched).0;
        let mk_observer = || sbs_observer(honest.clone(), ident);
        let mut rebuild = sbs_rebuild(config);
        b.iter(|| {
            crash_cycle(
                "sbs/crash_cycle",
                &mut build,
                &mk_observer,
                &mut *rebuild,
                &cfg,
                &tactics,
                fifo,
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("crash_cycle", "gsbs"), &(), |b, _| {
        let mut build = |sched: Box<dyn Scheduler>| gsbs_system(N, F, 3, gen_schedule, sched).0;
        let mk_observer = || gsbs_observer(honest.clone(), ident);
        let mut rebuild = gsbs_rebuild(config, gen_schedule, 3);
        b.iter(|| {
            crash_cycle(
                "gsbs/crash_cycle",
                &mut build,
                &mk_observer,
                &mut *rebuild,
                &cfg,
                &tactics,
                fifo,
            )
        })
    });
    g.finish();

    crash_recovery_sweep(smoke);
}

criterion_group!(recovery, bench_recovery);
criterion_main!(recovery);
