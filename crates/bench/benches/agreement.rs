//! Criterion benches for the agreement algorithms: wall-clock cost of
//! complete WTS / SbS instances and GWTS rounds across system sizes
//! (complements the message-count experiments E3/E5/E7 with CPU cost).

use bgla_bench::{gwts_sim, measure_sbs, measure_wts};
use bgla_simnet::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_wts(c: &mut Criterion) {
    let mut g = c.benchmark_group("wts_full_instance");
    for n in [4usize, 7, 10, 16] {
        let f = (n - 1) / 3;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let m = measure_wts(n, f, Box::new(FifoScheduler::new()));
                assert!(m.all_decided);
                m.total_msgs
            })
        });
    }
    g.finish();
}

fn bench_sbs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbs_full_instance");
    g.sample_size(10); // each iteration performs real Ed25519 work
    for n in [4usize, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let m = measure_sbs(n, 1, Box::new(FifoScheduler::new()));
                assert!(m.all_decided);
                m.total_msgs
            })
        });
    }
    g.finish();
}

fn bench_gwts_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("gwts_stream_3_rounds");
    for n in [4usize, 7] {
        let f = (n - 1) / 3;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = gwts_sim(n, f, 3, 1, Box::new(FifoScheduler::new()));
                sim.run(u64::MAX / 2);
                sim.metrics().total_sent()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wts, bench_sbs, bench_gwts_rounds);
criterion_main!(benches);
