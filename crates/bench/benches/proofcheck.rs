//! Proof-of-safety verification cost: interned (verify-once, answered
//! from the per-process `ProofCache`) vs flat (`with_proof_interning
//! (false)` — the PR-1 baseline, which still hits the signature cache
//! but re-serializes and re-hashes every ack on every delivery).
//!
//! All rows measure the *steady state*: the process has already seen the
//! proofs once (Byzantine redelivery, refinement re-broadcasts and
//! `nack` fan-in all hit this path). Cases:
//!
//! * `redeliver/{n}` — the same `ack_req` proposal (one shared proof
//!   over `n` values) delivered again;
//! * `superset/{n}` — a *grown* proposal: the base set plus a second
//!   refinement's values under a second proof, the shape an acceptor
//!   sees after every refinement;
//! * `fanin/{n}` — `n` proposers' single-value proposals merged into one
//!   accepted set with `n` distinct proofs (the nack fan-in shape);
//! * `gsbs_redeliver/{n}` — the GSbS analogue of `redeliver`.
//!
//! The committed `BENCH_proofcheck.json` baseline is produced by a full
//! run (`CRITERION_JSON=BENCH_proofcheck.json cargo bench -p bgla-bench
//! --bench proofcheck`); CI runs `PROOFCHECK_SMOKE=1` with shrunk sizes
//! to prove the bench stays alive.

use bgla_core::gsbs::{GSafeAck, GsbsProcess, ProvenBatch, SignedBatch};
use bgla_core::proof::Proof;
use bgla_core::sbs::{ProvenValue, SafeAckBody, SbsProcess, SignedSafeAck, SignedValue};
use bgla_core::{SignedSet, SystemConfig, ValueSet};
use bgla_crypto::Keypair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;

/// One safetying exchange: `values` (tagged to `salt`) signed by their
/// proposers, certified by a single shared proof from `quorum` acceptors.
fn sbs_proven_set(
    n: usize,
    quorum: usize,
    values: &[u64],
    salt: u64,
) -> SignedSet<ProvenValue<u64>> {
    let svs: Vec<SignedValue<u64>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let signer = i % n;
            SignedValue::sign(v + salt, signer, &Keypair::for_process(signer))
        })
        .collect();
    let rcvd: SignedSet<SignedValue<u64>> = svs.iter().cloned().collect();
    let acks: Vec<SignedSafeAck<u64>> = (0..quorum)
        .map(|s| {
            SignedSafeAck::sign(
                SafeAckBody {
                    rcvd: rcvd.clone(),
                    conflicts: vec![],
                },
                s,
                &Keypair::for_process(s),
            )
        })
        .collect();
    let proof = Proof::new(acks);
    svs.into_iter()
        .map(|sv| ProvenValue {
            sv,
            proof: proof.clone(),
        })
        .collect()
}

/// `n` independent proposers, each with a single-value proposal under
/// its own proof — the set shape nack fan-in accumulates.
fn sbs_fanin_set(n: usize, quorum: usize) -> SignedSet<ProvenValue<u64>> {
    let mut out = SignedSet::new();
    for p in 0..n {
        let single = sbs_proven_set(n, quorum, &[(p as u64) * 1_000], p as u64);
        out.join_with(&single);
    }
    out
}

fn gsbs_proven_set(n: usize, quorum: usize, values: &[u64]) -> SignedSet<ProvenBatch<u64>> {
    let sbs: Vec<SignedBatch<u64>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let signer = i % n;
            let batch: ValueSet<u64> = [v].into_iter().collect();
            SignedBatch::sign(0, batch, signer, &Keypair::for_process(signer))
        })
        .collect();
    let rcvd: SignedSet<SignedBatch<u64>> = sbs.iter().cloned().collect();
    let acks: Vec<GSafeAck<u64>> = (0..quorum)
        .map(|s| GSafeAck::sign(0, rcvd.clone(), vec![], s, &Keypair::for_process(s)))
        .collect();
    let proof = Proof::new(acks);
    sbs.into_iter()
        .map(|sb| ProvenBatch {
            sb,
            proof: proof.clone(),
        })
        .collect()
}

fn acceptors(n: usize, f: usize) -> [(&'static str, SbsProcess<u64>); 2] {
    let config = SystemConfig::new(n, f);
    [
        ("interned", SbsProcess::new(0, config, 0u64)),
        (
            "flat",
            SbsProcess::new(0, config, 0u64).with_proof_interning(false),
        ),
    ]
}

fn bench_proofcheck(c: &mut Criterion) {
    let smoke = std::env::var("PROOFCHECK_SMOKE").is_ok();
    let sizes: &[(usize, usize)] = if smoke { &[(4, 1)] } else { &[(7, 2), (16, 5)] };

    let mut g = c.benchmark_group("proofcheck");
    g.sample_size(if smoke { 5 } else { 20 });
    g.throughput(Throughput::Elements(1));

    for &(n, f) in sizes {
        let quorum = SystemConfig::new(n, f).quorum();
        let values: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        // Redeliver: the same proposal, again and again.
        let base = sbs_proven_set(n, quorum, &values, 0);
        for (label, mut p) in acceptors(n, f) {
            assert!(p.all_safe(&base), "warm-up must validate");
            g.bench_with_input(
                BenchmarkId::new(format!("{label}/redeliver"), n),
                &n,
                |b, _| b.iter(|| assert!(p.all_safe(&base))),
            );
        }

        // Redeliver-superset: base plus a refinement's worth of new
        // values under a second proof.
        let growth: Vec<u64> = (0..n as u64).map(|i| 500_000 + i).collect();
        let superset = {
            let mut s = base.clone();
            s.join_with(&sbs_proven_set(n, quorum, &growth, 1));
            s
        };
        for (label, mut p) in acceptors(n, f) {
            assert!(p.all_safe(&superset), "warm-up must validate");
            g.bench_with_input(
                BenchmarkId::new(format!("{label}/superset"), n),
                &n,
                |b, _| b.iter(|| assert!(p.all_safe(&superset))),
            );
        }

        // Fan-in: n distinct proofs in one set.
        let fanin = sbs_fanin_set(n, quorum);
        for (label, mut p) in acceptors(n, f) {
            assert!(p.all_safe(&fanin), "warm-up must validate");
            g.bench_with_input(BenchmarkId::new(format!("{label}/fanin"), n), &n, |b, _| {
                b.iter(|| assert!(p.all_safe(&fanin)))
            });
        }

        // GSbS redeliver.
        let gset = gsbs_proven_set(n, quorum, &values);
        let config = SystemConfig::new(n, f);
        let procs: [(&str, GsbsProcess<u64>); 2] = [
            ("interned", GsbsProcess::new(0, config, BTreeMap::new(), 1)),
            (
                "flat",
                GsbsProcess::new(0, config, BTreeMap::new(), 1).with_proof_interning(false),
            ),
        ];
        for (label, mut p) in procs {
            assert!(p.all_safe(&gset), "warm-up must validate");
            g.bench_with_input(
                BenchmarkId::new(format!("{label}/gsbs_redeliver"), n),
                &n,
                |b, _| b.iter(|| assert!(p.all_safe(&gset))),
            );
        }
    }
    g.finish();
}

criterion_group!(proofcheck, bench_proofcheck);
criterion_main!(proofcheck);
