//! Differential equivalence suite: the slab-backed engine with
//! incremental schedulers must reproduce the pre-redesign Vec-based
//! engine *delivery for delivery* — identical traces (seq order of
//! deliveries, receivers, depths, bytes), identical metrics, identical
//! decisions — for every shipped scheduler, over real protocol runs
//! (WTS and GWTS) and multiple seeds.

use bgla_bench::classic::{
    ClassicDelay, ClassicFifo, ClassicLifo, ClassicPartition, ClassicRandom, ClassicScheduler,
    ClassicSimulation, ClassicTargeted,
};
use bgla_bench::gwts_sim;
use bgla_core::gwts::{GwtsMsg, GwtsProcess};
use bgla_core::wts::{WtsMsg, WtsProcess};
use bgla_core::SystemConfig;
use bgla_simnet::{
    DelayScheduler, FifoScheduler, LifoScheduler, PartitionScheduler, Process, RandomScheduler,
    Scheduler, Simulation, SimulationBuilder, TargetedScheduler,
};
use std::collections::BTreeMap;

type SchedulerPair = (&'static str, Box<dyn Scheduler>, Box<dyn ClassicScheduler>);

/// One (new-engine, classic-engine) scheduler pair per shipped
/// scheduler, parameterized by seed so randomized pairs share streams.
fn scheduler_pairs(seed: u64) -> Vec<SchedulerPair> {
    vec![
        (
            "fifo",
            Box::new(FifoScheduler::new()),
            Box::new(ClassicFifo),
        ),
        (
            "lifo",
            Box::new(LifoScheduler::new()),
            Box::new(ClassicLifo),
        ),
        (
            "random",
            Box::new(RandomScheduler::new(seed)),
            Box::new(ClassicRandom::new(seed)),
        ),
        (
            "delay",
            Box::new(DelayScheduler::new(seed, 32)),
            Box::new(ClassicDelay::new(seed, 32)),
        ),
        (
            "targeted/fifo",
            Box::new(
                TargetedScheduler::new(vec![(0, 1), (1, 0)], Box::new(FifoScheduler::new()))
                    .with_release_after(40),
            ),
            Box::new(
                ClassicTargeted::new(vec![(0, 1), (1, 0)], Box::new(ClassicFifo))
                    .with_release_after(40),
            ),
        ),
        (
            "targeted/random",
            Box::new(
                TargetedScheduler::new(vec![(2, 0), (0, 2)], Box::new(RandomScheduler::new(seed)))
                    .with_release_after(25),
            ),
            Box::new(
                ClassicTargeted::new(vec![(2, 0), (0, 2)], Box::new(ClassicRandom::new(seed)))
                    .with_release_after(25),
            ),
        ),
        (
            "partition/fifo",
            Box::new(PartitionScheduler::new(
                vec![0, 1],
                60,
                Box::new(FifoScheduler::new()),
            )),
            Box::new(ClassicPartition::new(vec![0, 1], 60, Box::new(ClassicFifo))),
        ),
        (
            "partition/random",
            Box::new(PartitionScheduler::new(
                vec![0, 2],
                35,
                Box::new(RandomScheduler::new(seed)),
            )),
            Box::new(ClassicPartition::new(
                vec![0, 2],
                35,
                Box::new(ClassicRandom::new(seed)),
            )),
        ),
    ]
}

fn wts_procs(n: usize, f: usize) -> Vec<Box<dyn Process<WtsMsg<u64>>>> {
    let config = SystemConfig::new(n, f);
    (0..n)
        .map(|i| Box::new(WtsProcess::new(i, config, i as u64)) as Box<dyn Process<WtsMsg<u64>>>)
        .collect()
}

fn assert_equivalent<M: bgla_simnet::WireMessage + 'static>(
    label: &str,
    mut new_sim: Simulation<M>,
    mut old_sim: ClassicSimulation<M>,
) -> (Simulation<M>, ClassicSimulation<M>) {
    new_sim.enable_trace();
    let new_out = new_sim.run(200_000);
    let (old_delivered, old_quiescent) = old_sim.run(200_000);

    assert!(new_out.quiescent, "{label}: new engine did not quiesce");
    assert!(old_quiescent, "{label}: classic engine did not quiesce");
    assert_eq!(new_out.delivered, old_delivered, "{label}: delivery counts");
    assert_eq!(
        new_sim.trace().unwrap().events(),
        old_sim.trace(),
        "{label}: delivery traces diverge"
    );
    assert_eq!(
        new_sim.metrics(),
        old_sim.metrics(),
        "{label}: metrics diverge"
    );
    for p in 0..new_sim.n() {
        assert_eq!(
            new_sim.depth_of(p),
            old_sim.depth_of(p),
            "{label}: causal depth of p{p}"
        );
    }
    (new_sim, old_sim)
}

#[test]
fn wts_runs_identically_on_both_engines_for_all_schedulers() {
    let n = 7;
    let f = 2;
    for seed in 0..5u64 {
        for (name, new_sched, old_sched) in scheduler_pairs(seed) {
            let label = format!("wts/{name}/seed{seed}");
            let mut b = SimulationBuilder::new().scheduler(new_sched);
            for p in wts_procs(n, f) {
                b = b.add(p);
            }
            let new_sim = b.build();
            let old_sim = ClassicSimulation::new(wts_procs(n, f), old_sched);
            let (new_sim, old_sim) = assert_equivalent(&label, new_sim, old_sim);

            // Decisions are part of the equivalence contract.
            for p in 0..n {
                let d_new = new_sim.process_as::<WtsProcess<u64>>(p).unwrap();
                let d_old = old_sim.process_as::<WtsProcess<u64>>(p).unwrap();
                assert_eq!(d_new.decision, d_old.decision, "{label}: decision of p{p}");
                assert_eq!(
                    d_new.decision_depth, d_old.decision_depth,
                    "{label}: decision depth of p{p}"
                );
            }
        }
    }
}

fn gwts_procs(n: usize, f: usize, rounds: u64) -> Vec<Box<dyn Process<GwtsMsg<u64>>>> {
    let config = SystemConfig::new(n, f);
    (0..n)
        .map(|i| {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for r in 0..rounds.saturating_sub(2) {
                schedule.insert(r, vec![(i as u64) * 1_000_000 + r * 1_000]);
            }
            Box::new(GwtsProcess::new(i, config, schedule, rounds))
                as Box<dyn Process<GwtsMsg<u64>>>
        })
        .collect()
}

#[test]
fn gwts_streams_run_identically_on_both_engines() {
    let n = 4;
    let f = 1;
    let rounds = 4;
    for seed in 0..3u64 {
        for (name, new_sched, old_sched) in scheduler_pairs(seed) {
            let label = format!("gwts/{name}/seed{seed}");
            // Build via the shared harness so the workload matches the
            // experiment binaries, then mirror it on the classic engine.
            let mut new_sim = gwts_sim(n, f, rounds, 1, new_sched);
            new_sim.enable_trace();
            let old_sim = ClassicSimulation::new(gwts_procs(n, f, rounds), old_sched);
            let (new_sim, old_sim) = assert_equivalent(&label, new_sim, old_sim);

            for p in 0..n {
                let d_new = new_sim.process_as::<GwtsProcess<u64>>(p).unwrap();
                let d_old = old_sim.process_as::<GwtsProcess<u64>>(p).unwrap();
                assert_eq!(
                    d_new.decisions, d_old.decisions,
                    "{label}: decision stream of p{p}"
                );
            }
        }
    }
}
