//! E5 (Section 6.4, Theorem 5): GWTS performs an unbounded decision
//! stream at `O(f·n²)` messages per decision; every input is eventually
//! included (Inclusivity). Both the size sweep and the per-seed
//! inclusivity battery run sharded across cores.

use bgla_bench::{gwts_sim, measure_gwts, row, run_indexed, run_seeds};
use bgla_core::gwts::GwtsProcess;
use bgla_core::{spec, SystemConfig};
use bgla_simnet::RandomScheduler;

fn main() {
    println!("E5: GWTS stream — messages per decision (claim: O(f·n²))\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "f".into(),
            "decisions".into(),
            "msgs/decision".into(),
            "msgs/(f·n²)".into(),
            "max refs".into(),
        ])
    );

    let ns = [4usize, 7, 10, 13];
    let measurements = run_indexed(ns.len(), |i| {
        let n = ns[i];
        let f = SystemConfig::max_f(n);
        (n, f, measure_gwts(n, f, 5, 2))
    });

    let mut ratios = Vec::new();
    for (n, f, m) in &measurements {
        let norm = m.msgs_per_decision / (*f as f64 * (n * n) as f64);
        ratios.push(norm);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                m.decisions.to_string(),
                format!("{:.1}", m.msgs_per_decision),
                format!("{norm:.2}"),
                m.max_refinements.to_string(),
            ])
        );
    }
    // The normalized cost should be roughly flat (constant factor of the
    // O(f·n²) claim): allow a generous band.
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nmsgs/(f·n²) spread across n: {spread:.2}x (≈ constant ⇒ O(f·n²) shape ✓)");

    // Inclusivity under a random schedule (Theorem 5(2)), one core per
    // seed.
    println!("\nInclusivity check (every input decided, 10 seeds, n=4 f=1): ");
    let seeds: Vec<u64> = (0..10).collect();
    let verdicts = run_seeds(&seeds, |seed| {
        let mut sim = gwts_sim(4, 1, 4, 2, Box::new(RandomScheduler::new(seed)));
        sim.run(u64::MAX / 2);
        let mut seqs = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..4 {
            let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
            seqs.push(p.decisions.clone());
            inputs.push(p.all_inputs.clone());
        }
        spec::check_generalized_inclusivity(&inputs, &seqs)
            .and_then(|()| spec::check_local_stability(&seqs))
            .and_then(|()| spec::check_global_comparability(&seqs))
    });
    for (seed, verdict) in seeds.iter().zip(verdicts) {
        verdict.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    println!("  all seeds ✓ (inclusivity, local stability, global comparability)");
}
