//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Waiting for `n − f` disclosures before proposing** (the paper:
//!    "not strictly necessary, but allows us to show a bound of O(f) on
//!    the message delays"). We compare the standard WTS against an
//!    *eager* variant that proposes after its first disclosure: eager
//!    starts earlier but refines more; the delay bound still holds only
//!    for the waiting variant.
//! 2. **Reliably broadcasting GWTS acks** vs GSbS's signed point-to-point
//!    acks + decided certificates: per-decision message cost.
//!
//! Every (f, variant) / n cell runs on its own core via the sharded
//! driver.

use bgla_bench::{gwts_sim, row, run_indexed};
use bgla_core::gsbs::GsbsProcess;
use bgla_core::gwts::GwtsProcess;
use bgla_core::wts::WtsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{FifoScheduler, RandomScheduler, SimulationBuilder};
use std::collections::BTreeMap;

/// Worst (decision depth, refinements) over 5 seeded runs of one WTS
/// variant.
fn wts_worst(f: usize, eager: bool) -> (u64, u64) {
    let n = 3 * f + 1;
    let config = SystemConfig::new(n, f);
    let mut worst = (0, 0);
    for seed in 0..5 {
        let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
        for i in 0..n {
            let p = WtsProcess::new(i, config, i as u64);
            let p = if eager { p.with_eager_proposing() } else { p };
            b = b.add(Box::new(p));
        }
        let mut sim = b.build();
        sim.run(u64::MAX / 2);
        for i in 0..n {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            worst.0 = worst.0.max(p.decision_depth.unwrap_or(u64::MAX));
            worst.1 = worst.1.max(p.refinements);
        }
    }
    worst
}

/// (GWTS msgs/decision, GSbS msgs/decision) at one system size.
fn ack_costs(n: usize) -> (f64, f64) {
    let f = 1;
    let rounds = 3u64;
    // GWTS.
    let mut gsim = gwts_sim(n, f, rounds, 1, Box::new(FifoScheduler::new()));
    gsim.run(u64::MAX / 2);
    let gdec: usize = (0..n)
        .map(|i| {
            gsim.process_as::<GwtsProcess<u64>>(i)
                .unwrap()
                .decisions
                .len()
        })
        .sum();
    let gwts_cost = gsim.metrics().total_sent() as f64 / gdec.max(1) as f64;
    // GSbS.
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new();
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        schedule.insert(0, vec![i as u64]);
        b = b.add(Box::new(GsbsProcess::new(i, config, schedule, rounds)));
    }
    let mut ssim = b.build();
    ssim.run(u64::MAX / 2);
    let sdec: usize = (0..n)
        .map(|i| {
            ssim.process_as::<GsbsProcess<u64>>(i)
                .unwrap()
                .decisions
                .len()
        })
        .sum();
    let gsbs_cost = ssim.metrics().total_sent() as f64 / sdec.max(1) as f64;
    (gwts_cost, gsbs_cost)
}

fn main() {
    println!("Ablation 1: disclosure wait (n−f) vs eager proposing (WTS)\n");
    println!(
        "{}",
        row(&[
            "f".into(),
            "wait depth".into(),
            "wait refs".into(),
            "eager depth".into(),
            "eager refs".into(),
        ])
    );
    // 8 cells: (f, waiting) and (f, eager) for f = 1..=4.
    let cells = run_indexed(8, |i| wts_worst(i / 2 + 1, i % 2 == 1));
    for f in 1..=4usize {
        let (wd, wr) = cells[(f - 1) * 2];
        let (ed, er) = cells[(f - 1) * 2 + 1];
        println!(
            "{}",
            row(&[
                f.to_string(),
                wd.to_string(),
                wr.to_string(),
                ed.to_string(),
                er.to_string(),
            ])
        );
        assert!(wr <= f as u64, "waiting variant must respect Lemma 3");
        assert!(
            er >= wr,
            "eager proposing should refine at least as much as waiting"
        );
    }
    println!("\nWaiting bounds refinements by f; eager proposing trades the bound away.\n");

    println!("Ablation 2: GWTS (rbcast acks) vs GSbS (signed acks + certificates)\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "GWTS msgs/dec".into(),
            "GSbS msgs/dec".into(),
            "saving".into(),
        ])
    );
    let ns = [4usize, 7];
    let costs = run_indexed(ns.len(), |i| ack_costs(ns[i]));
    for (&n, &(gwts_cost, gsbs_cost)) in ns.iter().zip(&costs) {
        println!(
            "{}",
            row(&[
                n.to_string(),
                format!("{gwts_cost:.0}"),
                format!("{gsbs_cost:.0}"),
                format!("{:.1}x", gwts_cost / gsbs_cost),
            ])
        );
        assert!(
            gsbs_cost < gwts_cost,
            "signed acks must beat reliably-broadcast acks in message count"
        );
    }
    println!("\nReplacing the ack reliable broadcast with signatures (Section 8.2) cuts");
    println!("per-decision messages by the expected ~n factor.");
}
