//! E6 (Section 7, Theorem 6, Lemma 12): the RSM provides all six
//! properties, with Byzantine replicas *and* clients present; measures
//! operation cost in messages. The four configurations run sharded, one
//! per core, and report in order.

use bgla_bench::{row, run_indexed};
use bgla_core::SystemConfig;
use bgla_rsm::checks;
use bgla_rsm::client::{GarbageClient, PipeliningClient, StingyClient};
use bgla_rsm::{ClientOp, CounterState, Op, Replica, RsmMsg, WorkloadClient};
use bgla_simnet::{Context, Process, RandomScheduler, SimulationBuilder};
use std::any::Any;

struct DeadReplica;
impl Process<RsmMsg> for DeadReplica {
    fn on_message(&mut self, _f: usize, _m: RsmMsg, _c: &mut Context<RsmMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct RsmCell {
    row: String,
    final_read: Option<String>,
    verdict: String,
}

fn run_config(n: usize, f: usize, byz_replica: bool, byz_clients: bool) -> RsmCell {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(42)));
    let correct_replicas = if byz_replica { n - 1 } else { n };
    for i in 0..correct_replicas {
        b = b.add(Box::new(
            Replica::new(i, config, 60).with_validator(|c| c.client < 1000),
        ));
    }
    if byz_replica {
        b = b.add(Box::new(DeadReplica));
    }
    let scripts = [
        vec![
            ClientOp::Update(Op::Add(1)),
            ClientOp::Read,
            ClientOp::Update(Op::Add(2)),
            ClientOp::Read,
        ],
        vec![ClientOp::Update(Op::Put("k".into())), ClientOp::Read],
        vec![ClientOp::Read, ClientOp::Update(Op::Add(7)), ClientOp::Read],
    ];
    let n_honest_clients = scripts.len();
    for (k, s) in scripts.iter().enumerate() {
        b = b.add(Box::new(WorkloadClient::new(k as u64 + 1, n, f, s.clone())));
    }
    if byz_clients {
        b = b.add(Box::new(GarbageClient {
            client_id: 50,
            n_replicas: n,
        }));
        b = b.add(Box::new(StingyClient {
            client_id: 60,
            target: 0,
            op: Op::Add(1000),
        }));
        b = b.add(Box::new(PipeliningClient {
            client_id: 70,
            n_replicas: n,
            f,
            burst: 4,
        }));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);

    let mut snapshots = Vec::new();
    let mut ops = 0usize;
    for id in n..n + n_honest_clients {
        let c = sim.process_as::<WorkloadClient>(id).unwrap();
        ops += c.results.len();
        let mut copy = WorkloadClient::new(c.client_id, 0, 0, vec![]);
        copy.results = c.results.clone();
        snapshots.push(copy);
    }
    let refs: Vec<&WorkloadClient> = snapshots.iter().collect();
    let verdict = match checks::check_all(&refs) {
        Ok(()) => "all 6 ✓".to_string(),
        Err(e) => format!("VIOLATION: {e}"),
    };
    let row = row(&[
        n.to_string(),
        f.to_string(),
        byz_replica.to_string(),
        byz_clients.to_string(),
        ops.to_string(),
        format!(
            "{:.0}",
            sim.metrics().total_sent() as f64 / ops.max(1) as f64
        ),
        verdict.clone(),
    ]);

    // Sanity: a final read reflects all completed honest adds.
    let final_read = snapshots
        .iter()
        .filter_map(|c| c.reads().pop())
        .max_by_key(|r| r.len())
        .map(|r| {
            let st = CounterState::execute(&r);
            format!(
                "    final read: counter={} entries={:?} ({} cmds visible)",
                st.total, st.entries, st.applied
            )
        });
    RsmCell {
        row,
        final_read,
        verdict,
    }
}

fn main() {
    println!("E6: BFT RSM with commutative updates — property battery + op cost\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "f".into(),
            "byz replica".into(),
            "byz clients".into(),
            "ops done".into(),
            "msgs/op".into(),
            "props".into(),
        ])
    );

    let configs = [
        (4usize, 1usize, false, false),
        (4, 1, true, false),
        (4, 1, true, true),
        (7, 2, true, true),
    ];
    let cells = run_indexed(configs.len(), |i| {
        let (n, f, byz_replica, byz_clients) = configs[i];
        run_config(n, f, byz_replica, byz_clients)
    });
    for cell in cells {
        println!("{}", cell.row);
        assert!(cell.verdict.starts_with("all"), "{}", cell.verdict);
        if let Some(line) = cell.final_read {
            println!("{line}");
        }
    }
    println!("\nShape ✓: linearizable RSM semantics hold in every configuration, incl.");
    println!("Byzantine replica + Byzantine clients (Lemma 12).");
}
