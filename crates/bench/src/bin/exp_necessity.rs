//! E1 (Theorem 1): `n ≥ 3f + 1` processes are necessary.
//!
//! Three runs, executed in parallel (one shard each), reported in order:
//!  1. `n = 3f + 1` with a worst-case Byzantine: the full spec holds.
//!  2. `n = 3f` with WTS as-is: safety holds but liveness is lost
//!     (the quorum is unreachable — the protocol refuses to guess).
//!  3. `n = 3f` with the quorum naively lowered to `n − f` ("what if we
//!     just decided with fewer acks?"): Theorem 1's split-brain run
//!     materializes — correct processes decide incomparable values.

use bgla_bench::run_indexed;
use bgla_core::adversary::{Silent, SplitBrain};
use bgla_core::wts::{WtsMsg, WtsProcess};
use bgla_core::{spec, SystemConfig};
use bgla_simnet::{FifoScheduler, SimulationBuilder, TargetedScheduler};
use std::fmt::Write as _;

// --- Run 1: n = 4, f = 1, equivocating Byzantine. Spec holds. ---
fn run_full_spec() -> String {
    let mut out = String::new();
    let config = SystemConfig::new(4, 1);
    let mut b = SimulationBuilder::new();
    for i in 0..3 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b = b.add(Box::new(SplitBrain {
        a: 666u64,
        b: 777u64,
    }));
    let mut sim = b.build();
    let outcome = sim.run(10_000_000);
    let decisions: Vec<bgla_core::ValueSet<u64>> = (0..3)
        .map(|i| {
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .clone()
                .expect("liveness at n=3f+1")
        })
        .collect();
    spec::check_comparability(&decisions).expect("comparability at n=3f+1");
    let _ = writeln!(
        out,
        "n=4 f=1 + split-brain adversary : quiescent={} all decided, comparable ✓",
        outcome.quiescent
    );
    let _ = writeln!(out, "  decisions: {decisions:?}");
    out
}

// --- Run 2: n = 3, f = 1, silent Byzantine. Liveness lost. ---
fn run_liveness_lost() -> String {
    let mut out = String::new();
    let config = SystemConfig::new_unchecked(3, 1);
    let mut b = SimulationBuilder::new();
    for i in 0..2 {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    b = b.add(Box::new(Silent::default()));
    let mut sim = b.build();
    let outcome = sim.run(10_000_000);
    let decided: Vec<bool> = (0..2)
        .map(|i| {
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .is_some()
        })
        .collect();
    let _ = writeln!(
        out,
        "\nn=3 f=1, WTS unchanged         : quiescent={} decided={decided:?}",
        outcome.quiescent
    );
    assert!(decided.iter().all(|d| !d));
    let _ = writeln!(
        out,
        "  quorum ⌊(n+f)/2⌋+1 = 3 > n−f = 2 reachable processes → no decision, ever.\n  \
         Safety preserved; liveness impossible. ✓ (matches Theorem 1)"
    );
    out
}

// --- Run 3: n = 3, f = 1, quorum lowered to n−f = 2. Split brain. ---
fn run_split_brain() -> String {
    let mut out = String::new();
    // The "fix" a naive implementer might try: decide on n−f acks.
    // SystemConfig::quorum is ⌊(n+f)/2⌋+1; emulate quorum=2 by
    // configuring f=0 quorum arithmetic while keeping a real
    // Byzantine process and starving the p0↔p1 links so each victim
    // only talks to the adversary until after deciding.
    let config = SystemConfig::new_unchecked(3, 0); // quorum = 2, threshold = 3...
                                                    // threshold n-f with f=0 is 3: the adversary *does* disclose
                                                    // (differently per victim), so both victims see 2 correct-looking
                                                    // disclosures + their own = 3.
    let mut b = SimulationBuilder::new().scheduler(Box::new(TargetedScheduler::new(
        vec![(0, 1), (1, 0)],
        Box::new(FifoScheduler::new()),
    )));
    for i in 0..2 {
        b = b.add(Box::new(WtsProcess::new(i, config, 10 + i as u64)));
    }
    b = b.add(Box::new(SplitBrain {
        a: 666u64,
        b: 777u64,
    }));
    let mut sim = b.build();
    sim.run(10_000_000);
    let decisions: Vec<Option<bgla_core::ValueSet<u64>>> = (0..2)
        .map(|i| {
            sim.process_as::<WtsProcess<u64>>(i)
                .unwrap()
                .decision
                .clone()
        })
        .collect();
    let _ = writeln!(
        out,
        "\nn=3, quorum naively lowered to 2, split-brain adversary + partition:"
    );
    let _ = writeln!(out, "  decisions: {decisions:?}");
    if let (Some(d0), Some(d1)) = (&decisions[0], &decisions[1]) {
        let comparable = d0.is_subset(d1) || d1.is_subset(d0);
        let _ = writeln!(
            out,
            "  comparable = {comparable}  →  {}",
            if comparable {
                "(this schedule did not trigger the violation)"
            } else {
                "COMPARABILITY VIOLATED ✓ (the Theorem-1 run, realized)"
            }
        );
        assert!(
            !comparable,
            "expected the Theorem-1 split-brain violation at n=3f with a lowered quorum"
        );
    } else {
        let _ = writeln!(out, "  (a victim failed to decide under this schedule)");
    }
    out
}

fn main() {
    println!("E1: necessity of 3f+1 processes (Theorem 1)\n");

    let reports = run_indexed(3, |i| match i {
        0 => run_full_spec(),
        1 => run_liveness_lost(),
        _ => run_split_brain(),
    });
    for report in reports {
        print!("{report}");
    }

    println!("\nConclusion: at n = 3f one must give up either safety or liveness; WTS at");
    println!("n ≥ 3f+1 provides both — the bound is tight, as Theorem 1 proves.");
    let _ = WtsMsg::<u64>::AckReq {
        proposed: bgla_core::SetUpdate::Full(bgla_core::ValueSet::new()),
        ts: 0,
    };
}
