//! Adversarial schedule search over all four agreement algorithms.
//!
//! Sweeps seeded hostile schedules (`SearchScheduler`: reorder windows,
//! kind/sender/receiver hold-back phases…) against honest WTS / GWTS /
//! SbS / GSbS systems, records the full operation history of every run,
//! and checks it at every prefix with the trace-level conformance
//! checker (`bgla_core::linearize`). Expected outcome: **zero
//! violations** — any hit is shrunk to a minimal replayable schedule
//! and printed as a repro.
//!
//! Seed cells shard across all cores (`bgla_bench::shard`); set
//! `BGLA_SHARDS=1` for a sequential run. `SEARCH_SMOKE=1` shrinks the
//! seed budget to a CI-sized smoke check.

use bgla_bench::{gwts_sim, row, run_indexed};
use bgla_core::harness::{
    gsbs_observer, gsbs_system, gwts_observer, sbs_observer, sbs_system, wts_observer, wts_system,
};
use bgla_core::linearize::CheckerConfig;
use bgla_core::search::{search_schedules, SearchReport};
use bgla_simnet::Scheduler;
use std::collections::BTreeMap;

const BUDGET: u64 = 50_000_000;

fn ident(v: &u64) -> u64 {
    *v
}

#[derive(Clone, Copy)]
enum Algo {
    Wts,
    Gwts,
    Sbs,
    Gsbs,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Wts => "wts",
            Algo::Gwts => "gwts",
            Algo::Sbs => "sbs",
            Algo::Gsbs => "gsbs",
        }
    }

    /// Per-algorithm seed budget (the signature algorithms pay real
    /// cryptography per run, so they get fewer seeds).
    fn seed_budget(self, smoke: bool) -> u64 {
        match (self, smoke) {
            (Algo::Wts, false) => 48,
            (Algo::Gwts, false) => 24,
            (Algo::Sbs, false) => 12,
            (Algo::Gsbs, false) => 8,
            (Algo::Wts, true) => 6,
            (Algo::Gwts, true) => 4,
            (Algo::Sbs | Algo::Gsbs, true) => 2,
        }
    }

    fn search(self, seeds: std::ops::Range<u64>) -> SearchReport {
        let (n, f, rounds) = (4usize, 1usize, 3u64);
        let honest: Vec<usize> = (0..n).collect();
        let cfg = CheckerConfig::honest_system(n, f);
        match self {
            Algo::Wts => {
                let mut build =
                    |sched: Box<dyn Scheduler>| wts_system(n, f, |i| 10 + i as u64, sched).0;
                search_schedules(
                    &mut build,
                    &|| wts_observer(honest.clone(), ident),
                    &cfg,
                    seeds,
                    BUDGET,
                )
            }
            Algo::Gwts => {
                let mut build = |sched: Box<dyn Scheduler>| gwts_sim(n, f, rounds, 2, sched);
                search_schedules(
                    &mut build,
                    &|| gwts_observer(honest.clone(), ident),
                    &cfg,
                    seeds,
                    BUDGET,
                )
            }
            Algo::Sbs => {
                let mut build =
                    |sched: Box<dyn Scheduler>| sbs_system(n, f, |i| 10 + i as u64, sched).0;
                search_schedules(
                    &mut build,
                    &|| sbs_observer(honest.clone(), ident),
                    &cfg,
                    seeds,
                    BUDGET,
                )
            }
            Algo::Gsbs => {
                let mut build = |sched: Box<dyn Scheduler>| {
                    gsbs_system(
                        n,
                        f,
                        rounds,
                        |i| {
                            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                            schedule.insert(0, vec![100 + i as u64]);
                            schedule
                        },
                        sched,
                    )
                    .0
                };
                search_schedules(
                    &mut build,
                    &|| gsbs_observer(honest.clone(), ident),
                    &cfg,
                    seeds,
                    BUDGET,
                )
            }
        }
    }
}

fn main() {
    let smoke = std::env::var("SEARCH_SMOKE").is_ok();
    println!(
        "Schedule search: hostile delivery orders vs the trace-level LA checker{}\n",
        if smoke { " (smoke mode)" } else { "" }
    );
    println!(
        "{}",
        row(&[
            "algorithm".into(),
            "seeds".into(),
            "deliveries".into(),
            "ops checked".into(),
            "violations".into(),
        ])
    );

    // One sharded cell per seed chunk; chunks keep cells coarse enough
    // to amortize thread overhead while filling all cores.
    const CHUNK: u64 = 2;
    let algos = [Algo::Wts, Algo::Gwts, Algo::Sbs, Algo::Gsbs];
    let mut cells: Vec<(Algo, u64, u64)> = Vec::new();
    for algo in algos {
        let budget = algo.seed_budget(smoke);
        let mut s = 0;
        while s < budget {
            cells.push((algo, s, (s + CHUNK).min(budget)));
            s += CHUNK;
        }
    }

    let reports = run_indexed(cells.len(), |i| {
        let (algo, lo, hi) = cells[i];
        (algo, algo.search(lo..hi))
    });

    let mut failures = Vec::new();
    for algo in algos {
        let mut seeds = 0u64;
        let mut deliveries = 0u64;
        let mut ops = 0u64;
        let mut violations = 0usize;
        for (a, r) in &reports {
            if a.name() != algo.name() {
                continue;
            }
            seeds += r.seeds_run;
            deliveries += r.deliveries;
            ops += r.ops_checked;
            if let Some(cex) = &r.counterexample {
                violations += 1;
                failures.push(format!("{}: {cex}", algo.name()));
            }
        }
        println!(
            "{}",
            row(&[
                algo.name().into(),
                seeds.to_string(),
                deliveries.to_string(),
                ops.to_string(),
                violations.to_string(),
            ])
        );
    }

    if failures.is_empty() {
        println!(
            "\nAll explored schedules linearize: every prefix of every history satisfies the \
             LA/GLA safety battery and admits a witness ordering."
        );
    } else {
        for f in &failures {
            eprintln!("\n{f}");
        }
        panic!("{} schedule-search counterexample(s) found", failures.len());
    }
}
