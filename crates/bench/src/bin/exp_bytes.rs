//! E8 (Section 8 intro): SbS trades message *count* for message *size* —
//! its messages can reach `O(n²)` bytes (attached proofs of safety),
//! which WTS never does. Measures bytes on the wire and the largest
//! single message for both.
//!
//! Also reports **proof interning**: within each `ack_req`/`nack`, a
//! proof shared by several values transmits once (what the wire format
//! models — `proofs interned` counts the distinct proofs actually
//! shipped) vs the flat encoding that attaches a copy per proven value
//! (`proof refs`). The savings column is the byte reduction interning
//! delivers; proof *verification* is likewise interned per process (see
//! `BENCH_proofcheck.json` for that ablation, `with_proof_interning`).
//!
//! ```text
//!  n | proof refs | proofs interned | proof B interned | proof B flat | saved
//! ```
//!
//! Also measures the delta-message optimization: GWTS `ack_req` traffic
//! with deltas enabled vs the full-set baseline (same protocol, same
//! schedule, only the payload encoding differs).
//!
//! All sweeps run sharded, one (n) / (n, batch) cell per core.

use bgla_bench::{growth_exponent, measure_sbs, measure_wts, row, run_indexed};
use bgla_core::gsbs::GsbsProcess;
use bgla_core::gwts::GwtsProcess;
use bgla_core::sbs::SbsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{FifoScheduler, Metrics, RandomScheduler, SimulationBuilder};
use std::collections::BTreeMap;

/// `ack_req + nack` bytes — the proof-carrying traffic the proven-delta
/// pipeline targets.
fn proof_traffic(m: &Metrics) -> u64 {
    m.bytes_by_kind.get("ack_req").copied().unwrap_or(0)
        + m.bytes_by_kind.get("nack").copied().unwrap_or(0)
}

/// Runs one-shot SbS under a refinement-provoking random schedule and
/// returns (total bytes, ack_req + nack bytes).
fn sbs_delta_bytes(n: usize, f: usize, deltas: bool) -> (u64, u64) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(3)));
    for i in 0..n {
        b = b.add(Box::new(
            SbsProcess::new(i, config, 100 + i as u64).with_proven_deltas(deltas),
        ));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    (sim.metrics().total_bytes(), proof_traffic(sim.metrics()))
}

/// Runs a GSbS stream (cumulative proposals) and returns
/// (total bytes, ack_req + nack bytes).
fn gsbs_delta_bytes(n: usize, f: usize, rounds: u64, deltas: bool) -> (u64, u64) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds.saturating_sub(2) {
            schedule.insert(r, vec![(i as u64) * 1_000 + r]);
        }
        b = b.add(Box::new(
            GsbsProcess::new(i, config, schedule, rounds).with_proven_deltas(deltas),
        ));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    (sim.metrics().total_bytes(), proof_traffic(sim.metrics()))
}

/// Runs a GWTS stream and returns (total bytes, ack_req bytes).
fn gwts_bytes(n: usize, f: usize, rounds: u64, batch: u64, deltas: bool) -> (u64, u64) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds.saturating_sub(2) {
            schedule.insert(
                r,
                (0..batch)
                    .map(|k| (i as u64) * 1_000_000 + r * 1_000 + k)
                    .collect(),
            );
        }
        b = b.add(Box::new(
            GwtsProcess::new(i, config, schedule, rounds).with_deltas(deltas),
        ));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    let ack_req = sim
        .metrics()
        .bytes_by_kind
        .get("ack_req")
        .copied()
        .unwrap_or(0);
    (sim.metrics().total_bytes(), ack_req)
}

fn main() {
    println!("E8: bytes on the wire — WTS vs SbS at f = 1\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "WTS bytes".into(),
            "SbS bytes".into(),
            "WTS max msg".into(),
            "SbS max msg".into(),
            "ratio".into(),
        ])
    );
    let ns = [4usize, 7, 10, 13, 16];
    let cells = run_indexed(ns.len(), |i| {
        let n = ns[i];
        (
            measure_wts(n, 1, Box::new(FifoScheduler::new())),
            measure_sbs(n, 1, Box::new(FifoScheduler::new())),
        )
    });
    let (mut xs, mut wts_big, mut sbs_big) = (Vec::new(), Vec::new(), Vec::new());
    for (&n, (w, s)) in ns.iter().zip(&cells) {
        println!(
            "{}",
            row(&[
                n.to_string(),
                w.total_bytes.to_string(),
                s.total_bytes.to_string(),
                w.max_message_bytes.to_string(),
                s.max_message_bytes.to_string(),
                format!("{:.1}x", s.total_bytes as f64 / w.total_bytes as f64),
            ])
        );
        xs.push(n as f64);
        wts_big.push(w.max_message_bytes as f64);
        sbs_big.push(s.max_message_bytes as f64);
    }
    println!(
        "\nProof transmission: inline interned vs by-reference vs per-value copies (SbS, f = 1)\n"
    );
    println!(
        "{}",
        row(&[
            "n".into(),
            "proof refs".into(),
            "inline".into(),
            "by ref".into(),
            "inline B".into(),
            "ref B".into(),
            "flat B".into(),
            "saved".into(),
        ])
    );
    for (&n, (_, s)) in ns.iter().zip(&cells) {
        let shipped = s.proof_bytes_interned + s.proof_ref_bytes;
        println!(
            "{}",
            row(&[
                n.to_string(),
                s.proof_refs.to_string(),
                s.proofs_interned.to_string(),
                s.proofs_by_ref.to_string(),
                s.proof_bytes_interned.to_string(),
                s.proof_ref_bytes.to_string(),
                s.proof_bytes_flat.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - shipped as f64 / s.proof_bytes_flat.max(1) as f64)
                ),
            ])
        );
        assert!(s.proof_refs > 0, "SbS must ship proofs (n={n})");
        assert!(
            s.proofs_interned <= s.proof_refs,
            "interning cannot create proofs (n={n})"
        );
        assert!(
            shipped <= s.proof_bytes_flat,
            "shipped proof bytes must not exceed flat (n={n})"
        );
    }
    println!("\nShape ✓: one safetying exchange certifies many values, so shipping each");
    println!("distinct proof once per message — and as a 32-byte reference once a peer");
    println!("holds it — beats a copy-per-value flat encoding.");

    let kw = growth_exponent(&xs, &wts_big);
    let ks = growth_exponent(&xs, &sbs_big);
    println!("\nLargest-message growth exponents: WTS {kw:.2} (≈1: a set of n values),");
    println!("SbS {ks:.2} (≈2: proofs are quorum×set = O(n²)).");
    assert!(ks > kw, "SbS messages must grow faster than WTS messages");
    assert!(
        ks > 1.5,
        "SbS max message should be ~quadratic, got {ks:.2}"
    );
    println!("\nShape ✓: the signature algorithm's messages are asymptotically larger —");
    println!("the exact trade Section 8 announces.");

    println!("\nDelta messages: GWTS bytes, full-set vs delta ack_reqs (FIFO schedule)\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "batch".into(),
            "full total".into(),
            "delta total".into(),
            "full ack_req".into(),
            "delta ack_req".into(),
            "savings".into(),
        ])
    );
    let grid = [(4usize, 8u64), (7, 8), (7, 32), (10, 32)];
    let delta_cells = run_indexed(grid.len(), |i| {
        let (n, batch) = grid[i];
        let f = (n - 1) / 3;
        (
            gwts_bytes(n, f, 4, batch, false),
            gwts_bytes(n, f, 4, batch, true),
        )
    });
    for (&(n, batch), &((full_total, full_ack), (delta_total, delta_ack))) in
        grid.iter().zip(&delta_cells)
    {
        println!(
            "{}",
            row(&[
                n.to_string(),
                batch.to_string(),
                full_total.to_string(),
                delta_total.to_string(),
                full_ack.to_string(),
                delta_ack.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - delta_ack as f64 / full_ack.max(1) as f64)
                ),
            ])
        );
        assert!(
            delta_ack <= full_ack,
            "deltas must not grow ack_req bytes (n={n}, batch={batch})"
        );
        assert!(
            delta_total <= full_total,
            "deltas must not grow total bytes (n={n}, batch={batch})"
        );
    }
    println!("\nShape ✓: delta-encoded ack_reqs shrink proposal traffic; the totals drop");
    println!("accordingly (disclosure/ack rbcast traffic is unaffected by design).");

    println!("\nProven deltas: SbS/GSbS proof-carrying bytes, full vs delta + refs\n");
    println!(
        "{}",
        row(&[
            "algo".into(),
            "n".into(),
            "rounds".into(),
            "full total".into(),
            "delta total".into(),
            "full ack+nack".into(),
            "delta ack+nack".into(),
            "savings".into(),
        ])
    );
    // (algo, n, rounds): rounds = 1 means the one-shot SbS.
    let pd_grid = [
        ("sbs", 7usize, 1u64),
        ("sbs", 10, 1),
        ("gsbs", 7, 4),
        ("gsbs", 10, 6),
    ];
    let pd_cells = run_indexed(pd_grid.len(), |i| {
        let (algo, n, rounds) = pd_grid[i];
        let f = (n - 1) / 3;
        if algo == "sbs" {
            (sbs_delta_bytes(n, f, false), sbs_delta_bytes(n, f, true))
        } else {
            (
                gsbs_delta_bytes(n, f, rounds, false),
                gsbs_delta_bytes(n, f, rounds, true),
            )
        }
    });
    for (&(algo, n, rounds), &((full_total, full_pc), (delta_total, delta_pc))) in
        pd_grid.iter().zip(&pd_cells)
    {
        println!(
            "{}",
            row(&[
                algo.into(),
                n.to_string(),
                rounds.to_string(),
                full_total.to_string(),
                delta_total.to_string(),
                full_pc.to_string(),
                delta_pc.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - delta_pc as f64 / full_pc.max(1) as f64)
                ),
            ])
        );
        assert!(
            delta_pc <= full_pc,
            "proven deltas must not grow ack_req/nack bytes ({algo}, n={n})"
        );
        assert!(
            delta_total <= full_total,
            "proven deltas must not grow total bytes ({algo}, n={n})"
        );
    }
    println!("\nShape ✓: after first contact, proofs travel once per peer (then as 32-byte");
    println!("references) and only genuinely new values ship — the multi-round GSbS stream,");
    println!("whose baseline re-ships the whole cumulative proposal every round, saves most.");
}
