//! E8 (Section 8 intro): SbS trades message *count* for message *size* —
//! its messages can reach `O(n²)` bytes (attached proofs of safety),
//! which WTS never does. Measures bytes on the wire and the largest
//! single message for both.

use bgla_bench::{growth_exponent, measure_sbs, measure_wts, row};
use bgla_simnet::FifoScheduler;

fn main() {
    println!("E8: bytes on the wire — WTS vs SbS at f = 1\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "WTS bytes".into(),
            "SbS bytes".into(),
            "WTS max msg".into(),
            "SbS max msg".into(),
            "ratio".into(),
        ])
    );
    let ns = [4usize, 7, 10, 13, 16];
    let (mut xs, mut wts_big, mut sbs_big) = (Vec::new(), Vec::new(), Vec::new());
    for &n in &ns {
        let w = measure_wts(n, 1, Box::new(FifoScheduler));
        let s = measure_sbs(n, 1, Box::new(FifoScheduler));
        println!(
            "{}",
            row(&[
                n.to_string(),
                w.total_bytes.to_string(),
                s.total_bytes.to_string(),
                w.max_message_bytes.to_string(),
                s.max_message_bytes.to_string(),
                format!("{:.1}x", s.total_bytes as f64 / w.total_bytes as f64),
            ])
        );
        xs.push(n as f64);
        wts_big.push(w.max_message_bytes as f64);
        sbs_big.push(s.max_message_bytes as f64);
    }
    let kw = growth_exponent(&xs, &wts_big);
    let ks = growth_exponent(&xs, &sbs_big);
    println!("\nLargest-message growth exponents: WTS {kw:.2} (≈1: a set of n values),");
    println!("SbS {ks:.2} (≈2: proofs are quorum×set = O(n²)).");
    assert!(ks > kw, "SbS messages must grow faster than WTS messages");
    assert!(ks > 1.5, "SbS max message should be ~quadratic, got {ks:.2}");
    println!("\nShape ✓: the signature algorithm's messages are asymptotically larger —");
    println!("the exact trade Section 8 announces.");
}
