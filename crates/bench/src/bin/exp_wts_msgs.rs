//! E3 (Section 5.1.3): WTS costs `O(n²)` messages per process — the
//! reliable broadcast dominates. Sweeps `n` at `f = ⌊(n−1)/3⌋` and fits
//! the growth exponent.

use bgla_bench::{growth_exponent, measure_wts, row};
use bgla_core::SystemConfig;
use bgla_simnet::FifoScheduler;

fn main() {
    println!("E3: WTS message complexity per process (claim: O(n²))\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "f".into(),
            "msgs/process".into(),
            "total msgs".into(),
            "msgs/n²".into(),
        ])
    );

    let ns = [4usize, 7, 10, 16, 22, 31, 43];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let f = SystemConfig::max_f(n);
        let m = measure_wts(n, f, Box::new(FifoScheduler));
        assert!(m.all_decided);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                m.max_msgs_per_process.to_string(),
                m.total_msgs.to_string(),
                format!("{:.2}", m.max_msgs_per_process as f64 / (n * n) as f64),
            ])
        );
        xs.push(n as f64);
        ys.push(m.max_msgs_per_process as f64);
    }

    let k = growth_exponent(&xs, &ys);
    println!("\nEmpirical growth exponent of msgs/process in n: {k:.2} (theory: 2.0)");
    assert!(
        (1.6..=2.4).contains(&k),
        "per-process message growth {k:.2} is not quadratic-shaped"
    );
    println!("Shape ✓: quadratic, as the O(n²) reliable-broadcast cost predicts.");
}
