//! E3 (Section 5.1.3): WTS costs `O(n²)` messages per process — the
//! reliable broadcast dominates. Sweeps `n` at `f = ⌊(n−1)/3⌋` and fits
//! the growth exponent. Each system size runs on its own core.

use bgla_bench::{growth_exponent, measure_wts_sim, row, run_indexed};
use bgla_core::wts::WtsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{FifoScheduler, Metrics, SimulationBuilder};

fn main() {
    println!("E3: WTS message complexity per process (claim: O(n²))\n");
    println!(
        "{}",
        row(&[
            "n".into(),
            "f".into(),
            "msgs/process".into(),
            "total msgs".into(),
            "msgs/n²".into(),
        ])
    );

    let ns = [4usize, 7, 10, 16, 22, 31, 43];
    // One sharded cell per system size; each returns its measurement and
    // full metrics, which are merged into sweep-wide totals below.
    let results = run_indexed(ns.len(), |i| {
        let n = ns[i];
        let f = SystemConfig::max_f(n);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
        for p in 0..n {
            b = b.add(Box::new(WtsProcess::new(p, config, p as u64)));
        }
        let mut sim = b.build();
        sim.run(u64::MAX / 2);
        let m = measure_wts_sim(&sim, n);
        (n, f, m.all_decided, sim.metrics().clone())
    });

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut sweep_totals = Metrics::default();
    for (n, f, all_decided, metrics) in &results {
        assert!(all_decided);
        let per_proc = metrics.max_sent_per_process();
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                per_proc.to_string(),
                metrics.total_sent().to_string(),
                format!("{:.2}", per_proc as f64 / (n * n) as f64),
            ])
        );
        xs.push(*n as f64);
        ys.push(per_proc as f64);
        sweep_totals.merge(metrics);
    }

    let k = growth_exponent(&xs, &ys);
    println!(
        "\nSweep totals: {} messages / {} bytes across {} runs.",
        sweep_totals.total_sent(),
        sweep_totals.total_bytes(),
        results.len()
    );
    println!("Empirical growth exponent of msgs/process in n: {k:.2} (theory: 2.0)");
    assert!(
        (1.6..=2.4).contains(&k),
        "per-process message growth {k:.2} is not quadratic-shaped"
    );
    println!("Shape ✓: quadratic, as the O(n²) reliable-broadcast cost predicts.");
}
