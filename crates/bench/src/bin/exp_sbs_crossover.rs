//! E7 (Theorem 8, Section 8.1): SbS decides within `5 + 4f` message
//! delays and, for `f = O(1)`, costs `O(n)` messages per proposer —
//! versus WTS's `O(n²)`. Finds the crossover. Both sweeps run
//! sharded: one cell per `f` for the delay bound, one cell per `n` for
//! the crossover (each cell measuring WTS and SbS back-to-back).

use bgla_bench::{growth_exponent, measure_sbs, measure_wts, row, run_indexed};
use bgla_simnet::FifoScheduler;

fn main() {
    println!("E7: SbS vs WTS — delays and per-proposer message crossover\n");

    // ---- Delay bound sweep (f grows) ----
    println!("SbS decision delays vs the 5+4f bound:");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "depth".into(),
            "bound".into(),
            "ok".into()
        ])
    );
    let delay_cells = run_indexed(4, |i| {
        let f = i + 1;
        (f, measure_sbs(3 * f + 1, f, Box::new(FifoScheduler::new())))
    });
    for (f, m) in delay_cells {
        assert!(m.all_decided);
        let n = 3 * f + 1;
        let bound = 5 + 4 * f as u64;
        println!(
            "{}",
            row(&[
                f.to_string(),
                n.to_string(),
                m.max_depth.to_string(),
                bound.to_string(),
                if m.max_depth <= bound { "✓" } else { "✗" }.into(),
            ])
        );
        assert!(m.max_depth <= bound, "Theorem 8 bound exceeded");
    }

    // ---- Message crossover at fixed f = 1 ----
    println!("\nPer-proposer messages at f = 1 (claim: WTS ~n², SbS ~n):");
    println!(
        "{}",
        row(&[
            "n".into(),
            "WTS msg/proc".into(),
            "SbS msg/proc".into(),
            "winner".into(),
        ])
    );
    let ns = [4usize, 7, 10, 13, 16, 19];
    let crossover_cells = run_indexed(ns.len(), |i| {
        let n = ns[i];
        (
            n,
            measure_wts(n, 1, Box::new(FifoScheduler::new())),
            measure_sbs(n, 1, Box::new(FifoScheduler::new())),
        )
    });
    let (mut wts_ys, mut sbs_ys, mut xs) = (Vec::new(), Vec::new(), Vec::new());
    let mut crossover = None;
    for (n, w, s) in crossover_cells {
        assert!(w.all_decided && s.all_decided);
        let winner = if s.max_msgs_per_process < w.max_msgs_per_process {
            if crossover.is_none() {
                crossover = Some(n);
            }
            "SbS"
        } else {
            "WTS"
        };
        println!(
            "{}",
            row(&[
                n.to_string(),
                w.max_msgs_per_process.to_string(),
                s.max_msgs_per_process.to_string(),
                winner.into(),
            ])
        );
        xs.push(n as f64);
        wts_ys.push(w.max_msgs_per_process as f64);
        sbs_ys.push(s.max_msgs_per_process as f64);
    }
    let kw = growth_exponent(&xs, &wts_ys);
    let ks = growth_exponent(&xs, &sbs_ys);
    println!("\nGrowth exponents: WTS {kw:.2} (theory 2), SbS {ks:.2} (theory 1)");
    assert!(kw > 1.6, "WTS should be ~quadratic, got {kw:.2}");
    assert!(ks < 1.4, "SbS should be ~linear, got {ks:.2}");
    match crossover {
        Some(n) => println!("SbS overtakes WTS in message count from n = {n} on."),
        None => println!("No crossover in this range (SbS already ahead or behind everywhere)."),
    }
    println!("\nShape ✓: quadratic vs linear, exactly the paper's Section 8 trade.");
}
