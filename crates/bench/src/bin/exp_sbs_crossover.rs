//! E7 (Theorem 8, Section 8.1): SbS decides within `5 + 4f` message
//! delays and, for `f = O(1)`, costs `O(n)` messages per proposer —
//! versus WTS's `O(n²)`. Finds the crossover.

use bgla_bench::{growth_exponent, measure_sbs, measure_wts, row};
use bgla_simnet::FifoScheduler;

fn main() {
    println!("E7: SbS vs WTS — delays and per-proposer message crossover\n");

    // ---- Delay bound sweep (f grows) ----
    println!("SbS decision delays vs the 5+4f bound:");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "depth".into(),
            "bound".into(),
            "ok".into()
        ])
    );
    for f in 1..=4usize {
        let n = 3 * f + 1;
        let m = measure_sbs(n, f, Box::new(FifoScheduler));
        assert!(m.all_decided);
        let bound = 5 + 4 * f as u64;
        println!(
            "{}",
            row(&[
                f.to_string(),
                n.to_string(),
                m.max_depth.to_string(),
                bound.to_string(),
                if m.max_depth <= bound { "✓" } else { "✗" }.into(),
            ])
        );
        assert!(m.max_depth <= bound, "Theorem 8 bound exceeded");
    }

    // ---- Message crossover at fixed f = 1 ----
    println!("\nPer-proposer messages at f = 1 (claim: WTS ~n², SbS ~n):");
    println!(
        "{}",
        row(&[
            "n".into(),
            "WTS msg/proc".into(),
            "SbS msg/proc".into(),
            "winner".into(),
        ])
    );
    let ns = [4usize, 7, 10, 13, 16, 19];
    let (mut wts_ys, mut sbs_ys, mut xs) = (Vec::new(), Vec::new(), Vec::new());
    let mut crossover = None;
    for &n in &ns {
        let w = measure_wts(n, 1, Box::new(FifoScheduler));
        let s = measure_sbs(n, 1, Box::new(FifoScheduler));
        assert!(w.all_decided && s.all_decided);
        let winner = if s.max_msgs_per_process < w.max_msgs_per_process {
            if crossover.is_none() {
                crossover = Some(n);
            }
            "SbS"
        } else {
            "WTS"
        };
        println!(
            "{}",
            row(&[
                n.to_string(),
                w.max_msgs_per_process.to_string(),
                s.max_msgs_per_process.to_string(),
                winner.into(),
            ])
        );
        xs.push(n as f64);
        wts_ys.push(w.max_msgs_per_process as f64);
        sbs_ys.push(s.max_msgs_per_process as f64);
    }
    let kw = growth_exponent(&xs, &wts_ys);
    let ks = growth_exponent(&xs, &sbs_ys);
    println!("\nGrowth exponents: WTS {kw:.2} (theory 2), SbS {ks:.2} (theory 1)");
    assert!(kw > 1.6, "WTS should be ~quadratic, got {kw:.2}");
    assert!(ks < 1.4, "SbS should be ~linear, got {ks:.2}");
    match crossover {
        Some(n) => println!("SbS overtakes WTS in message count from n = {n} on."),
        None => println!("No crossover in this range (SbS already ahead or behind everywhere)."),
    }
    println!("\nShape ✓: quadratic vs linear, exactly the paper's Section 8 trade.");
}
