//! E4 (Lemma 3 / Lemma 16): a correct proposer refines its proposal at
//! most `f` times in WTS and at most `2f` times in SbS.
//!
//! The refinement-maximizing workload: `f` processes disclose *late*, so
//! correct proposers start proposing with `n − f` values and learn the
//! stragglers' values only through nacks — each nack adding at least one
//! value, bounded by the number of missing safe values.

use bgla_bench::row;
use bgla_core::adversary::LateDiscloser;
use bgla_core::harness::{wts_report, wts_system_with_adversaries};
use bgla_core::sbs::SbsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{RandomScheduler, SimulationBuilder};

fn main() {
    println!("E4: refinement bounds (WTS ≤ f, SbS ≤ 2f)\n");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "WTS max ref".into(),
            "bound f".into(),
            "SbS max ref".into(),
            "bound 2f".into(),
        ])
    );

    for f in 1..=4usize {
        let n = 3 * f + 1;

        // WTS with f late-disclosers, many seeds.
        let mut wts_max = 0u64;
        for seed in 0..10 {
            let (mut sim, _, byz) = wts_system_with_adversaries(
                n,
                f,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| {
                    (i >= n - f).then(|| Box::new(LateDiscloser::new(1_000 + i as u64, 10)) as _)
                },
            );
            sim.run(u64::MAX / 2);
            let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
            wts_max = wts_max.max(wts_report(&sim, &correct).max_refinements);
        }

        // SbS all-correct under reordering (refinements arise from
        // proposal races).
        let mut sbs_max = 0u64;
        for seed in 0..5 {
            let config = SystemConfig::new(n, f);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
            for i in 0..n {
                b = b.add(Box::new(SbsProcess::new(i, config, i as u64)));
            }
            let mut sim = b.build();
            sim.run(u64::MAX / 2);
            for i in 0..n {
                let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
                sbs_max = sbs_max.max(p.refinements);
            }
        }

        println!(
            "{}",
            row(&[
                f.to_string(),
                n.to_string(),
                wts_max.to_string(),
                f.to_string(),
                sbs_max.to_string(),
                (2 * f).to_string(),
            ])
        );
        assert!(wts_max <= f as u64, "Lemma 3 violated");
        assert!(sbs_max <= 2 * f as u64, "Lemma 16 violated");
    }
    println!("\nShape ✓: refinements never exceed f (WTS) / 2f (SbS), growing with f.");
}
