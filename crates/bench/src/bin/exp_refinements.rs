//! E4 (Lemma 3 / Lemma 16): a correct proposer refines its proposal at
//! most `f` times in WTS and at most `2f` times in SbS.
//!
//! The refinement-maximizing workload: `f` processes disclose *late*, so
//! correct proposers start proposing with `n − f` values and learn the
//! stragglers' values only through nacks — each nack adding at least one
//! value, bounded by the number of missing safe values. The full
//! (f × seed) grid is flattened into one sharded sweep.

use bgla_bench::{row, run_indexed};
use bgla_core::adversary::LateDiscloser;
use bgla_core::harness::{wts_report, wts_system_with_adversaries};
use bgla_core::sbs::SbsProcess;
use bgla_core::SystemConfig;
use bgla_simnet::{RandomScheduler, SimulationBuilder};

const FS: [usize; 4] = [1, 2, 3, 4];
const WTS_SEEDS: u64 = 10;
const SBS_SEEDS: u64 = 5;

fn wts_max_refinements(f: usize, seed: u64) -> u64 {
    let n = 3 * f + 1;
    let (mut sim, _, byz) = wts_system_with_adversaries(
        n,
        f,
        |i| i as u64,
        Box::new(RandomScheduler::new(seed)),
        |i, _| (i >= n - f).then(|| Box::new(LateDiscloser::new(1_000 + i as u64, 10)) as _),
    );
    sim.run(u64::MAX / 2);
    let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
    wts_report(&sim, &correct).max_refinements
}

fn sbs_max_refinements(f: usize, seed: u64) -> u64 {
    let n = 3 * f + 1;
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
    for i in 0..n {
        b = b.add(Box::new(SbsProcess::new(i, config, i as u64)));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    (0..n)
        .map(|i| sim.process_as::<SbsProcess<u64>>(i).unwrap().refinements)
        .max()
        .unwrap_or(0)
}

fn main() {
    println!("E4: refinement bounds (WTS ≤ f, SbS ≤ 2f)\n");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "WTS max ref".into(),
            "bound f".into(),
            "SbS max ref".into(),
            "bound 2f".into(),
        ])
    );

    // Flatten the grid: first all (f, seed) WTS cells, then the SbS
    // ones. Every cell is an independent seeded run.
    let wts_cells = FS.len() * WTS_SEEDS as usize;
    let sbs_cells = FS.len() * SBS_SEEDS as usize;
    let results = run_indexed(wts_cells + sbs_cells, |i| {
        if i < wts_cells {
            let f = FS[i / WTS_SEEDS as usize];
            wts_max_refinements(f, (i % WTS_SEEDS as usize) as u64)
        } else {
            let j = i - wts_cells;
            let f = FS[j / SBS_SEEDS as usize];
            sbs_max_refinements(f, (j % SBS_SEEDS as usize) as u64)
        }
    });

    for (fi, &f) in FS.iter().enumerate() {
        let n = 3 * f + 1;
        let wts_max = results[fi * WTS_SEEDS as usize..(fi + 1) * WTS_SEEDS as usize]
            .iter()
            .copied()
            .max()
            .unwrap();
        let base = wts_cells + fi * SBS_SEEDS as usize;
        let sbs_max = results[base..base + SBS_SEEDS as usize]
            .iter()
            .copied()
            .max()
            .unwrap();
        println!(
            "{}",
            row(&[
                f.to_string(),
                n.to_string(),
                wts_max.to_string(),
                f.to_string(),
                sbs_max.to_string(),
                (2 * f).to_string(),
            ])
        );
        assert!(wts_max <= f as u64, "Lemma 3 violated");
        assert!(sbs_max <= 2 * f as u64, "Lemma 16 violated");
    }
    println!("\nShape ✓: refinements never exceed f (WTS) / 2f (SbS), growing with f.");
}
