//! Multi-process localhost smoke for the TCP runtime.
//!
//! Unlike `crates/net`'s tests and the workspace conformance suite —
//! which run every node as a thread of one process — this binary
//! re-execs itself so each WTS node lives in its **own OS process**
//! with its own address space, sockets, and `SharedCounters`, talking
//! to its peers over real localhost TCP. That is the deployment shape
//! the in-process runtime models, so this is the end-to-end proof that
//! nothing secretly depends on shared memory.
//!
//! Coordination is by files in a scratch directory: each child binds
//! `127.0.0.1:0`, publishes its address as `addr.<i>` (atomic rename),
//! waits for all peers' addresses, runs agreement, and publishes its
//! decision as `done.<i>`. The parent validates the union of decisions
//! against the LA spec surface a parent can check from outside:
//! inclusivity (own input in own decision), comparability (decisions
//! form a chain), and non-triviality (every decided value is someone's
//! input).
//!
//! Passes: a clean run, then a fault-injected run (drops, duplicates,
//! reorders, mid-frame resets — the link layer must mask all of it).
//! `NET_SMOKE=1` keeps only the clean pass for a CI-sized check.

use bgla_core::wts::WtsProcess;
use bgla_core::SystemConfig;
use bgla_net::{
    FaultConfig, FaultPlan, LinkConfig, NetConfig, NodeSpec, PollerPool, SharedCounters, TcpNode,
};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;
const F: usize = 1;
const DEADLINE: Duration = Duration::from_secs(60);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("node") => {
            let dir = PathBuf::from(&args[2]);
            let me: usize = args[3].parse().expect("node index");
            let faulty: bool = args[4].parse().expect("fault flag");
            child(&dir, me, faulty);
            ExitCode::SUCCESS
        }
        _ => parent(),
    }
}

// ---------------------------------------------------------------------------
// Parent: spawn, collect, validate
// ---------------------------------------------------------------------------

fn parent() -> ExitCode {
    let smoke = std::env::var("NET_SMOKE").is_ok();
    if let Err(why) = run_system("clean", false) {
        eprintln!("net_smoke: FAIL: {why}");
        return ExitCode::FAILURE;
    }
    if smoke {
        println!("net_smoke: NET_SMOKE set, skipping the fault-injected pass");
    } else if let Err(why) = run_system("faulty", true) {
        eprintln!("net_smoke: FAIL: {why}");
        return ExitCode::FAILURE;
    }
    println!("net_smoke: PASS");
    ExitCode::SUCCESS
}

fn run_system(label: &str, faulty: bool) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("bgla-net-smoke-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let exe = std::env::current_exe().expect("current_exe");
    let mut children: Vec<Child> = (0..N)
        .map(|i| {
            Command::new(&exe)
                .arg("node")
                .arg(&dir)
                .arg(i.to_string())
                .arg(faulty.to_string())
                .spawn()
                .expect("spawn node process")
        })
        .collect();

    let start = Instant::now();
    let decisions = loop {
        if let Some(d) = read_decisions(&dir) {
            break d;
        }
        let mut dead = None;
        for (i, c) in children.iter_mut().enumerate() {
            if let Ok(Some(status)) = c.try_wait() {
                if !status.success() {
                    dead = Some(format!("node {i} exited {status}"));
                    break;
                }
            }
        }
        if let Some(why) = dead {
            return Err(cleanup(&mut children, &dir, why));
        }
        if start.elapsed() > DEADLINE {
            return Err(cleanup(
                &mut children,
                &dir,
                "deadline waiting for decisions".to_string(),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut failed = None;
    for c in &mut children {
        let status = c.wait().expect("wait child");
        if !status.success() && failed.is_none() {
            failed = Some(format!("node exited {status}"));
        }
    }
    if let Some(why) = failed {
        return Err(cleanup(&mut children, &dir, why));
    }
    let _ = std::fs::remove_dir_all(&dir);
    validate(label, &decisions);
    Ok(())
}

fn read_decisions(dir: &Path) -> Option<Vec<BTreeSet<u64>>> {
    let mut out = Vec::with_capacity(N);
    for i in 0..N {
        let text = std::fs::read_to_string(dir.join(format!("done.{i}"))).ok()?;
        out.push(
            text.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.trim().parse().expect("decision value"))
                .collect(),
        );
    }
    Some(out)
}

fn validate(label: &str, decisions: &[BTreeSet<u64>]) {
    let inputs: BTreeSet<u64> = (0..N).map(|i| 100 + i as u64).collect();
    for (i, d) in decisions.iter().enumerate() {
        assert!(
            d.contains(&(100 + i as u64)),
            "{label}: node {i} decision {d:?} misses its own input (inclusivity)"
        );
        assert!(
            d.is_subset(&inputs),
            "{label}: node {i} decided a value nobody proposed (non-triviality)"
        );
    }
    for a in decisions {
        for b in decisions {
            assert!(
                a.is_subset(b) || b.is_subset(a),
                "{label}: incomparable decisions {a:?} / {b:?}"
            );
        }
    }
    println!(
        "net_smoke: {label} pass ok — {N} processes, decisions {:?}",
        decisions.iter().map(BTreeSet::len).collect::<Vec<_>>()
    );
}

/// Kills the remaining children, removes the scratch dir, and hands
/// the failure reason back to the caller.
fn cleanup(children: &mut [Child], dir: &Path, why: String) -> String {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    let _ = std::fs::remove_dir_all(dir);
    why
}

// ---------------------------------------------------------------------------
// Child: one node, one OS process
// ---------------------------------------------------------------------------

fn child(dir: &Path, me: usize, faulty: bool) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr");
    publish(dir, &format!("addr.{me}"), &addr.to_string());

    let start = Instant::now();
    let mut peers: Vec<Option<SocketAddr>> = vec![None; N];
    while peers
        .iter()
        .enumerate()
        .any(|(i, p)| i != me && p.is_none())
    {
        for (i, slot) in peers.iter_mut().enumerate() {
            if i == me || slot.is_some() {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("addr.{i}"))) {
                *slot = Some(text.trim().parse().expect("peer addr"));
            }
        }
        assert!(
            start.elapsed() < DEADLINE,
            "node {me}: peers never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let faults = if faulty {
        // The per-mille chaos rates, minus the partition window: each
        // process only sees its own frame indices here, so a window
        // that is survivable in-process can starve a cross-process
        // handshake. Drops/dups/reorders/resets still exercise every
        // masking path.
        FaultPlan::new(
            0xD15C * (me as u64 + 1),
            FaultConfig {
                partition: None,
                ..FaultConfig::chaos()
            },
        )
    } else {
        FaultPlan::none()
    };
    let cfg = NetConfig {
        link: LinkConfig {
            rto_ms: 25,
            ..LinkConfig::default()
        },
        faults,
        seed: 0x5E0 + me as u64,
        ..NetConfig::default()
    };
    let config = SystemConfig::new(N, F);
    let spec = NodeSpec {
        me,
        n: N,
        proc: Box::new(WtsProcess::new(me, config, 100 + me as u64)),
        observer: None,
        listener,
        peers,
    };
    let shared = Arc::new(SharedCounters::default());
    let pool = PollerPool::new(cfg.resolved_poller_threads());
    let mut node = TcpNode::spawn(spec, cfg, shared.clone(), &pool).expect("spawn node threads");
    shared.go.store(true, Ordering::SeqCst);

    // Poll for the local decision, then publish it.
    let decision = loop {
        let mut d: Option<Vec<u64>> = None;
        node.with_process(&mut |p| {
            let w = p
                .as_any()
                .downcast_ref::<WtsProcess<u64>>()
                .expect("child process is a WtsProcess");
            d = w.decision.as_ref().map(|s| s.iter().copied().collect());
        });
        if let Some(d) = d {
            break d;
        }
        assert!(start.elapsed() < DEADLINE, "node {me}: no decision");
        std::thread::sleep(Duration::from_millis(10));
    };
    let text = decision
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    publish(dir, &format!("done.{me}"), &text);

    // Keep serving acks/retransmits until every peer has decided, plus
    // a short drain so in-flight frames land before the sockets die.
    while (0..N).any(|i| !dir.join(format!("done.{i}")).exists()) {
        assert!(start.elapsed() < DEADLINE, "node {me}: peers never decided");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));
    shared.stop.store(true, Ordering::SeqCst);
    node.join();
    pool.shutdown();
}

/// Writes `name` atomically (tmp + rename) so readers never observe a
/// half-written file.
fn publish(dir: &Path, name: &str, text: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, text).expect("write tmp");
    std::fs::rename(&tmp, dir.join(name)).expect("rename into place");
}
