//! E2 (Theorem 3): WTS decides within `2f + 5` message delays.
//!
//! **Metric note.** The asynchronous "message delay" measure normalizes
//! a run's duration by its maximum message delay; its worst case over
//! schedules is attained by *lockstep* executions where every message
//! takes the maximum delay — which the FIFO scheduler realizes exactly
//! (causal depth = normalized time there). Under heavy reordering the
//! raw *causal hop count* can exceed the normalized-time bound even
//! though the theorem still holds (fast hops cost < 1 delay each); we
//! report those hop counts as a separate, informational column.
//!
//! The asserted rows: lockstep honest runs, and lockstep runs with `f`
//! late-disclosing stragglers that maximize nack-driven refinements.

use bgla_bench::{measure_wts, row, run_indexed};
use bgla_core::adversary::LateDiscloser;
use bgla_core::harness::{wts_report, wts_system_with_adversaries};
use bgla_simnet::{FifoScheduler, RandomScheduler};

struct DelayCell {
    f: usize,
    n: usize,
    d_lockstep: u64,
    d_adv: u64,
    hops_random: u64,
}

fn measure_cell(f: usize) -> DelayCell {
    let n = 3 * f + 1;

    // Lockstep honest run: depth == normalized time.
    let d_lockstep = measure_wts(n, f, Box::new(FifoScheduler::new())).max_depth;

    // Lockstep with f late-disclosers (refinement-maximizing).
    let d_adv = {
        let (mut sim, _, byz) = wts_system_with_adversaries(
            n,
            f,
            |i| i as u64,
            Box::new(FifoScheduler::new()),
            |i, _| (i >= n - f).then(|| Box::new(LateDiscloser::new(1_000 + i as u64, 12)) as _),
        );
        sim.run(u64::MAX / 2);
        let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
        let rep = wts_report(&sim, &correct);
        rep.depths.iter().copied().max().unwrap_or(0)
    };

    // Informational: raw causal hops under random reordering (can
    // exceed the bound without contradicting it — see module docs).
    let hops_random = (0..5)
        .map(|s| measure_wts(n, f, Box::new(RandomScheduler::new(s))).max_depth)
        .max()
        .unwrap();

    DelayCell {
        f,
        n,
        d_lockstep,
        d_adv,
        hops_random,
    }
}

fn main() {
    println!("E2: WTS decision latency in message delays (bound: 2f + 5)\n");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "lockstep".into(),
            "lockstep+adv".into(),
            "bound 2f+5".into(),
            "ok".into(),
            "hops(random)".into(),
        ])
    );

    // Each f-cell is an independent deterministic simulation bundle:
    // sweep them across all cores.
    let cells = run_indexed(6, |i| measure_cell(i + 1));
    for c in cells {
        let bound = 2 * c.f as u64 + 5;
        let worst = c.d_lockstep.max(c.d_adv);
        println!(
            "{}",
            row(&[
                c.f.to_string(),
                c.n.to_string(),
                c.d_lockstep.to_string(),
                c.d_adv.to_string(),
                bound.to_string(),
                if worst <= bound {
                    "✓"
                } else {
                    "✗ EXCEEDED"
                }
                .into(),
                c.hops_random.to_string(),
            ])
        );
        assert!(worst <= bound, "Theorem 3 bound exceeded in a lockstep run");
    }
    println!(
        "\nShape ✓: lockstep (= normalized-time worst case) delays stay below 2f+5 and\n\
         grow linearly in f (Theorem 3). Raw causal hop counts under unbounded\n\
         reordering are larger, as expected for the un-normalized metric."
    );
}
