//! E2 (Theorem 3): WTS decides within `2f + 5` message delays.
//!
//! **Metric note.** The asynchronous "message delay" measure normalizes
//! a run's duration by its maximum message delay; its worst case over
//! schedules is attained by *lockstep* executions where every message
//! takes the maximum delay — which the FIFO scheduler realizes exactly
//! (causal depth = normalized time there). Under heavy reordering the
//! raw *causal hop count* can exceed the normalized-time bound even
//! though the theorem still holds (fast hops cost < 1 delay each); we
//! report those hop counts as a separate, informational column.
//!
//! The asserted rows: lockstep honest runs, and lockstep runs with `f`
//! late-disclosing stragglers that maximize nack-driven refinements.

use bgla_bench::{measure_wts, row};
use bgla_core::adversary::LateDiscloser;
use bgla_core::harness::{wts_report, wts_system_with_adversaries};
use bgla_simnet::{FifoScheduler, RandomScheduler};

fn main() {
    println!("E2: WTS decision latency in message delays (bound: 2f + 5)\n");
    println!(
        "{}",
        row(&[
            "f".into(),
            "n".into(),
            "lockstep".into(),
            "lockstep+adv".into(),
            "bound 2f+5".into(),
            "ok".into(),
            "hops(random)".into(),
        ])
    );

    for f in 1..=6usize {
        let n = 3 * f + 1;
        let bound = 2 * f as u64 + 5;

        // Lockstep honest run: depth == normalized time.
        let d_lockstep = measure_wts(n, f, Box::new(FifoScheduler)).max_depth;

        // Lockstep with f late-disclosers (refinement-maximizing).
        let mut d_adv = 0;
        {
            let (mut sim, _, byz) = wts_system_with_adversaries(
                n,
                f,
                |i| i as u64,
                Box::new(FifoScheduler),
                |i, _| {
                    (i >= n - f).then(|| Box::new(LateDiscloser::new(1_000 + i as u64, 12)) as _)
                },
            );
            sim.run(u64::MAX / 2);
            let correct: Vec<usize> = (0..n).filter(|i| !byz.contains(i)).collect();
            let rep = wts_report(&sim, &correct);
            d_adv = d_adv.max(rep.depths.iter().copied().max().unwrap_or(0));
        }

        // Informational: raw causal hops under random reordering (can
        // exceed the bound without contradicting it — see module docs).
        let hops_random = (0..5)
            .map(|s| measure_wts(n, f, Box::new(RandomScheduler::new(s))).max_depth)
            .max()
            .unwrap();

        let worst = d_lockstep.max(d_adv);
        println!(
            "{}",
            row(&[
                f.to_string(),
                n.to_string(),
                d_lockstep.to_string(),
                d_adv.to_string(),
                bound.to_string(),
                if worst <= bound {
                    "✓"
                } else {
                    "✗ EXCEEDED"
                }
                .into(),
                hops_random.to_string(),
            ])
        );
        assert!(worst <= bound, "Theorem 3 bound exceeded in a lockstep run");
    }
    println!(
        "\nShape ✓: lockstep (= normalized-time worst case) delays stay below 2f+5 and\n\
         grow linearly in f (Theorem 3). Raw causal hop counts under unbounded\n\
         reordering are larger, as expected for the un-normalized metric."
    );
}
