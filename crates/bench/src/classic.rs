//! The pre-slab simulation engine, kept verbatim as an *executable
//! specification*.
//!
//! Before the slab/incremental-scheduler redesign, `bgla_simnet` stored
//! in-flight envelopes in a `Vec`, collected a fresh metadata vector for
//! the scheduler on every step, let the scheduler scan it O(n), and
//! `Vec::remove`d from the middle. This module preserves that engine and
//! its schedulers exactly, for two purposes:
//!
//! * the **differential equivalence suite** (`tests/differential.rs`)
//!   asserts that seeded runs over the slab-backed engine produce
//!   *identical* delivery traces, metrics and decisions;
//! * the **`simstep` bench** measures the old engine's per-delivery cost
//!   next to the new one's, which is where the committed
//!   `BENCH_simstep.json` speedup numbers come from.
//!
//! Do not "optimize" this module: its O(in-flight) behavior is the point.

use bgla_simnet::{Context, InFlight, Metrics, Process, ProcessId, TraceEvent, WireMessage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-redesign scheduler interface: a full metadata scan per step.
pub trait ClassicScheduler: Send {
    /// Returns the index (into `inflight`) of the message to deliver.
    fn choose(&mut self, inflight: &[InFlight], now: u64) -> usize;
}

/// Old FIFO: linear min-seq scan.
#[derive(Default)]
pub struct ClassicFifo;

impl ClassicScheduler for ClassicFifo {
    fn choose(&mut self, inflight: &[InFlight], _now: u64) -> usize {
        inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
            .expect("scheduler called with no in-flight messages")
    }
}

/// Old LIFO: linear max-seq scan.
#[derive(Default)]
pub struct ClassicLifo;

impl ClassicScheduler for ClassicLifo {
    fn choose(&mut self, inflight: &[InFlight], _now: u64) -> usize {
        inflight
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
            .expect("scheduler called with no in-flight messages")
    }
}

/// Old seeded-random: uniform index into the (seq-ordered) vector.
pub struct ClassicRandom {
    rng: StdRng,
}

impl ClassicRandom {
    /// Same seeding as [`bgla_simnet::RandomScheduler`].
    pub fn new(seed: u64) -> Self {
        ClassicRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ClassicScheduler for ClassicRandom {
    fn choose(&mut self, inflight: &[InFlight], _now: u64) -> usize {
        self.rng.gen_range(0..inflight.len())
    }
}

/// Old bounded-skew delay: linear min scan over (due, seq).
pub struct ClassicDelay {
    seed: u64,
    max_skew: u64,
}

impl ClassicDelay {
    /// Same parameters as [`bgla_simnet::DelayScheduler`].
    pub fn new(seed: u64, max_skew: u64) -> Self {
        ClassicDelay { seed, max_skew }
    }

    fn delay_of(&self, seq: u64) -> u64 {
        if self.max_skew == 0 {
            return 0;
        }
        let mut z = seq
            .wrapping_add(self.seed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z % (self.max_skew + 1)
    }
}

impl ClassicScheduler for ClassicDelay {
    fn choose(&mut self, inflight: &[InFlight], _now: u64) -> usize {
        inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (m.seq + self.delay_of(m.seq), m.seq))
            .map(|(i, _)| i)
            .expect("scheduler called with no in-flight messages")
    }
}

/// Old link-starving adversary: filter, then delegate on the filtered
/// view.
pub struct ClassicTargeted {
    starved: Vec<(ProcessId, ProcessId)>,
    release_after: u64,
    inner: Box<dyn ClassicScheduler>,
}

impl ClassicTargeted {
    /// Same parameters as [`bgla_simnet::TargetedScheduler`].
    pub fn new(links: Vec<(ProcessId, ProcessId)>, inner: Box<dyn ClassicScheduler>) -> Self {
        ClassicTargeted {
            starved: links,
            release_after: u64::MAX,
            inner,
        }
    }

    /// Lifts starvation after `n` deliveries.
    pub fn with_release_after(mut self, n: u64) -> Self {
        self.release_after = n;
        self
    }

    fn is_starved(&self, m: &InFlight, now: u64) -> bool {
        now < self.release_after && self.starved.contains(&(m.from, m.to))
    }
}

impl ClassicScheduler for ClassicTargeted {
    fn choose(&mut self, inflight: &[InFlight], now: u64) -> usize {
        let eligible: Vec<usize> = (0..inflight.len())
            .filter(|&i| !self.is_starved(&inflight[i], now))
            .collect();
        if eligible.is_empty() {
            return inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.seq)
                .map(|(i, _)| i)
                .expect("scheduler called with no in-flight messages");
        }
        let view: Vec<InFlight> = eligible.iter().map(|&i| inflight[i]).collect();
        eligible[self.inner.choose(&view, now)]
    }
}

/// Old partition-then-heal adversary.
pub struct ClassicPartition {
    left: Vec<ProcessId>,
    heal_after: u64,
    inner: Box<dyn ClassicScheduler>,
}

impl ClassicPartition {
    /// Same parameters as [`bgla_simnet::PartitionScheduler`].
    pub fn new(left: Vec<ProcessId>, heal_after: u64, inner: Box<dyn ClassicScheduler>) -> Self {
        ClassicPartition {
            left,
            heal_after,
            inner,
        }
    }

    fn crosses(&self, m: &InFlight) -> bool {
        self.left.contains(&m.from) != self.left.contains(&m.to)
    }
}

impl ClassicScheduler for ClassicPartition {
    fn choose(&mut self, inflight: &[InFlight], now: u64) -> usize {
        if now >= self.heal_after {
            return self.inner.choose(inflight, now);
        }
        let eligible: Vec<usize> = (0..inflight.len())
            .filter(|&i| !self.crosses(&inflight[i]))
            .collect();
        if eligible.is_empty() {
            return inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.seq)
                .map(|(i, _)| i)
                .expect("scheduler called with no in-flight messages");
        }
        let view: Vec<InFlight> = eligible.iter().map(|&i| inflight[i]).collect();
        eligible[self.inner.choose(&view, now)]
    }
}

struct Envelope<M> {
    meta: InFlight,
    msg: M,
    depth: u64,
}

/// The Vec-backed engine: O(in-flight) metadata collection, scan, and
/// middle removal on every delivery — the behavior the slab engine must
/// reproduce delivery-for-delivery.
pub struct ClassicSimulation<M: WireMessage> {
    procs: Vec<Box<dyn Process<M>>>,
    depths: Vec<u64>,
    events: Vec<u64>,
    inflight: Vec<Envelope<M>>,
    scheduler: Box<dyn ClassicScheduler>,
    metrics: Metrics,
    seq: u64,
    delivered: u64,
    started: bool,
    trace: Vec<TraceEvent>,
}

impl<M: WireMessage + 'static> ClassicSimulation<M> {
    /// Builds the reference simulation.
    pub fn new(procs: Vec<Box<dyn Process<M>>>, scheduler: Box<dyn ClassicScheduler>) -> Self {
        let n = procs.len();
        ClassicSimulation {
            depths: vec![0; n],
            events: vec![0; n],
            procs,
            inflight: Vec::new(),
            scheduler,
            metrics: Metrics {
                sent_by: vec![0; n],
                bytes_by: vec![0; n],
                ..Default::default()
            },
            seq: 0,
            delivered: 0,
            started: false,
            trace: Vec::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Recorded delivery events (always on, unlike the production
    /// engine's opt-in tracing).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Causal depth of process `p`.
    pub fn depth_of(&self, p: ProcessId) -> u64 {
        self.depths[p]
    }

    /// Downcast helper mirroring [`bgla_simnet::Simulation::process_as`].
    pub fn process_as<T: 'static>(&self, p: ProcessId) -> Option<&T> {
        self.procs[p].as_any().downcast_ref::<T>()
    }

    fn record_send(&mut self, from: ProcessId, kind: &'static str, bytes: usize) {
        self.metrics.sent_by[from] += 1;
        self.metrics.bytes_by[from] += bytes as u64;
        *self.metrics.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.metrics.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
        self.metrics.max_message_bytes = self.metrics.max_message_bytes.max(bytes);
    }

    fn flush_outbox(&mut self, from: ProcessId, ctx: &mut Context<M>, depth: u64) {
        for (to, msg) in ctx.take_outbox() {
            let kind = msg.kind();
            let bytes = msg.wire_size();
            self.record_send(from, kind, bytes);
            self.inflight.push(Envelope {
                meta: InFlight {
                    from,
                    to,
                    seq: self.seq,
                    sent_at: self.delivered,
                    kind,
                },
                msg,
                depth,
            });
            self.seq += 1;
        }
    }

    /// Runs `on_start` on every process (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.n();
        for p in 0..n {
            let mut ctx = Context::for_embedding(p, n, 0, 0);
            self.procs[p].on_start(&mut ctx);
            self.flush_outbox(p, &mut ctx, 1);
        }
    }

    /// Delivers exactly one message the old way: collect metas, scan,
    /// `Vec::remove`. Returns `false` when nothing is in flight.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.start();
        }
        if self.inflight.is_empty() {
            return false;
        }
        let metas: Vec<InFlight> = self.inflight.iter().map(|e| e.meta).collect();
        let idx = self.scheduler.choose(&metas, self.delivered);
        assert!(
            idx < self.inflight.len(),
            "scheduler returned invalid index"
        );
        let env = self.inflight.remove(idx);
        let to = env.meta.to;
        let n = self.n();

        self.depths[to] = self.depths[to].max(env.depth);
        self.events[to] += 1;
        let mut ctx = Context::for_embedding(to, n, self.depths[to], self.events[to]);
        self.trace.push(TraceEvent {
            step: self.delivered,
            from: env.meta.from,
            to,
            kind: env.msg.kind(),
            depth: self.depths[to],
            bytes: env.msg.wire_size(),
        });
        self.procs[to].on_message(env.meta.from, env.msg, &mut ctx);
        let out_depth = self.depths[to] + 1;
        self.flush_outbox(to, &mut ctx, out_depth);

        self.delivered += 1;
        self.metrics.delivered = self.delivered;
        true
    }

    /// Runs until quiescence or the delivery budget; returns (deliveries,
    /// quiescent).
    pub fn run(&mut self, max_deliveries: u64) -> (u64, bool) {
        self.start();
        while self.delivered < max_deliveries {
            if !self.step() {
                return (self.delivered, true);
            }
        }
        (self.delivered, self.inflight.is_empty())
    }
}
