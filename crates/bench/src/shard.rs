//! Sharded experiment driver: runs independent simulations across all
//! cores.
//!
//! Every `exp_*` binary sweeps a grid of independent configurations
//! (seeds × system sizes × adversaries). Each cell is a self-contained
//! deterministic simulation, so the sweep parallelizes embarrassingly:
//! workers (crossbeam scoped threads) pull cell indexes from a shared
//! counter, run them, and the driver reassembles results **in input
//! order** — the merged output is byte-identical to a sequential sweep
//! regardless of thread interleaving, because each cell's seeding is a
//! pure function of its index and no RNG state is shared across cells.
//!
//! Shard count defaults to the machine's available parallelism; set
//! `BGLA_SHARDS=1` to force a sequential run (e.g. to verify
//! determinism) or any other value to cap the worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: `BGLA_SHARDS` if set (min 1), else available
/// parallelism.
pub fn shard_count() -> usize {
    if let Ok(v) = std::env::var("BGLA_SHARDS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            return k.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|k| k.get())
        .unwrap_or(1)
}

/// Runs `job(0..count)` across `shards` worker threads and returns the
/// results in index order. The caller's closure must derive all
/// randomness from the index (deterministic per-cell seeding) for the
/// output to be schedule-independent — all workloads in this crate do.
pub fn run_indexed_with<T, F>(shards: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if shards <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
    crossbeam::thread::scope(|s| {
        for _ in 0..shards.min(count) {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            s.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let result = job(idx);
                let _ = tx.send((idx, result));
            });
        }
    })
    .expect("sharded worker panicked");
    drop(tx);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(count);
    while let Ok(pair) = rx.recv() {
        collected.push(pair);
    }
    assert_eq!(collected.len(), count, "sharded run lost results");
    collected.sort_by_key(|&(idx, _)| idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`run_indexed_with`] at the default shard count.
pub fn run_indexed<T, F>(count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(shard_count(), count, job)
}

/// Runs one job per seed across all cores; results are in `seeds` order.
pub fn run_seeds<T, F>(seeds: &[u64], job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_indexed(seeds.len(), |i| job(seeds[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_simnet::Metrics;

    #[test]
    fn sharded_results_are_in_input_order() {
        let out = run_indexed_with(4, 64, |i| i * 10);
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_matches_sequential_byte_for_byte() {
        // A real measurement job: seeded WTS runs. The Debug rendering
        // captures every field, so string equality is byte-identity.
        let job = |seed: u64| {
            format!(
                "{:?}",
                crate::measure_wts(4, 1, Box::new(bgla_simnet::RandomScheduler::new(seed)))
            )
        };
        let sequential: Vec<String> = (0..8).map(|s| job(s as u64)).collect();
        let sharded = run_indexed_with(4, 8, |i| job(i as u64));
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn merged_metrics_match_sequential_merge() {
        let job = |seed: u64| {
            let config = bgla_core::SystemConfig::new(4, 1);
            let mut b = bgla_simnet::SimulationBuilder::new()
                .scheduler(Box::new(bgla_simnet::RandomScheduler::new(seed)));
            for i in 0..4 {
                b = b.add(Box::new(bgla_core::wts::WtsProcess::new(
                    i, config, i as u64,
                )));
            }
            let mut sim = b.build();
            sim.run(u64::MAX / 2);
            sim.metrics().clone()
        };
        let merge = |runs: &[Metrics]| {
            let mut total = Metrics::default();
            for m in runs {
                total.merge(m);
            }
            total
        };
        let sequential = merge(&(0..6).map(|s| job(s as u64)).collect::<Vec<_>>());
        let sharded = merge(&run_indexed_with(3, 6, |i| job(i as u64)));
        assert_eq!(sequential, sharded);
    }
}
