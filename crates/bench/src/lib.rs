//! Shared experiment harness for the benchmark suite.
//!
//! Every quantitative claim in the paper maps to one `exp_*` binary (see
//! DESIGN.md's per-experiment index); this library holds the workload
//! builders and measurement helpers they share with the Criterion
//! benches.

pub mod classic;
pub mod shard;

pub use shard::{run_indexed, run_indexed_with, run_seeds, shard_count};

use bgla_core::gwts::{GwtsMsg, GwtsProcess};
use bgla_core::sbs::SbsProcess;
use bgla_core::wts::{WtsMsg, WtsProcess};
use bgla_core::SystemConfig;
use bgla_simnet::{FifoScheduler, Scheduler, Simulation, SimulationBuilder};
use std::collections::BTreeMap;

/// Measurements from one one-shot agreement run.
#[derive(Debug, Clone, Default)]
pub struct RunMeasurement {
    /// Worst decision latency in message delays across correct
    /// processes.
    pub max_depth: u64,
    /// Messages sent by the busiest process.
    pub max_msgs_per_process: u64,
    /// Total messages.
    pub total_msgs: u64,
    /// Total bytes on the wire.
    pub total_bytes: u64,
    /// Largest single message in bytes.
    pub max_message_bytes: usize,
    /// Worst refinement count.
    pub max_refinements: u64,
    /// Whether every correct process decided.
    pub all_decided: bool,
    /// Proof-of-safety references shipped (one per proven value; zero
    /// for algorithms without proofs).
    pub proof_refs: u64,
    /// Distinct proofs shipped inline after per-message interning.
    pub proofs_interned: u64,
    /// Distinct proofs shipped as id references (delta payloads).
    pub proofs_by_ref: u64,
    /// Proof bytes as transmitted inline (each distinct proof
    /// once/message).
    pub proof_bytes_interned: u64,
    /// Bytes paid for by-reference proofs.
    pub proof_ref_bytes: u64,
    /// Proof bytes a flat per-value encoding would have paid.
    pub proof_bytes_flat: u64,
}

/// Runs all-correct WTS and measures it.
pub fn measure_wts(n: usize, f: usize, scheduler: Box<dyn Scheduler>) -> RunMeasurement {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::new(i, config, i as u64)));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    measure_wts_sim(&sim, n)
}

/// Extracts measurements from a finished WTS simulation (correct
/// processes assumed to be `0..n_correct`).
pub fn measure_wts_sim(sim: &Simulation<WtsMsg<u64>>, n_correct: usize) -> RunMeasurement {
    let mut m = RunMeasurement {
        all_decided: true,
        ..Default::default()
    };
    for i in 0..n_correct {
        let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
        match p.decision_depth {
            Some(d) => m.max_depth = m.max_depth.max(d),
            None => m.all_decided = false,
        }
        m.max_refinements = m.max_refinements.max(p.refinements);
    }
    m.max_msgs_per_process = sim.metrics().max_sent_per_process();
    m.total_msgs = sim.metrics().total_sent();
    m.total_bytes = sim.metrics().total_bytes();
    m.max_message_bytes = sim.metrics().max_message_bytes;
    m
}

/// Runs all-correct SbS and measures it.
pub fn measure_sbs(n: usize, f: usize, scheduler: Box<dyn Scheduler>) -> RunMeasurement {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(SbsProcess::new(i, config, i as u64)));
    }
    let mut sim = b.build();
    sim.run(u64::MAX / 2);
    let mut m = RunMeasurement {
        all_decided: true,
        ..Default::default()
    };
    for i in 0..n {
        let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
        match p.decision_depth {
            Some(d) => m.max_depth = m.max_depth.max(d),
            None => m.all_decided = false,
        }
        m.max_refinements = m.max_refinements.max(p.refinements);
    }
    m.max_msgs_per_process = sim.metrics().max_sent_per_process();
    m.total_msgs = sim.metrics().total_sent();
    m.total_bytes = sim.metrics().total_bytes();
    m.max_message_bytes = sim.metrics().max_message_bytes;
    m.proof_refs = sim.metrics().proof_refs;
    m.proofs_interned = sim.metrics().proofs_interned;
    m.proofs_by_ref = sim.metrics().proofs_by_ref;
    m.proof_bytes_interned = sim.metrics().proof_bytes_interned;
    m.proof_ref_bytes = sim.metrics().proof_ref_bytes;
    m.proof_bytes_flat = sim.metrics().proof_bytes_flat;
    m
}

/// Builds an all-correct GWTS system with `values_per_round` inputs per
/// process in each non-drain round.
pub fn gwts_sim(
    n: usize,
    f: usize,
    rounds: u64,
    values_per_round: u64,
    scheduler: Box<dyn Scheduler>,
) -> Simulation<GwtsMsg<u64>> {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in 0..rounds.saturating_sub(2) {
            let vals = (0..values_per_round)
                .map(|k| (i as u64) * 1_000_000 + r * 1_000 + k)
                .collect();
            schedule.insert(r, vals);
        }
        b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
    }
    b.build()
}

/// Measurements from a GWTS stream run.
#[derive(Debug, Clone, Default)]
pub struct GwtsMeasurement {
    /// Total decisions performed by correct processes.
    pub decisions: u64,
    /// Messages per decision (system-wide).
    pub msgs_per_decision: f64,
    /// Bytes per decision.
    pub bytes_per_decision: f64,
    /// Max per-round refinement count observed.
    pub max_refinements: u64,
}

/// Runs an all-correct GWTS stream and measures per-decision costs.
pub fn measure_gwts(n: usize, f: usize, rounds: u64, values_per_round: u64) -> GwtsMeasurement {
    let mut sim = gwts_sim(
        n,
        f,
        rounds,
        values_per_round,
        Box::new(FifoScheduler::new()),
    );
    sim.run(u64::MAX / 2);
    let mut decisions = 0u64;
    let mut max_refinements = 0u64;
    for i in 0..n {
        let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
        decisions += p.decisions.len() as u64;
        max_refinements = max_refinements.max(p.refinements.values().copied().max().unwrap_or(0));
    }
    GwtsMeasurement {
        decisions,
        msgs_per_decision: sim.metrics().total_sent() as f64 / decisions.max(1) as f64,
        bytes_per_decision: sim.metrics().total_bytes() as f64 / decisions.max(1) as f64,
        max_refinements,
    }
}

/// Fits `y = c·x^k` through the first and last points and returns `k` —
/// the empirical growth exponent used by the shape checks.
pub fn growth_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(xs.len() >= 2 && xs.len() == ys.len());
    let (x0, y0) = (xs[0], ys[0]);
    let (x1, y1) = (xs[xs.len() - 1], ys[ys.len() - 1]);
    (y1 / y0).ln() / (x1 / x0).ln()
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wts_measurement_sane() {
        let m = measure_wts(4, 1, Box::new(FifoScheduler::new()));
        assert!(m.all_decided);
        assert!(m.max_depth <= 7);
        assert!(m.total_msgs > 0);
    }

    #[test]
    fn growth_exponent_detects_quadratic() {
        let xs = [4.0, 8.0, 16.0];
        let ys = [16.0, 64.0, 256.0];
        let k = growth_exponent(&xs, &ys);
        assert!((k - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gwts_measurement_counts_decisions() {
        let m = measure_gwts(4, 1, 3, 1);
        assert_eq!(m.decisions, 12); // 4 processes x 3 rounds
        assert!(m.msgs_per_decision > 0.0);
    }
}
