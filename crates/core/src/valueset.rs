//! `ValueSet` — the shared-ownership value-set representation all four
//! agreement algorithms ship in their messages, plus the delta-message
//! machinery built on top of it.
//!
//! # Why not `BTreeSet`
//!
//! The paper's algorithms are message-heavy by design (WTS is `O(n²)`
//! messages per process, GWTS `O(f·n²)` per decision) and every message
//! carries a value set. With `BTreeSet<V>` payloads each send, receive
//! and re-deliver pays an `O(|set|)` deep clone — node-per-element
//! allocation — so wall clock scales as `O(n² · |set|)` allocations
//! instead of the paper's message bound. `ValueSet` is an `Arc`-backed
//! sorted `Vec<V>`:
//!
//! * **clone is `O(1)`** (one atomic increment) — broadcasting a set to
//!   `n` processes costs `n` refcounts, not `n` tree copies;
//! * **join / union is `O(k + m)`** by merge-walk, with `O(1)` fast
//!   paths when either side already contains the other (the common case
//!   on the hot path: proposals grow monotonically);
//! * **subset / superset are `O(k + m)`** merge-walks (`BTreeSet`'s are
//!   `O(k · log m)` probes with pointer chasing);
//! * **`wire_size` is cached** at construction, so metering a message is
//!   `O(1)` instead of an `O(|set|)` fold per send.
//!
//! Decisions remain *logically* sets-of-values-under-union, exactly as
//! paper §3.1 prescribes — only the physical representation changed.
//!
//! # Delta messages
//!
//! Proposal traffic re-sends mostly-unchanged sets: a refinement adds a
//! handful of values to a set the acceptor has already seen. The
//! [`SetUpdate`] payload lets `Proposal`/`Accept` rounds carry only the
//! values added since the last set the receiver demonstrably holds:
//!
//! * the proposer ([`DeltaSender`]) snapshots `Proposed_set` at every
//!   timestamp it broadcasts (cheap: snapshots are `O(1)` clones) and
//!   remembers, per acceptor, the newest timestamp that acceptor has
//!   acked or nacked;
//! * a later broadcast to that acceptor carries
//!   `Delta { base_ts, added }` with `added = current − snapshot(base_ts)`;
//! * on **first contact** (no reply seen yet) or when the snapshot has
//!   been pruned, the proposer falls back to `Full`;
//! * the acceptor ([`DeltaReceiver`]) stores each proposal it actually
//!   consumed, keyed by `(proposer, ts)`, and reconstructs
//!   `full = base ∪ added`. A delta whose base it does not hold (only
//!   possible for Byzantine senders — a correct proposer deltas only
//!   against timestamps the acceptor itself replied to) is a detected
//!   **gap** and is dropped.
//!
//! ## Wire format (modeled)
//!
//! `SetUpdate` is metered by [`crate::value::Value::wire_size`] as:
//!
//! ```text
//! Full(set)                  : 1 (tag) + 8 (len) + Σ wire_size(v)
//! Delta { base_ts, added }   : 1 (tag) + 8 (base_ts) + 8 (len) + Σ wire_size(v in added)
//! ```

use crate::value::Value;
use bgla_codec::{CodecError, Reader, Wire, Writer};
use bgla_simnet::ProcessId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An immutable-by-sharing sorted set of values with `O(1)` clone.
///
/// Mutating operations are copy-on-write: they reuse the allocation when
/// this handle is the only owner and copy otherwise.
pub struct ValueSet<V: Value> {
    /// Strictly-sorted, deduplicated elements.
    // bgla-lint: allow(wire-coverage, "encoded: encode walks the elements via iter(), which this field backs")
    items: Arc<Vec<V>>,
    /// Cached `Σ wire_size(item)` (excludes the 8-byte length prefix).
    // bgla-lint: allow(wire-coverage, "derived cache; from_sorted recomputes it when decode rebuilds the set")
    wire: usize,
}

impl<V: Value> ValueSet<V> {
    /// The empty set.
    pub fn new() -> Self {
        ValueSet {
            items: Arc::new(Vec::new()),
            wire: 0,
        }
    }

    /// A one-element set.
    pub fn singleton(v: V) -> Self {
        let wire = v.wire_size();
        ValueSet {
            items: Arc::new(vec![v]),
            wire,
        }
    }

    /// Builds from a vector that is already strictly sorted.
    fn from_sorted(items: Vec<V>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        let wire = items.iter().map(Value::wire_size).sum();
        ValueSet {
            items: Arc::new(items),
            wire,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.items.iter()
    }

    /// The elements as a sorted slice.
    pub fn as_slice(&self) -> &[V] {
        &self.items
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: &V) -> bool {
        self.items.binary_search(v).is_ok()
    }

    /// Modeled serialized size: 8-byte length prefix + elements. Cached —
    /// `O(1)`, unlike a per-send fold over a `BTreeSet`.
    pub fn wire_size(&self) -> usize {
        8 + self.wire
    }

    /// Inserts `v`; returns whether the set changed. Copy-on-write: the
    /// allocation is reused when uniquely owned.
    pub fn insert(&mut self, v: V) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.wire += v.wire_size();
                match Arc::get_mut(&mut self.items) {
                    Some(vec) => vec.insert(pos, v),
                    None => {
                        let mut vec = Vec::with_capacity(self.items.len() + 1);
                        // bgla-lint: allow(byzantine-panic, "pos <= len from binary_search Err")
                        vec.extend_from_slice(&self.items[..pos]);
                        vec.push(v);
                        // bgla-lint: allow(byzantine-panic, "pos <= len from binary_search Err")
                        vec.extend_from_slice(&self.items[pos..]);
                        self.items = Arc::new(vec);
                    }
                }
                true
            }
        }
    }

    /// `self ⊆ other`, by merge-walk (`O(k + m)`).
    pub fn is_subset(&self, other: &ValueSet<V>) -> bool {
        if Arc::ptr_eq(&self.items, &other.items) || self.is_empty() {
            return true;
        }
        if self.len() > other.len() {
            return false;
        }
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut j = 0;
        for x in a {
            // Advance through `b` until x could be found.
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by j < b.len()")
            while j < b.len() && b[j] < *x {
                j += 1;
            }
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by the j == b.len() check")
            if j == b.len() || b[j] != *x {
                return false;
            }
            j += 1;
        }
        true
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &ValueSet<V>) -> bool {
        other.is_subset(self)
    }

    /// Joins `other` into `self` (set union — the semilattice join);
    /// returns whether `self` grew. Fast paths: sharing the peer's `Arc`
    /// when `self` is a subset, no-op when `self` is a superset.
    pub fn join_with(&mut self, other: &ValueSet<V>) -> bool {
        if Arc::ptr_eq(&self.items, &other.items) || other.is_empty() {
            return false;
        }
        if self.is_empty() || self.is_subset(other) {
            let grew = self.len() < other.len();
            self.items = Arc::clone(&other.items);
            self.wire = other.wire;
            return grew;
        }
        if other.is_subset(self) {
            return false;
        }
        // True merge.
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        // bgla-lint: allow(byzantine-panic, "i and j are <= len at loop exit; suffix slicing from a cursor is in-bounds")
        out.extend_from_slice(&a[i..]);
        // bgla-lint: allow(byzantine-panic, "i and j are <= len at loop exit; suffix slicing from a cursor is in-bounds")
        out.extend_from_slice(&b[j..]);
        *self = ValueSet::from_sorted(out);
        true
    }

    /// The join `self ∪ other` as a new handle.
    pub fn join(&self, other: &ValueSet<V>) -> ValueSet<V> {
        let mut out = self.clone();
        out.join_with(other);
        out
    }

    /// `self ∖ other`, by merge-walk.
    pub fn difference(&self, other: &ValueSet<V>) -> ValueSet<V> {
        if other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.items, &other.items) {
            return ValueSet::new();
        }
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut out = Vec::new();
        let mut j = 0;
        for x in a {
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by j < b.len()")
            while j < b.len() && b[j] < *x {
                j += 1;
            }
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by the j == b.len() check")
            if j == b.len() || b[j] != *x {
                out.push(x.clone());
            }
        }
        ValueSet::from_sorted(out)
    }

    /// Extends with the values of an iterator (sorts once).
    pub fn extend<I: IntoIterator<Item = V>>(&mut self, values: I) {
        let addition: ValueSet<V> = values.into_iter().collect();
        self.join_with(&addition);
    }
}

impl<V: Value> Default for ValueSet<V> {
    fn default() -> Self {
        ValueSet::new()
    }
}

impl<V: Value> Clone for ValueSet<V> {
    fn clone(&self) -> Self {
        ValueSet {
            items: Arc::clone(&self.items),
            wire: self.wire,
        }
    }
}

impl<V: Value> PartialEq for ValueSet<V> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.items, &other.items) || self.items == other.items
    }
}
impl<V: Value> Eq for ValueSet<V> {}

impl<V: Value> PartialOrd for ValueSet<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: Value> Ord for ValueSet<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.items, &other.items) {
            return std::cmp::Ordering::Equal;
        }
        self.items.cmp(&other.items)
    }
}

impl<V: Value + std::hash::Hash> std::hash::Hash for ValueSet<V> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.items.hash(state)
    }
}

impl<V: Value> std::fmt::Debug for ValueSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl<V: Value> FromIterator<V> for ValueSet<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        let mut items: Vec<V> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        ValueSet::from_sorted(items)
    }
}

impl<V: Value> From<BTreeSet<V>> for ValueSet<V> {
    fn from(set: BTreeSet<V>) -> Self {
        ValueSet::from_sorted(set.into_iter().collect())
    }
}

impl<'a, V: Value> IntoIterator for &'a ValueSet<V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<V: Value> IntoIterator for ValueSet<V> {
    type Item = V;
    type IntoIter = std::vec::IntoIter<V>;
    fn into_iter(self) -> Self::IntoIter {
        match Arc::try_unwrap(self.items) {
            Ok(vec) => vec.into_iter(),
            Err(arc) => (*arc).clone().into_iter(),
        }
    }
}

impl<V: Value + bgla_crypto::ToBytes> bgla_crypto::ToBytes for ValueSet<V> {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).write_bytes(out);
        for v in self.iter() {
            v.write_bytes(out);
        }
    }
}

impl<V: Value> Wire for ValueSet<V> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self.iter() {
            v.encode(w);
        }
    }
    /// Decoding enforces the strict-sort invariant rather than
    /// re-canonicalizing: a shuffled or duplicated encoding is rejected,
    /// keeping the codec injective (required by the content-addressed
    /// proof store) and the constructor's invariant airtight.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut items: Vec<V> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = V::decode(r)?;
            if let Some(prev) = items.last() {
                if *prev >= v {
                    return Err(CodecError::Invalid("value set not strictly ascending"));
                }
            }
            items.push(v);
        }
        Ok(ValueSet::from_sorted(items))
    }
}

impl<V: Value> Wire for SetUpdate<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            SetUpdate::Full(set) => {
                w.u8(0);
                set.encode(w);
            }
            SetUpdate::Delta { base_ts, added } => {
                w.u8(1);
                w.u64(*base_ts);
                added.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(SetUpdate::Full(ValueSet::decode(r)?)),
            1 => Ok(SetUpdate::Delta {
                base_ts: r.u64()?,
                added: ValueSet::decode(r)?,
            }),
            _ => Err(CodecError::Invalid("set update tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Delta messages
// ---------------------------------------------------------------------------

/// A proposal payload: either the full set or only the values added
/// since a base the receiver is known to hold. See the module docs for
/// the wire format.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SetUpdate<V: Value> {
    /// The whole set (first contact / gap fallback).
    Full(ValueSet<V>),
    /// Only the additions relative to the proposal this receiver
    /// consumed at `base_ts`.
    Delta {
        /// Timestamp of the base proposal the receiver already holds.
        base_ts: u64,
        /// `current ∖ base`.
        added: ValueSet<V>,
    },
}

impl<V: Value> SetUpdate<V> {
    /// Modeled serialized size (see module docs).
    pub fn wire_size(&self) -> usize {
        match self {
            SetUpdate::Full(set) => 1 + set.wire_size(),
            SetUpdate::Delta { added, .. } => 1 + 8 + added.wire_size(),
        }
    }

    /// Number of values carried (diagnostics).
    pub fn carried(&self) -> usize {
        match self {
            SetUpdate::Full(set) => set.len(),
            SetUpdate::Delta { added, .. } => added.len(),
        }
    }
}

/// Proposer-side delta bookkeeping: snapshots of `Proposed_set` by
/// timestamp plus each acceptor's newest replied-to timestamp.
#[derive(Debug)]
pub struct DeltaSender<V: Value> {
    /// ts → `Proposed_set` at that ts (`O(1)` clones make this cheap).
    snapshots: BTreeMap<u64, ValueSet<V>>,
    /// Acceptor → newest ts it acked/nacked (proof it holds snapshot(ts)).
    last_replied: BTreeMap<ProcessId, u64>,
    enabled: bool,
}

/// Snapshots retained by a [`DeltaSender`]; refinements are bounded (≤ f
/// per WTS instance, ≤ f per GWTS round) but GWTS timestamps grow with
/// the stream, so old snapshots must not accumulate. Must be ≥
/// [`RECEIVER_BASE_CAP`] so every base a correct sender may delta
/// against still has its snapshot.
const SENDER_SNAPSHOT_CAP: usize = 32;

/// Per-proposer reconstructed proposals retained by a [`DeltaReceiver`].
///
/// Resolvability invariant: a receiver records at most one base per
/// distinct timestamp of a proposer and prunes to the newest
/// `RECEIVER_BASE_CAP`, so a base at `base_ts` survives as long as
/// fewer than `RECEIVER_BASE_CAP` larger timestamps were consumed —
/// guaranteed while `current_ts − base_ts < RECEIVER_BASE_CAP`. The
/// sender enforces exactly that bound in [`DeltaSender::encode_for`]
/// (falling back to `Full` otherwise), which is why a delta gap at the
/// receiver can only come from a Byzantine sender.
const RECEIVER_BASE_CAP: usize = 8;

impl<V: Value> DeltaSender<V> {
    /// Creates the bookkeeping; when `enabled` is false every encode
    /// yields `Full` (the ablation baseline).
    pub fn new(enabled: bool) -> Self {
        DeltaSender {
            snapshots: BTreeMap::new(),
            last_replied: BTreeMap::new(),
            enabled,
        }
    }

    /// Whether delta encoding is enabled (the configuration knob, not
    /// bookkeeping — survives crash snapshots even though watermarks
    /// don't).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records the proposal broadcast at `ts` (call once per broadcast).
    pub fn record_broadcast(&mut self, ts: u64, set: &ValueSet<V>) {
        self.snapshots.insert(ts, set.clone());
        while self.snapshots.len() > SENDER_SNAPSHOT_CAP {
            // bgla-lint: allow(byzantine-panic, "nonempty: the while condition holds only when len > SENDER_SNAPSHOT_CAP >= 1")
            let oldest = *self.snapshots.keys().next().expect("nonempty");
            self.snapshots.remove(&oldest);
        }
    }

    /// Records that `from` replied (ack or nack) to the proposal of
    /// `ts` — it therefore holds that proposal. Ignores timestamps we
    /// never broadcast (Byzantine claims).
    pub fn record_reply(&mut self, from: ProcessId, ts: u64) {
        if !self.snapshots.contains_key(&ts) {
            return;
        }
        let e = self.last_replied.entry(from).or_insert(ts);
        *e = (*e).max(ts);
    }

    /// Encodes the proposal `current` (broadcast at `ts`) for acceptor
    /// `to`: a delta against the newest set `to` replied to when
    /// possible; the full set on first contact, on a pruned base, or
    /// when the base is too far behind for the receiver to still hold
    /// it (see [`RECEIVER_BASE_CAP`] — this bound is what makes a
    /// receiver-side gap a reliable Byzantine signal).
    pub fn encode_for(&self, to: ProcessId, ts: u64, current: &ValueSet<V>) -> SetUpdate<V> {
        if !self.enabled {
            return SetUpdate::Full(current.clone());
        }
        match self
            .last_replied
            .get(&to)
            .and_then(|base_ts| self.snapshots.get(base_ts).map(|s| (*base_ts, s)))
        {
            Some((base_ts, base)) if ts.saturating_sub(base_ts) < RECEIVER_BASE_CAP as u64 => {
                SetUpdate::Delta {
                    base_ts,
                    added: current.difference(base),
                }
            }
            _ => SetUpdate::Full(current.clone()),
        }
    }
}

/// Acceptor-side delta bookkeeping: the proposals actually consumed,
/// keyed by `(proposer, ts)`, so later deltas can be resolved.
#[derive(Debug, Default)]
pub struct DeltaReceiver<V: Value> {
    bases: BTreeMap<(ProcessId, u64), ValueSet<V>>,
}

impl<V: Value> DeltaReceiver<V> {
    /// Fresh receiver state.
    pub fn new() -> Self {
        DeltaReceiver {
            bases: BTreeMap::new(),
        }
    }

    /// Resolves an update from `from` into the full proposal. `None`
    /// means a detected gap: a delta whose base we do not hold (only
    /// Byzantine senders produce these — drop the message).
    pub fn resolve(&self, from: ProcessId, update: &SetUpdate<V>) -> Option<ValueSet<V>> {
        match update {
            SetUpdate::Full(set) => Some(set.clone()),
            SetUpdate::Delta { base_ts, added } => self
                .bases
                .get(&(from, *base_ts))
                .map(|base| base.join(added)),
        }
    }

    /// Records that the proposal `set` from `from` at `ts` was consumed
    /// (we are about to reply to it), making it a valid delta base.
    pub fn record(&mut self, from: ProcessId, ts: u64, set: &ValueSet<V>) {
        self.bases.insert((from, ts), set.clone());
        // Retain only the newest few bases per proposer.
        let held: Vec<u64> = self
            .bases
            .range((from, 0)..=(from, u64::MAX))
            .map(|((_, t), _)| *t)
            .collect();
        if held.len() > RECEIVER_BASE_CAP {
            // bgla-lint: allow(byzantine-panic, "slice start bounded: guarded by held.len() > RECEIVER_BASE_CAP")
            for t in &held[..held.len() - RECEIVER_BASE_CAP] {
                self.bases.remove(&(from, *t));
            }
        }
    }
}

/// Delta watermarks are encodable so they *can* travel (state transfer
/// over a real transport) — but crash-recovery snapshots intentionally
/// omit them: both sides' bookkeeping refers to what the *peer*
/// demonstrably holds, and after an amnesiac restart those claims are
/// stale. Recovery instead restarts delta tracking from scratch and
/// rides the existing gap→`Full` fallback (see the module docs of
/// [`crate::recovery`]).
impl<V: Value> Wire for DeltaSender<V> {
    fn encode(&self, w: &mut Writer) {
        self.snapshots.encode(w);
        self.last_replied.encode(w);
        self.enabled.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DeltaSender {
            snapshots: Wire::decode(r)?,
            last_replied: Wire::decode(r)?,
            enabled: Wire::decode(r)?,
        })
    }
}

impl<V: Value> Wire for DeltaReceiver<V> {
    fn encode(&self, w: &mut Writer) {
        self.bases.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DeltaReceiver {
            bases: Wire::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(v: &[u64]) -> ValueSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = vs(&[3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&2));
        assert!(!s.contains(&4));
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = vs(&[1, 2, 3]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.items, &b.items));
        assert_eq!(a, b);
    }

    #[test]
    fn insert_is_copy_on_write() {
        let mut a = vs(&[1, 3]);
        let b = a.clone();
        assert!(a.insert(2));
        assert!(!a.insert(2));
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert_eq!(b.as_slice(), &[1, 3], "shared peer must not see the write");
    }

    #[test]
    fn join_fast_paths_share() {
        let small = vs(&[1, 2]);
        let big = vs(&[1, 2, 3]);
        let mut x = small.clone();
        assert!(x.join_with(&big));
        assert!(
            Arc::ptr_eq(&x.items, &big.items),
            "subset join adopts the peer Arc"
        );
        let mut y = big.clone();
        assert!(!y.join_with(&small));
        assert!(Arc::ptr_eq(&y.items, &big.items));
    }

    #[test]
    fn join_merges_overlapping() {
        let mut a = vs(&[1, 3, 5]);
        assert!(a.join_with(&vs(&[2, 3, 6])));
        assert_eq!(a.as_slice(), &[1, 2, 3, 5, 6]);
    }

    #[test]
    fn subset_superset_difference() {
        let a = vs(&[1, 2, 3, 4]);
        let b = vs(&[2, 4]);
        assert!(b.is_subset(&a));
        assert!(a.is_superset(&b));
        assert!(!a.is_subset(&b));
        assert_eq!(a.difference(&b).as_slice(), &[1, 3]);
        assert_eq!(b.difference(&a).as_slice(), &[] as &[u64]);
    }

    #[test]
    fn wire_size_is_cached_and_correct() {
        let a = vs(&[1, 2, 3]);
        assert_eq!(a.wire_size(), 8 + 24);
        let mut b = a.clone();
        b.insert(4);
        assert_eq!(b.wire_size(), 8 + 32);
        assert_eq!(a.wire_size(), 8 + 24);
    }

    #[test]
    fn update_wire_sizes() {
        let full = SetUpdate::Full(vs(&[1, 2, 3]));
        assert_eq!(full.wire_size(), 1 + 8 + 24);
        let delta = SetUpdate::Delta {
            base_ts: 4,
            added: vs(&[9]),
        };
        assert_eq!(delta.wire_size(), 1 + 8 + 8 + 8);
    }

    #[test]
    fn delta_roundtrip_through_sender_and_receiver() {
        let mut tx: DeltaSender<u64> = DeltaSender::new(true);
        let mut rx: DeltaReceiver<u64> = DeltaReceiver::new();
        let s0 = vs(&[1, 2]);
        tx.record_broadcast(0, &s0);
        // First contact: full.
        let u0 = tx.encode_for(9, 0, &s0);
        assert!(matches!(u0, SetUpdate::Full(_)));
        let full0 = rx.resolve(9, &u0).unwrap();
        assert_eq!(full0, s0);
        rx.record(9, 0, &full0);
        tx.record_reply(9, 0);
        // Refinement: only the additions travel.
        let s1 = vs(&[1, 2, 7, 8]);
        tx.record_broadcast(1, &s1);
        let u1 = tx.encode_for(9, 1, &s1);
        match &u1 {
            SetUpdate::Delta { base_ts, added } => {
                assert_eq!(*base_ts, 0);
                assert_eq!(added.as_slice(), &[7, 8]);
            }
            other => panic!("expected delta, got {other:?}"),
        }
        assert_eq!(rx.resolve(9, &u1).unwrap(), s1);
    }

    #[test]
    fn unknown_base_is_a_detected_gap() {
        let rx: DeltaReceiver<u64> = DeltaReceiver::new();
        let bogus = SetUpdate::Delta {
            base_ts: 77,
            added: vs(&[1]),
        };
        assert!(rx.resolve(3, &bogus).is_none());
    }

    #[test]
    fn byzantine_reply_claims_are_ignored() {
        let mut tx: DeltaSender<u64> = DeltaSender::new(true);
        tx.record_broadcast(0, &vs(&[1]));
        tx.record_reply(4, 999); // never broadcast: ignored
        assert!(matches!(
            tx.encode_for(4, 1, &vs(&[1, 2])),
            SetUpdate::Full(_)
        ));
    }

    #[test]
    fn disabled_sender_always_sends_full() {
        let mut tx: DeltaSender<u64> = DeltaSender::new(false);
        let s = vs(&[1, 2, 3]);
        tx.record_broadcast(0, &s);
        tx.record_reply(1, 0);
        assert!(matches!(tx.encode_for(1, 0, &s), SetUpdate::Full(_)));
    }

    #[test]
    fn sender_snapshots_are_bounded() {
        let mut tx: DeltaSender<u64> = DeltaSender::new(true);
        for ts in 0..200u64 {
            tx.record_broadcast(ts, &vs(&[ts]));
        }
        assert!(tx.snapshots.len() <= SENDER_SNAPSHOT_CAP);
        // A reply to a pruned ts falls back to Full.
        tx.record_reply(2, 0);
        assert!(matches!(
            tx.encode_for(2, 199, &vs(&[1])),
            SetUpdate::Full(_)
        ));
    }

    /// A correct sender never deltas against a base the receiver may
    /// have pruned: once the base falls RECEIVER_BASE_CAP behind the
    /// current timestamp, encoding falls back to Full (regression for
    /// the slow-acceptor gap misclassification).
    #[test]
    fn stale_base_falls_back_to_full() {
        let mut tx: DeltaSender<u64> = DeltaSender::new(true);
        tx.record_broadcast(0, &vs(&[1]));
        tx.record_reply(5, 0);
        // Within the window: delta against ts 0 is fine.
        let near = RECEIVER_BASE_CAP as u64 - 1;
        tx.record_broadcast(near, &vs(&[1, 2]));
        assert!(matches!(
            tx.encode_for(5, near, &vs(&[1, 2])),
            SetUpdate::Delta { base_ts: 0, .. }
        ));
        // At the window edge the receiver may have pruned base 0: Full.
        let far = RECEIVER_BASE_CAP as u64;
        tx.record_broadcast(far, &vs(&[1, 2, 3]));
        assert!(matches!(
            tx.encode_for(5, far, &vs(&[1, 2, 3])),
            SetUpdate::Full(_)
        ));
        // Mirror on the receiver: consuming CAP newer proposals evicts
        // base 0, so the sender's fallback is exactly what keeps
        // correct traffic resolvable.
        let mut rx: DeltaReceiver<u64> = DeltaReceiver::new();
        rx.record(9, 0, &vs(&[1]));
        for ts in 1..=RECEIVER_BASE_CAP as u64 {
            rx.record(9, ts, &vs(&[1, ts]));
        }
        let delta0 = SetUpdate::Delta {
            base_ts: 0,
            added: vs(&[7]),
        };
        assert!(rx.resolve(9, &delta0).is_none(), "base 0 must be pruned");
        let delta_recent = SetUpdate::Delta {
            base_ts: RECEIVER_BASE_CAP as u64,
            added: vs(&[7]),
        };
        assert!(rx.resolve(9, &delta_recent).is_some());
    }

    #[test]
    fn receiver_bases_are_bounded_per_proposer() {
        let mut rx: DeltaReceiver<u64> = DeltaReceiver::new();
        for ts in 0..100u64 {
            rx.record(5, ts, &vs(&[ts]));
        }
        assert!(rx.bases.len() <= RECEIVER_BASE_CAP);
        rx.record(6, 0, &vs(&[1]));
        assert_eq!(
            rx.bases.range((6, 0)..=(6, u64::MAX)).count(),
            1,
            "per-proposer cap must not evict other proposers' bases"
        );
    }
}
