//! Byzantine (Generalized) Lattice Agreement — the algorithms of
//! Di Luna, Anceaume, Querzoni (2019).
//!
//! * [`wts`] — **Wait Till Safe** (Algorithms 1–2): one-shot Byzantine
//!   Lattice Agreement, optimal resilience `f ≤ (n−1)/3`, decision within
//!   `2f + 5` message delays, `O(n²)` messages per process.
//! * [`gwts`] — **Generalized WTS** (Algorithms 3–4): round-based
//!   agreement over infinite input streams; `O(f·n²)` messages per
//!   decision.
//! * [`sbs`] — **Safety by Signature** (Algorithms 8–10): one-shot LA
//!   with signatures, `O(n)` messages per proposer when `f = O(1)`,
//!   `5 + 4f` message delays.
//! * [`gsbs`] — the generalized signature-based variant sketched in
//!   Section 8.2, made concrete.
//! * [`spec`] — executable specification checkers for every property in
//!   the paper (Comparability, Inclusivity, Non-Triviality, Stability,
//!   Liveness, and their generalized forms).
//! * [`adversary`] — a library of Byzantine behaviors aimed at each proof
//!   obligation.
//! * [`harness`] — scenario builders shared by tests, examples, and the
//!   benchmark suite.
//!
//! The algorithms are written against the paper's canonical semilattice:
//! sets of opaque *values* under union (every join semilattice embeds into
//! one of these — Section 3.1 of the paper). A decision is therefore a
//! `BTreeSet<V>`; applications map it into their own lattice by joining
//! per-value contributions (see `bgla-rsm` for the RSM doing exactly
//! that).
#![warn(missing_docs)]


// Thresholds are written exactly as in the paper (`f + 1`, `2f + 1`,
// `⌊(n+f)/2⌋ + 1`); clippy's `x > y` rewrite would obscure the quorum math.
#![allow(clippy::int_plus_one)]

pub mod adversary;
pub mod config;
pub mod gsbs;
pub mod gwts;
pub mod harness;
pub mod sbs;
pub mod spec;
pub mod value;
pub mod wts;

pub use config::SystemConfig;
pub use value::Value;
