//! Byzantine (Generalized) Lattice Agreement — the algorithms of
//! Di Luna, Anceaume, Querzoni (2019).
//!
//! * [`wts`] — **Wait Till Safe** (Algorithms 1–2): one-shot Byzantine
//!   Lattice Agreement, optimal resilience `f ≤ (n−1)/3`, decision within
//!   `2f + 5` message delays, `O(n²)` messages per process.
//! * [`gwts`] — **Generalized WTS** (Algorithms 3–4): round-based
//!   agreement over infinite input streams; `O(f·n²)` messages per
//!   decision.
//! * [`sbs`] — **Safety by Signature** (Algorithms 8–10): one-shot LA
//!   with signatures, `O(n)` messages per proposer when `f = O(1)`,
//!   `5 + 4f` message delays.
//! * [`gsbs`] — the generalized signature-based variant sketched in
//!   Section 8.2, made concrete.
//! * [`spec`] — executable specification checkers for every property in
//!   the paper (Comparability, Inclusivity, Non-Triviality, Stability,
//!   Liveness, and their generalized forms).
//! * [`linearize`] — trace-level conformance: replays a recorded full
//!   history (deliveries + harness-observed propose/refine/decide ops)
//!   and verifies the safety battery at *every prefix*, producing a
//!   linearization witness against the sequential join object or a
//!   minimal violating prefix.
//! * [`search`] — adversarial schedule search: sweeps
//!   [`bgla_simnet::SearchScheduler`] seeds through the trace checker
//!   and shrinks any violation to a minimal, replayable
//!   counterexample schedule.
//! * [`adversary`] — a library of Byzantine behaviors aimed at each proof
//!   obligation.
//! * [`harness`] — scenario builders shared by tests, examples, and the
//!   benchmark suite.
//!
//! The algorithms are written against the paper's canonical semilattice:
//! sets of opaque *values* under union (every join semilattice embeds into
//! one of these — Section 3.1 of the paper). A decision is therefore
//! *logically* a set of values; physically it is a [`valueset::ValueSet`]
//! — an `Arc`-backed sorted vector with `O(1)` clone, copy-on-write
//! insert and `O(k + m)` merge-walk join/subset — because the algorithms
//! clone and join these sets on every send, receive and re-delivery, and
//! a node-per-element `BTreeSet` made the hot path `O(n² · |set|)`
//! allocations. Applications map decisions into their own lattice by
//! joining per-value contributions (see `bgla-rsm` for the RSM doing
//! exactly that).
//!
//! Proposal traffic additionally uses **delta messages**
//! ([`valueset::SetUpdate`]): once an acceptor has acked/nacked a
//! proposer's set, later `ack_req` rounds carry only the values added
//! since that reply, with a full-set fallback on first contact or a
//! detected gap. See [`valueset`] for the wire format.
//!
//! The signature algorithms ship their *signed-record* sets (safe_req
//! echoes, proven proposal/accepted sets) as [`signedset::SignedSet`]s —
//! the same Arc-backed design, generic over signed records — and their
//! proofs of safety as [`proof::Proof`] handles whose content address
//! ([`bgla_crypto::ProofId`]) is interned at construction. Each distinct
//! proof is then **verified once per process**: `AllSafe` memoizes
//! full-proof verdicts (positive and negative) in a per-process
//! [`bgla_crypto::ProofCache`], so redelivered or re-shipped proofs cost
//! a hash lookup plus pure comparisons. `with_proof_interning(false)` on
//! [`sbs::SbsProcess`] / [`gsbs::GsbsProcess`] is the ablation switch
//! (identical decisions and traces, only the cost differs).
//!
//! Each distinct proof is also **transmitted once per peer**: the
//! proof-carrying payloads (`AckReq.proposed`, `Nack.accepted`) travel
//! as [`provendelta::ProvenUpdate`]s — deltas of the proven set against
//! a base the receiver replied to, with proofs the receiver demonstrably
//! holds named by [`bgla_crypto::ProofId`] reference and reconstructed
//! through a per-process [`bgla_crypto::ProofResolver`]. Unresolvable
//! proposals fall back to `Full` via a resync round trip (only Byzantine
//! senders trigger it); `with_proven_deltas(false)` is the ablation
//! switch (identical decisions and traces, only wire bytes differ).
#![warn(missing_docs)]
// Thresholds are written exactly as in the paper (`f + 1`, `2f + 1`,
// `⌊(n+f)/2⌋ + 1`); clippy's `x > y` rewrite would obscure the quorum math.
#![allow(clippy::int_plus_one)]

pub mod adversary;
pub mod config;
pub mod gsbs;
pub mod gwts;
pub mod harness;
pub mod linearize;
pub mod proof;
pub mod provendelta;
pub mod recovery;
pub mod sbs;
pub mod search;
pub mod signedset;
pub mod spec;
pub mod value;
pub mod valueset;
pub mod wts;

pub use config::SystemConfig;
pub use proof::{Proof, ProofAck};
pub use provendelta::{ProvenRecord, ProvenUpdate};
pub use recovery::{
    CorruptingStore, CrashEvent, CrashPlan, CrashTactic, DirStore, MemStore, RecoveryRun,
    RollbackStore, SnapshotPolicy, SnapshotStore,
};
pub use signedset::{SignedItem, SignedSet};
pub use value::Value;
pub use valueset::{SetUpdate, ValueSet};
