//! First-class, content-addressed proof-of-safety handles.
//!
//! A proof of safety is a quorum of signed safe-acks certifying one
//! safetying exchange; every value that exchange certified shares the
//! same proof (the paper's `<v, Safe_acks>` pairs). PR 1 shared proofs
//! through a bare `Arc<Vec<_>>`, which left two costs on the hot path:
//!
//! * deduplication (in `AllSafe` and in wire-size accounting) compared
//!   `Arc::as_ptr` identities with an `O(k²)` `Vec::contains` scan, and
//!   pointer identity misses *semantically identical* proofs arriving
//!   through different allocations;
//! * every verification re-serialized and re-hashed each ack just to
//!   probe the signature cache.
//!
//! [`Proof`] wraps the shared ack vector and **interns** its identity at
//! construction: a [`ProofId`] — the content hash of the ack multiset
//! (see [`bgla_crypto::proofstore`]) — plus the modeled wire size, both
//! computed exactly once. Because the only way to build a `Proof` is
//! [`Proof::new`], an id always matches its content — adversaries
//! construct through the same constructor and cannot attach a mismatched
//! id (the analogue of a receiver recomputing the hash after
//! deserializing).
//!
//! Downstream, deduplication becomes a hash lookup and the per-process
//! [`bgla_crypto::ProofCache`] memoizes full verification verdicts by
//! id — see the caching contract in [`bgla_crypto::proofstore`].

use bgla_codec::{CodecError, Reader, Wire, Writer};
use bgla_crypto::{ProofId, ProofIdBuilder};
use bgla_simnet::ProofSizes;
// bgla-lint: allow(determinism, "HashSet used membership-only for proof dedup; iteration order never observed")
use std::collections::HashSet;
use std::sync::Arc;

/// An ack that can be part of a [`Proof`]: supplies the canonical bytes
/// the content address binds (content *and* signature) and its modeled
/// wire size.
pub trait ProofAck: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// Writes the canonical bytes of this ack (everything verification
    /// depends on, including the signature).
    fn digest_bytes(&self, out: &mut Vec<u8>);

    /// Modeled serialized size of this ack in bytes.
    fn wire_size(&self) -> usize;
}

/// A shared proof of safety with an interned content address and cached
/// wire size. Clone is `O(1)`.
pub struct Proof<A: ProofAck> {
    acks: Arc<Vec<A>>,
    // bgla-lint: allow(wire-coverage, "content address; recomputed from the acks by Proof::new during decode")
    id: ProofId,
    // bgla-lint: allow(wire-coverage, "derived size cache; recomputed from the acks by Proof::new during decode")
    wire: usize,
}

impl<A: ProofAck> Proof<A> {
    /// Builds a proof, computing its content address and wire size once.
    pub fn new(acks: Vec<A>) -> Self {
        let mut builder = ProofIdBuilder::new();
        let mut buf = Vec::new();
        let mut wire = 0;
        for ack in &acks {
            buf.clear();
            ack.digest_bytes(&mut buf);
            builder.add_ack(&buf);
            wire += ack.wire_size();
        }
        Proof {
            acks: Arc::new(acks),
            id: builder.finish(),
            wire,
        }
    }

    /// The interned content address.
    pub fn id(&self) -> ProofId {
        self.id
    }

    /// Number of acks.
    pub fn len(&self) -> usize {
        self.acks.len()
    }

    /// Whether the proof is empty (never valid, but constructible).
    pub fn is_empty(&self) -> bool {
        self.acks.is_empty()
    }

    /// Iterates the acks.
    pub fn iter(&self) -> std::slice::Iter<'_, A> {
        self.acks.iter()
    }

    /// The acks as a slice.
    pub fn as_slice(&self) -> &[A] {
        &self.acks
    }

    /// Cached modeled wire size of the whole ack vector (`O(1)`).
    pub fn wire_size(&self) -> usize {
        self.wire
    }
}

impl<A: ProofAck> Clone for Proof<A> {
    fn clone(&self) -> Self {
        Proof {
            acks: Arc::clone(&self.acks),
            id: self.id,
            wire: self.wire,
        }
    }
}

/// Proofs compare by content address: structurally identical proofs are
/// equal even through different allocations (ack order included — the id
/// is a multiset hash).
impl<A: ProofAck> PartialEq for Proof<A> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<A: ProofAck> Eq for Proof<A> {}

impl<A: ProofAck> std::fmt::Debug for Proof<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proof")
            .field("id", &self.id)
            .field("acks", &self.acks)
            .finish()
    }
}

impl<'a, A: ProofAck> IntoIterator for &'a Proof<A> {
    type Item = &'a A;
    type IntoIter = std::slice::Iter<'a, A>;
    fn into_iter(self) -> Self::IntoIter {
        self.acks.iter()
    }
}

/// Codec form: just the ack vector. The content address is *never* on
/// the wire — decoding rebuilds through [`Proof::new`], which recomputes
/// the id from the decoded acks, preserving the constructor's invariant
/// that an id always matches its content (a snapshot, like a network
/// peer, cannot attach a mismatched id).
impl<A: ProofAck + Wire> Wire for Proof<A> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.acks.len());
        for ack in self.acks.iter() {
            ack.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut acks = Vec::with_capacity(n);
        for _ in 0..n {
            acks.push(A::decode(r)?);
        }
        Ok(Proof::new(acks))
    }
}

/// Per-message proof accounting over the proofs attached to a set of
/// proven records: shared proofs are deduplicated by [`ProofId`] (each
/// id's cached byte size counted once for the interned figure, once per
/// reference for the flat figure). One walk serves both the wire-size
/// metering and the [`ProofSizes`] metrics for SbS and GSbS alike.
pub fn account_proofs<'a, A: ProofAck + 'a>(
    proofs: impl Iterator<Item = &'a Proof<A>>,
) -> ProofSizes {
    let mut sizes = ProofSizes::default();
    // bgla-lint: allow(determinism, "membership-only dedup set (insert); iteration order never observed")
    let mut seen: HashSet<ProofId> = HashSet::new();
    for proof in proofs {
        sizes.refs += 1;
        sizes.flat_bytes += proof.wire_size() as u64;
        if seen.insert(proof.id()) {
            sizes.distinct += 1;
            sizes.interned_bytes += proof.wire_size() as u64;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    impl ProofAck for u64 {
        fn digest_bytes(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn identity_is_content_addressed() {
        let a = Proof::new(vec![1u64, 2, 3]);
        let b = Proof::new(vec![3u64, 1, 2]);
        let c = Proof::new(vec![1u64, 2, 4]);
        assert_eq!(a.id(), b.id(), "ack order must not matter");
        assert_eq!(a, b);
        assert_ne!(a.id(), c.id());
        assert_eq!(a.wire_size(), 24);
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = Proof::new(vec![7u64]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.acks, &b.acks));
        assert_eq!(a.id(), b.id());
    }
}
