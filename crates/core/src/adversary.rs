//! A library of Byzantine behaviors.
//!
//! The Byzantine LA specification quantifies over *arbitrary* adversary
//! code; testing therefore needs a structured family of worst-case
//! behaviors, each aimed at one proof obligation of the paper:
//!
//! | Adversary | Targets |
//! |---|---|
//! | [`Silent`] | liveness thresholds (`n−f` disclosures, quorum size) |
//! | [`Equivocator`] | Observation 1 (one safe value per process) |
//! | [`NackSpammer`] | Lemma 3 (refinement bound) / liveness |
//! | [`AckForger`] | quorum soundness (Lemma 1) |
//! | [`SplitBrain`] | Theorem 1 (the `3f+1` necessity construction) |
//! | [`LateDiscloser`] | refinement maximization (E4) |
//!
//! All of them implement `Process<WtsMsg<V>>`; the harness guarantees
//! they cannot forge sender identities, matching the authenticated-
//! channels model.

use crate::value::Value;
use crate::valueset::{SetUpdate, ValueSet};
use crate::wts::WtsMsg;
use bgla_rbcast::RbMsg;
use bgla_simnet::{Context, Process, ProcessId};
use std::any::Any;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Sends nothing, ever: the crash-from-the-start adversary. Forces the
/// protocol to live with `n − f` participants.
pub struct Silent<V> {
    _marker: PhantomData<V>,
}

impl<V> Default for Silent<V> {
    fn default() -> Self {
        Silent {
            _marker: PhantomData,
        }
    }
}

impl<V: Value> Process<WtsMsg<V>> for Silent<V> {
    fn on_message(&mut self, _f: ProcessId, _m: WtsMsg<V>, _c: &mut Context<WtsMsg<V>>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Discloses value `a` to the first half of the system and `b` to the
/// second half, then echoes/acks nothing. The reliable broadcast must
/// ensure at most one of `a`, `b` ever becomes safe anywhere.
pub struct Equivocator<V: Value> {
    /// Value shown to the low half.
    pub a: V,
    /// Value shown to the high half.
    pub b: V,
}

impl<V: Value> Process<WtsMsg<V>> for Equivocator<V> {
    fn on_start(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        let n = ctx.n;
        for to in 0..n {
            let value = if to < n / 2 {
                self.a.clone()
            } else {
                self.b.clone()
            };
            ctx.send(to, WtsMsg::Rb(RbMsg::Init { tag: 0, value }));
        }
    }
    fn on_message(&mut self, _f: ProcessId, _m: WtsMsg<V>, _c: &mut Context<WtsMsg<V>>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// As an acceptor, nacks every ack request with a growing set drawn from
/// values it has legitimately seen disclosed — trying to force endless
/// refinements. (Lemma 3: it can force at most `f` of them, because nacks
/// must be *safe* for the proposer to act on them.)
pub struct NackSpammer<V: Value> {
    seen: BTreeSet<V>,
    /// Values this adversary discloses itself (at most one becomes safe).
    pub own_value: V,
}

impl<V: Value> NackSpammer<V> {
    /// Creates the adversary with its own disclosed value.
    pub fn new(own_value: V) -> Self {
        NackSpammer {
            seen: BTreeSet::new(),
            own_value,
        }
    }
}

impl<V: Value> Process<WtsMsg<V>> for NackSpammer<V> {
    fn on_start(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        // Disclose honestly so its value is usable in nacks.
        ctx.broadcast(WtsMsg::Rb(RbMsg::Init {
            tag: 0,
            value: self.own_value.clone(),
        }));
    }
    fn on_message(&mut self, from: ProcessId, msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        match msg {
            WtsMsg::Rb(RbMsg::Init { value, .. })
            | WtsMsg::Rb(RbMsg::Echo { value, .. })
            | WtsMsg::Rb(RbMsg::Ready { value, .. }) => {
                self.seen.insert(value);
            }
            WtsMsg::AckReq { ts, .. } => {
                // Always nack, with everything we have ever seen.
                ctx.send(
                    from,
                    WtsMsg::Nack {
                        accepted: self.seen.iter().cloned().collect(),
                        ts,
                    },
                );
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Acks *everything* immediately (without safety checks), trying to make
/// proposers decide prematurely on under-replicated proposals.
pub struct AckForger<V> {
    _marker: PhantomData<V>,
}

impl<V> Default for AckForger<V> {
    fn default() -> Self {
        AckForger {
            _marker: PhantomData,
        }
    }
}

impl<V: Value> Process<WtsMsg<V>> for AckForger<V> {
    fn on_message(&mut self, from: ProcessId, msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        if let WtsMsg::AckReq { ts, .. } = msg {
            ctx.send(from, WtsMsg::Ack { ts });
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The Theorem-1 adversary for `n = 3f` systems: equivocates its
/// disclosure *and* acks both sides' proposals independently, so that
/// with the victims partitioned by the scheduler each side reaches its
/// quorum with incompatible sets. Only effective when `n < 3f + 1`; at
/// `n = 3f + 1` the echo quorums overlap in a correct process and the
/// attack collapses.
pub struct SplitBrain<V: Value> {
    /// Value disclosed to the low half.
    pub a: V,
    /// Value disclosed to the high half.
    pub b: V,
}

impl<V: Value> Process<WtsMsg<V>> for SplitBrain<V> {
    fn on_start(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        let n = ctx.n;
        for to in 0..n {
            if to == ctx.me {
                continue;
            }
            let value = if to < n / 2 {
                self.a.clone()
            } else {
                self.b.clone()
            };
            ctx.send(to, WtsMsg::Rb(RbMsg::Init { tag: 0, value }));
        }
    }
    fn on_message(&mut self, from: ProcessId, msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        if from == ctx.me {
            return; // never converse with ourselves (avoids self-loops)
        }
        match msg {
            // Echo whatever each victim believes, back to that victim
            // only — sustaining both world views.
            WtsMsg::Rb(RbMsg::Init { tag, value }) => {
                ctx.send(
                    from,
                    WtsMsg::Rb(RbMsg::Echo {
                        origin: from,
                        tag,
                        value: value.clone(),
                    }),
                );
                ctx.send(
                    from,
                    WtsMsg::Rb(RbMsg::Ready {
                        origin: from,
                        tag,
                        value,
                    }),
                );
            }
            WtsMsg::Rb(RbMsg::Echo { origin, tag, value }) => {
                ctx.send(
                    from,
                    WtsMsg::Rb(RbMsg::Echo {
                        origin,
                        tag,
                        value: value.clone(),
                    }),
                );
                ctx.send(from, WtsMsg::Rb(RbMsg::Ready { origin, tag, value }));
            }
            WtsMsg::AckReq { ts, .. } => {
                ctx.send(from, WtsMsg::Ack { ts });
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Correct-but-slow discloser: withholds its `Init` until it has seen
/// `trigger` deliveries, so its value reaches acceptors after proposers
/// have started proposing — the refinement-maximizing schedule of E4.
pub struct LateDiscloser<V: Value> {
    /// The value eventually disclosed.
    pub value: V,
    /// How many local deliveries to wait for before disclosing.
    pub trigger: u64,
    sent: bool,
}

impl<V: Value> LateDiscloser<V> {
    /// New late discloser.
    pub fn new(value: V, trigger: u64) -> Self {
        LateDiscloser {
            value,
            trigger,
            sent: false,
        }
    }
}

impl<V: Value> Process<WtsMsg<V>> for LateDiscloser<V> {
    fn on_message(&mut self, _from: ProcessId, _msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        if !self.sent && ctx.local_events >= self.trigger {
            self.sent = true;
            ctx.broadcast(WtsMsg::Rb(RbMsg::Init {
                tag: 0,
                value: self.value.clone(),
            }));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{assert_la_spec, wts_report, wts_system_with_adversaries};
    use bgla_simnet::RandomScheduler;

    fn correct_ids(n: usize, byz: &[usize]) -> Vec<usize> {
        (0..n).filter(|i| !byz.contains(i)).collect()
    }

    #[test]
    fn silent_adversary_cannot_block_progress() {
        for seed in 0..10 {
            let (mut sim, config, byz) = wts_system_with_adversaries(
                4,
                1,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| (i == 3).then(|| Box::new(Silent::default()) as _),
            );
            let out = sim.run(1_000_000);
            assert!(out.quiescent);
            let correct = correct_ids(config.n, &byz);
            let report = wts_report(&sim, &correct);
            let inputs = correct.iter().map(|&i| i as u64).collect();
            assert_la_spec(&report, &inputs, config.f);
        }
    }

    #[test]
    fn equivocator_injects_at_most_one_value() {
        for seed in 0..20 {
            let (mut sim, config, byz) = wts_system_with_adversaries(
                4,
                1,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| {
                    (i == 3).then(|| {
                        Box::new(Equivocator {
                            a: 666u64,
                            b: 777u64,
                        }) as _
                    })
                },
            );
            let out = sim.run(1_000_000);
            assert!(out.quiescent, "seed {seed}");
            let correct = correct_ids(config.n, &byz);
            let report = wts_report(&sim, &correct);
            let inputs: std::collections::BTreeSet<u64> =
                correct.iter().map(|&i| i as u64).collect();
            assert_la_spec(&report, &inputs, config.f);
            // Specifically: never both 666 and 777 in any decision.
            for d in &report.decisions {
                assert!(
                    !(d.contains(&666) && d.contains(&777)),
                    "equivocated values coexist (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn nack_spammer_cannot_force_more_than_f_refinements() {
        for seed in 0..20 {
            let (mut sim, config, byz) = wts_system_with_adversaries(
                7,
                2,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| match i {
                    5 => Some(Box::new(NackSpammer::new(500u64)) as _),
                    6 => Some(Box::new(NackSpammer::new(600u64)) as _),
                    _ => None,
                },
            );
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "seed {seed}");
            let correct = correct_ids(config.n, &byz);
            let report = wts_report(&sim, &correct);
            let inputs = correct.iter().map(|&i| i as u64).collect();
            assert_la_spec(&report, &inputs, config.f);
            assert!(
                report.max_refinements <= config.f as u64,
                "seed {seed}: {} refinements",
                report.max_refinements
            );
        }
    }

    #[test]
    fn ack_forger_cannot_break_comparability() {
        for seed in 0..20 {
            let (mut sim, config, byz) = wts_system_with_adversaries(
                4,
                1,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| (i == 0).then(|| Box::new(AckForger::default()) as _),
            );
            let out = sim.run(1_000_000);
            assert!(out.quiescent, "seed {seed}");
            let correct = correct_ids(config.n, &byz);
            let report = wts_report(&sim, &correct);
            let inputs = correct.iter().map(|&i| i as u64).collect();
            assert_la_spec(&report, &inputs, config.f);
        }
    }

    #[test]
    fn late_discloser_causes_refinements_but_not_divergence() {
        for seed in 0..10 {
            let (mut sim, config, byz) = wts_system_with_adversaries(
                4,
                1,
                |i| i as u64,
                Box::new(RandomScheduler::new(seed)),
                |i, _| (i == 3).then(|| Box::new(LateDiscloser::new(333u64, 8)) as _),
            );
            let out = sim.run(1_000_000);
            assert!(out.quiescent, "seed {seed}");
            let correct = correct_ids(config.n, &byz);
            let report = wts_report(&sim, &correct);
            let inputs = correct.iter().map(|&i| i as u64).collect();
            assert_la_spec(&report, &inputs, config.f);
        }
    }
}

/// A seeded "chaos" adversary: on every event it replays mutated
/// fragments of protocol traffic it has observed — acks/nacks with
/// random timestamps, re-sent disclosures, echoes with swapped origins —
/// at random destinations. It cannot forge senders (the harness
/// authenticates), but everything else goes.
///
/// This is the property-test workhorse: safety must survive *any*
/// behavior, so we sample behaviors randomly.
pub struct ChaosMonkey<V: Value> {
    rng_state: u64,
    seen_values: Vec<V>,
    seen_msgs: Vec<WtsMsg<V>>,
    /// Messages injected per delivery (kept small to bound runs).
    pub burst: usize,
}

impl<V: Value> ChaosMonkey<V> {
    /// Creates a chaos adversary with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        ChaosMonkey {
            rng_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            seen_values: Vec::new(),
            seen_msgs: Vec::new(),
            burst: 2,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn observe(&mut self, msg: &WtsMsg<V>) {
        match msg {
            WtsMsg::Rb(RbMsg::Init { value, .. })
            | WtsMsg::Rb(RbMsg::Echo { value, .. })
            | WtsMsg::Rb(RbMsg::Ready { value, .. }) => {
                if self.seen_values.len() < 64 {
                    self.seen_values.push(value.clone());
                }
            }
            other => {
                if self.seen_msgs.len() < 64 {
                    self.seen_msgs.push(other.clone());
                }
            }
        }
    }

    fn random_set(&mut self) -> ValueSet<V> {
        let mut set = ValueSet::new();
        if self.seen_values.is_empty() {
            return set;
        }
        let k = (self.next_u64() as usize) % (self.seen_values.len().min(4) + 1);
        for _ in 0..k {
            let idx = (self.next_u64() as usize) % self.seen_values.len();
            // bgla-lint: allow(byzantine-panic, "index is rng % len; emptiness checked above")
            set.insert(self.seen_values[idx].clone());
        }
        set
    }

    fn emit(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        for _ in 0..self.burst {
            let to = (self.next_u64() as usize) % ctx.n;
            if to == ctx.me {
                continue;
            }
            let roll = self.next_u64() % 7;
            let msg = match roll {
                0 => WtsMsg::AckReq {
                    proposed: SetUpdate::Full(self.random_set()),
                    ts: self.next_u64() % 4,
                },
                1 => WtsMsg::Ack {
                    ts: self.next_u64() % 4,
                },
                2 => WtsMsg::Nack {
                    accepted: self.random_set(),
                    ts: self.next_u64() % 4,
                },
                6 => WtsMsg::AckReq {
                    // Bogus delta: random base the receiver may not
                    // hold — exercises the gap-detection path.
                    proposed: SetUpdate::Delta {
                        base_ts: self.next_u64() % 8,
                        added: self.random_set(),
                    },
                    ts: self.next_u64() % 4,
                },
                3 => {
                    // Replay a previously observed protocol message.
                    if self.seen_msgs.is_empty() {
                        continue;
                    }
                    let idx = (self.next_u64() as usize) % self.seen_msgs.len();
                    // bgla-lint: allow(byzantine-panic, "index is rng % len; emptiness checked above")
                    self.seen_msgs[idx].clone()
                }
                4 => {
                    // Re-disclose someone's value as our own.
                    if self.seen_values.is_empty() {
                        continue;
                    }
                    let idx = (self.next_u64() as usize) % self.seen_values.len();
                    WtsMsg::Rb(RbMsg::Init {
                        tag: 0,
                        // bgla-lint: allow(byzantine-panic, "index is rng % len; emptiness checked above")
                        value: self.seen_values[idx].clone(),
                    })
                }
                _ => {
                    // Fake a ready for a random origin.
                    if self.seen_values.is_empty() {
                        continue;
                    }
                    let idx = (self.next_u64() as usize) % self.seen_values.len();
                    WtsMsg::Rb(RbMsg::Ready {
                        origin: (self.next_u64() as usize) % ctx.n,
                        tag: 0,
                        // bgla-lint: allow(byzantine-panic, "index is rng % len; emptiness checked above")
                        value: self.seen_values[idx].clone(),
                    })
                }
            };
            ctx.send(to, msg);
        }
    }
}

impl<V: Value> Process<WtsMsg<V>> for ChaosMonkey<V> {
    fn on_start(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        self.emit(ctx);
    }
    fn on_message(&mut self, from: ProcessId, msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        if from == ctx.me {
            return;
        }
        self.observe(&msg);
        // Throttle: inject on a third of deliveries so runs terminate.
        if self.next_u64().is_multiple_of(3) {
            self.emit(ctx);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// GWTS-specific adversaries.
pub mod gwts {
    use crate::gwts::GwtsMsg;
    use crate::value::Value;
    use crate::valueset::{SetUpdate, ValueSet};
    use bgla_simnet::{Context, Process, ProcessId};
    use std::any::Any;
    use std::marker::PhantomData;

    /// Pretends to be many rounds ahead, flooding ack requests for
    /// future rounds — the "round clogging" attack `Safe_r` exists to
    /// stop (Section 6.2).
    pub struct RoundJumper<V> {
        /// Highest round to fake.
        pub upto: u64,
        _marker: PhantomData<V>,
    }

    impl<V> RoundJumper<V> {
        /// Jumps up to round `upto`.
        pub fn new(upto: u64) -> Self {
            RoundJumper {
                upto,
                _marker: PhantomData,
            }
        }
    }

    impl<V: Value> Process<GwtsMsg<V>> for RoundJumper<V> {
        fn on_start(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
            for round in 0..self.upto {
                ctx.broadcast(GwtsMsg::AckReq {
                    proposed: SetUpdate::Full(ValueSet::new()),
                    ts: 1_000 + round,
                    round,
                });
            }
        }
        fn on_message(&mut self, _f: ProcessId, _m: GwtsMsg<V>, _c: &mut Context<GwtsMsg<V>>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Silent GWTS participant (crash from the start).
    pub struct SilentG<V> {
        _marker: PhantomData<V>,
    }

    impl<V> Default for SilentG<V> {
        fn default() -> Self {
            SilentG {
                _marker: PhantomData,
            }
        }
    }

    impl<V: Value> Process<GwtsMsg<V>> for SilentG<V> {
        fn on_message(&mut self, _f: ProcessId, _m: GwtsMsg<V>, _c: &mut Context<GwtsMsg<V>>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Equivocating discloser for GWTS: different round-0 batches to the
    /// two halves of the system (stopped by the disclosure rbcast).
    pub struct BatchEquivocator<V: Value> {
        /// Batch shown to the low half.
        pub a: ValueSet<V>,
        /// Batch shown to the high half.
        pub b: ValueSet<V>,
    }

    impl<V: Value> Process<GwtsMsg<V>> for BatchEquivocator<V> {
        fn on_start(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
            for to in 0..ctx.n {
                if to == ctx.me {
                    continue;
                }
                let batch = if to < ctx.n / 2 {
                    self.a.clone()
                } else {
                    self.b.clone()
                };
                ctx.send(
                    to,
                    GwtsMsg::Disc(bgla_rbcast::RbMsg::Init {
                        tag: 0,
                        value: batch,
                    }),
                );
            }
        }
        fn on_message(&mut self, _f: ProcessId, _m: GwtsMsg<V>, _c: &mut Context<GwtsMsg<V>>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
}

/// SbS-specific adversaries (Section 8).
pub mod sbs {
    use crate::proof::Proof;
    use crate::provendelta::ProvenUpdate;
    use crate::sbs::{ProvenValue, SafeAckBody, SbsMsg, SignedSafeAck, SignedValue};
    use crate::signedset::SignedSet;
    use crate::value::SignableValue;
    use bgla_crypto::{Keypair, ProofIdBuilder};
    use bgla_simnet::{Context, Process, ProcessId};
    use std::any::Any;

    /// Signs two different values and shows one to each half of the
    /// system — Lemma 13's threat: at most one may ever become safe.
    pub struct ConflictSigner<V: SignableValue> {
        /// This adversary's process id (it signs with its real key —
        /// it cannot forge anyone else's).
        pub me: ProcessId,
        /// Value shown to the low half.
        pub a: V,
        /// Value shown to the high half.
        pub b: V,
    }

    impl<V: SignableValue> Process<SbsMsg<V>> for ConflictSigner<V> {
        fn on_start(&mut self, ctx: &mut Context<SbsMsg<V>>) {
            let kp = Keypair::for_process(self.me);
            let sva = SignedValue::sign(self.a.clone(), self.me, &kp);
            let svb = SignedValue::sign(self.b.clone(), self.me, &kp);
            for to in 0..ctx.n {
                if to == ctx.me {
                    continue;
                }
                let sv = if to < ctx.n / 2 {
                    sva.clone()
                } else {
                    svb.clone()
                };
                ctx.send(to, SbsMsg::Init(sv));
            }
        }
        fn on_message(&mut self, _f: ProcessId, _m: SbsMsg<V>, _c: &mut Context<SbsMsg<V>>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Tries to push proposals carrying *forged* proofs of safety:
    /// undersized quorums, self-duplicated acks, and acks that never
    /// covered the value. `AllSafe` must reject every one.
    pub struct ProofForger<V: SignableValue> {
        /// The adversary's id.
        pub me: ProcessId,
        /// The value it tries to sneak in.
        pub value: V,
    }

    impl<V: SignableValue> Process<SbsMsg<V>> for ProofForger<V> {
        fn on_start(&mut self, ctx: &mut Context<SbsMsg<V>>) {
            let kp = Keypair::for_process(self.me);
            let sv = SignedValue::sign(self.value.clone(), self.me, &kp);
            // A "proof" of one self-signed ack, repeated.
            let body = SafeAckBody {
                rcvd: [sv.clone()].into_iter().collect(),
                conflicts: vec![],
            };
            let ack = SignedSafeAck::sign(body, self.me, &kp);
            let proof = Proof::new(vec![ack.clone(), ack.clone(), ack]);
            let proposed: SignedSet<ProvenValue<V>> =
                [ProvenValue { sv, proof }].into_iter().collect();
            for ts in 0..3 {
                ctx.broadcast(SbsMsg::AckReq {
                    proposed: ProvenUpdate::Full(proposed.clone()),
                    ts,
                });
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: SbsMsg<V>, ctx: &mut Context<SbsMsg<V>>) {
            if from == ctx.me {
                return;
            }
            // Also nack every legitimate request with the forged set.
            if let SbsMsg::AckReq { ts, .. } = msg {
                let kp = Keypair::for_process(self.me);
                let sv = SignedValue::sign(self.value.clone(), self.me, &kp);
                let body = SafeAckBody {
                    rcvd: [sv.clone()].into_iter().collect(),
                    conflicts: vec![],
                };
                let ack = SignedSafeAck::sign(body, self.me, &kp);
                let accepted: SignedSet<ProvenValue<V>> = [ProvenValue {
                    sv,
                    proof: Proof::new(vec![ack]),
                }]
                .into_iter()
                .collect();
                ctx.send(
                    from,
                    SbsMsg::Nack {
                        accepted: ProvenUpdate::Full(accepted),
                        ts,
                    },
                );
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Ships `Delta` payloads whose references cannot resolve: refs to
    /// [`bgla_crypto::ProofId`]s the peer never saw (forged-proof ids
    /// included) and deltas against bases no one holds. Honest receivers
    /// must detect every gap, answer with `Resync`, and proceed
    /// unharmed; this adversary answers the resync with a `Full` payload
    /// (of forged content — `AllSafe` rejects it), exercising the
    /// fallback end-to-end. Its nacks delta-gap too, which proposers
    /// must treat as Byzantine without stalling.
    pub struct BogusRefSender<V: SignableValue> {
        /// The adversary's id (it signs with its real key).
        pub me: ProcessId,
        /// The value its forged payloads carry.
        pub value: V,
        /// Resync requests received (the gap detections it provoked).
        pub resyncs_seen: u64,
    }

    impl<V: SignableValue> BogusRefSender<V> {
        /// Creates the adversary.
        pub fn new(me: ProcessId, value: V) -> Self {
            BogusRefSender {
                me,
                value,
                resyncs_seen: 0,
            }
        }

        /// A forged single-ack proven value (quorum-invalid on purpose —
        /// even a resolved reference to it must never certify anything).
        fn forged_set(&self) -> SignedSet<ProvenValue<V>> {
            let kp = Keypair::for_process(self.me);
            let sv = SignedValue::sign(self.value.clone(), self.me, &kp);
            let body = SafeAckBody {
                rcvd: [sv.clone()].into_iter().collect(),
                conflicts: vec![],
            };
            let ack = SignedSafeAck::sign(body, self.me, &kp);
            [ProvenValue {
                sv,
                proof: Proof::new(vec![ack]),
            }]
            .into_iter()
            .collect()
        }
    }

    impl<V: SignableValue> Process<SbsMsg<V>> for BogusRefSender<V> {
        fn on_start(&mut self, ctx: &mut Context<SbsMsg<V>>) {
            let forged = self.forged_set();
            let forged_id = forged.iter().next().expect("one record").proof.id();
            // A delta referencing a proof nobody ever delivered.
            ctx.broadcast(SbsMsg::AckReq {
                proposed: ProvenUpdate::Delta {
                    base_ts: 0,
                    new: forged.clone(),
                    refs: vec![forged_id],
                },
                ts: 1,
            });
            // A delta against a base no receiver recorded, refs to a
            // fabricated id matching no proof at all.
            let mut b = ProofIdBuilder::new();
            b.add_ack(b"no such proof");
            ctx.broadcast(SbsMsg::AckReq {
                proposed: ProvenUpdate::Delta {
                    base_ts: 777,
                    new: SignedSet::new(),
                    refs: vec![b.finish()],
                },
                ts: 2,
            });
        }
        fn on_message(&mut self, from: ProcessId, msg: SbsMsg<V>, ctx: &mut Context<SbsMsg<V>>) {
            if from == ctx.me {
                return;
            }
            match msg {
                // Every legitimate proposal is answered with a nack
                // that delta-gaps at the proposer (unknown base).
                SbsMsg::AckReq { ts, .. } => {
                    ctx.send(
                        from,
                        SbsMsg::Nack {
                            accepted: ProvenUpdate::Delta {
                                base_ts: 999,
                                new: self.forged_set(),
                                refs: vec![],
                            },
                            ts,
                        },
                    );
                }
                // The fallback round trip: answer the resync with the
                // full payload (forged — AllSafe drops it).
                SbsMsg::Resync { ts } => {
                    self.resyncs_seen += 1;
                    ctx.send(
                        from,
                        SbsMsg::AckReq {
                            proposed: ProvenUpdate::Full(self.forged_set()),
                            ts,
                        },
                    );
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Silent SbS participant.
    pub struct SilentS<V> {
        _marker: std::marker::PhantomData<V>,
    }

    impl<V> Default for SilentS<V> {
        fn default() -> Self {
            SilentS {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<V: SignableValue> Process<SbsMsg<V>> for SilentS<V> {
        fn on_message(&mut self, _f: ProcessId, _m: SbsMsg<V>, _c: &mut Context<SbsMsg<V>>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
}

/// GSbS-specific adversaries (Section 8.2).
pub mod gsbs {
    use crate::gsbs::{GSafeAck, GsbsMsg, ProvenBatch, SignedBatch};
    use crate::proof::Proof;
    use crate::provendelta::ProvenUpdate;
    use crate::signedset::SignedSet;
    use crate::value::SignableValue;
    use crate::valueset::ValueSet;
    use bgla_crypto::{Keypair, ProofIdBuilder};
    use bgla_simnet::{Context, Process, ProcessId};
    use std::any::Any;

    /// The GSbS analogue of [`super::sbs::BogusRefSender`]: deltas with
    /// unresolvable proof references and bases, nacks that delta-gap at
    /// the proposer, and `Full` (forged, `AllSafe`-rejected) answers to
    /// the resync requests it provokes.
    pub struct BogusRefSender<V: SignableValue> {
        /// The adversary's id (it signs with its real key).
        pub me: ProcessId,
        /// A value its forged batches carry.
        pub value: V,
        /// Resync requests received (the gap detections it provoked).
        pub resyncs_seen: u64,
    }

    impl<V: SignableValue> BogusRefSender<V> {
        /// Creates the adversary.
        pub fn new(me: ProcessId, value: V) -> Self {
            BogusRefSender {
                me,
                value,
                resyncs_seen: 0,
            }
        }

        fn forged_set(&self, round: u64) -> SignedSet<ProvenBatch<V>> {
            let kp = Keypair::for_process(self.me);
            let batch: ValueSet<V> = [self.value.clone()].into_iter().collect();
            let sb = SignedBatch::sign(round, batch, self.me, &kp);
            let rcvd: SignedSet<SignedBatch<V>> = [sb.clone()].into_iter().collect();
            let ack = GSafeAck::sign(round, rcvd, vec![], self.me, &kp);
            [ProvenBatch {
                sb,
                proof: Proof::new(vec![ack]),
            }]
            .into_iter()
            .collect()
        }
    }

    impl<V: SignableValue> Process<GsbsMsg<V>> for BogusRefSender<V> {
        fn on_start(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
            let forged = self.forged_set(0);
            let forged_id = forged.iter().next().expect("one record").proof.id();
            // Round 0 is trusted from the start, so these are decoded
            // (and must gap) immediately.
            ctx.broadcast(GsbsMsg::AckReq {
                proposed: ProvenUpdate::Delta {
                    base_ts: 0,
                    new: forged.clone(),
                    refs: vec![forged_id],
                },
                ts: 1,
                round: 0,
            });
            let mut b = ProofIdBuilder::new();
            b.add_ack(b"no such proof");
            ctx.broadcast(GsbsMsg::AckReq {
                proposed: ProvenUpdate::Delta {
                    base_ts: 777,
                    new: SignedSet::new(),
                    refs: vec![b.finish()],
                },
                ts: 2,
                round: 0,
            });
        }
        fn on_message(&mut self, from: ProcessId, msg: GsbsMsg<V>, ctx: &mut Context<GsbsMsg<V>>) {
            if from == ctx.me {
                return;
            }
            match msg {
                GsbsMsg::AckReq { ts, round, .. } => {
                    ctx.send(
                        from,
                        GsbsMsg::Nack {
                            accepted: ProvenUpdate::Delta {
                                base_ts: 999,
                                new: self.forged_set(round),
                                refs: vec![],
                            },
                            ts,
                            round,
                        },
                    );
                }
                GsbsMsg::Resync { ts, round } => {
                    self.resyncs_seen += 1;
                    ctx.send(
                        from,
                        GsbsMsg::AckReq {
                            proposed: ProvenUpdate::Full(self.forged_set(round)),
                            ts,
                            round,
                        },
                    );
                }
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
}

/// Wraps an *honest* process and crashes it after `k` deliveries: the
/// classic mid-protocol crash fault (a special case of Byzantine
/// behavior the spec must tolerate). Before the crash it behaves
/// exactly like the wrapped process — including possibly having
/// half-participated in quorums.
pub struct MidCrash<M, P: Process<M>> {
    inner: P,
    /// Deliveries after which the process goes silent.
    pub crash_after: u64,
    seen: u64,
    _marker: PhantomData<M>,
}

impl<M, P: Process<M>> MidCrash<M, P> {
    /// Wraps `inner`, crashing it after `crash_after` deliveries.
    pub fn new(inner: P, crash_after: u64) -> Self {
        MidCrash {
            inner,
            crash_after,
            seen: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.seen >= self.crash_after
    }
}

impl<M: Send + 'static, P: Process<M> + 'static> Process<M> for MidCrash<M, P> {
    fn on_start(&mut self, ctx: &mut Context<M>) {
        if self.crash_after > 0 {
            self.inner.on_start(ctx);
        }
    }
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>) {
        self.seen += 1;
        if self.seen <= self.crash_after {
            self.inner.on_message(from, msg, ctx);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}
