//! Durable snapshots, crash-recovery scheduling, and restart-spanning
//! conformance.
//!
//! # Snapshot format
//!
//! Every process snapshot is one [`bgla_codec`] frame:
//!
//! ```text
//! "BGLA" | version u16 | kind u16 | len u64 | payload | FNV-1a-64 checksum
//! ```
//!
//! The `kind` field names the algorithm that wrote it — WTS `0x0101`,
//! GWTS `0x0102`, SbS `0x0103`, GSbS `0x0104` — so a snapshot can never
//! be decoded as the wrong process type, and the trailing checksum makes
//! truncation and bit-rot detectable before any field is parsed. The
//! payload serializes the *durable* protocol state in declaration order
//! (configuration, proposal/input schedule, phase, collected acks,
//! retained proofs-of-safety, decisions). Volatile machinery —
//! keypairs, signature caches, delta-encoding bookkeeping — is **not**
//! serialized: keys are re-derived from the PKI, caches re-warm, and
//! delta senders restart in full-set mode because amnesia invalidates
//! any claim about what peers hold (peers' stale claims about *us* are
//! covered by the protocols' resync fallback).
//!
//! # Recovery contract
//!
//! * Snapshots are written through a [`SnapshotStore`]; the durable
//!   [`DirStore`] writes `<dir>/p<id>.snap.tmp` and atomically renames
//!   it over `<dir>/p<id>.snap`, so a crash mid-write leaves the
//!   previous snapshot intact. [`SnapshotPolicy`] decides *when*: after
//!   every observed decision (the paper-level durability point) and/or
//!   every `k` deliveries.
//! * On restart the store is consulted; a frame that fails checksum or
//!   decode validation yields `None` and the process **rejoins from
//!   genesis**. A genesis rejoin may have lost a durable decision; the
//!   driver records it in [`RecoveryRun::genesis_rejoins`] and excludes
//!   the process from the conformance honest set — the loss is absorbed
//!   by the fault budget exactly like a Byzantine process (tests assert
//!   `genesis_rejoins.len() ≤ f`).
//! * A restored process reboots through `on_start`, which re-issues the
//!   in-flight request of its durable phase (re-`AckReq`, re-`SafeReq`,
//!   re-`Init`) so lost inbound traffic is re-solicited. Some phases
//!   cannot re-solicit (peers only ever send their `Init` once;
//!   Bracha echoes are not retransmitted): a process crashed there may
//!   stall without deciding, which the `n − f` disclosure threshold
//!   absorbs — liveness of the *survivors* never depends on the victim.
//! * The conformance observers ([`crate::harness`]) watch the engine's
//!   restart generation, emit an [`crate::linearize::OP_RESTART`] op at
//!   each reboot, and re-announce the restored state. The trace checker
//!   resets its refine watermark at the boundary (refinement progress
//!   is legitimately volatile) but holds decisions across it: a
//!   restored decision smaller than the pre-crash one is reported as
//!   [`crate::linearize::TraceViolation::RestartRegression`] — the stale-snapshot
//!   rollback signature. [`RollbackStore`] and [`CorruptingStore`] are
//!   the planted adversaries tests aim at that detector.
//!
//! # Driver
//!
//! [`run_crash_conformance`] is the crash-aware twin of
//! [`crate::search::run_conformance`]: it steps the simulation one
//! delivery at a time, applies a [`CrashPlan`] (crash at a delivery
//! count, restart after a downtime), snapshots per policy, rebuilds
//! victims through the caller's [`RebuildFn`], and finally replays the
//! recorded restart-spanning history through the prefix checker.
//! [`search_crash_schedules`] sweeps adversarial schedules under a
//! fixed crash plan and shrinks any violation to a minimal replayable
//! schedule, exactly like the crash-free search.

use crate::linearize::{check_trace, CheckerConfig, PrefixViolation, Witness, OP_DECIDE};
use crate::search::{
    op_priority, run_traced, shrink_with, Counterexample, ObserverFactory, SearchReport,
    SystemFactory,
};
use bgla_codec::verify_frame;
use bgla_simnet::{
    OpEvent, Process, ProcessId, RecordingScheduler, ReplayScheduler, RunOutcome, Scheduler,
    SearchScheduler, Simulation, WireMessage,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Snapshot stores
// ---------------------------------------------------------------------------

/// Where process snapshots live between a crash and the restart.
///
/// `load` returns the raw frame bytes; validation belongs to the caller's
/// [`RebuildFn`] (whose `from_snapshot` decode re-checks the checksum), so
/// a store serving garbage degrades to a genesis rejoin, never a panic.
/// [`DirStore`] additionally pre-validates on load, modeling a reader
/// that discards torn files.
pub trait SnapshotStore {
    /// Persists the latest snapshot of process `p`.
    fn save(&mut self, p: ProcessId, bytes: &[u8]);
    /// The snapshot this store is willing to serve for `p`, if any.
    fn load(&mut self, p: ProcessId) -> Option<Vec<u8>>;
}

/// In-memory store: latest snapshot per process. The default for sweeps
/// (no filesystem traffic in the hot loop).
#[derive(Debug, Default)]
pub struct MemStore {
    snaps: BTreeMap<ProcessId, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of processes with a stored snapshot.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshot has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

impl SnapshotStore for MemStore {
    fn save(&mut self, p: ProcessId, bytes: &[u8]) {
        self.snaps.insert(p, bytes.to_vec());
    }
    fn load(&mut self, p: ProcessId) -> Option<Vec<u8>> {
        self.snaps.get(&p).cloned()
    }
}

/// Durable directory store with atomic replace: writes
/// `<dir>/p<id>.snap.tmp` then renames over `<dir>/p<id>.snap`, so a
/// crash mid-save leaves the previous snapshot readable. `load`
/// validates the frame (magic, version, length, checksum) and returns
/// `None` for corrupt or truncated files — the caller rejoins from
/// genesis. I/O errors on save panic: this is a test harness store and
/// a broken tmpdir is a bug, not a scenario.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a snapshot directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    /// The final path of `p`'s snapshot.
    pub fn path(&self, p: ProcessId) -> PathBuf {
        self.dir.join(format!("p{p}.snap"))
    }
}

impl SnapshotStore for DirStore {
    fn save(&mut self, p: ProcessId, bytes: &[u8]) {
        let tmp = self.dir.join(format!("p{p}.snap.tmp"));
        std::fs::write(&tmp, bytes).expect("snapshot tmp write");
        std::fs::rename(&tmp, self.path(p)).expect("snapshot rename");
    }

    fn load(&mut self, p: ProcessId) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path(p)).ok()?;
        verify_frame(&bytes).ok()?;
        Some(bytes)
    }
}

/// Rollback adversary: acknowledges every save but forever serves the
/// *first* snapshot it saw per process — the stale state a victim
/// restores from after losing later writes. Against a multi-round
/// algorithm this plants a guaranteed decision regression for the
/// checker to catch.
#[derive(Debug, Default)]
pub struct RollbackStore {
    first: BTreeMap<ProcessId, Vec<u8>>,
}

impl RollbackStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for RollbackStore {
    fn save(&mut self, p: ProcessId, bytes: &[u8]) {
        self.first.entry(p).or_insert_with(|| bytes.to_vec());
    }
    fn load(&mut self, p: ProcessId) -> Option<Vec<u8>> {
        self.first.get(&p).cloned()
    }
}

/// Corruption adversary: stores faithfully but flips one payload bit on
/// every load. The frame checksum catches it, `from_snapshot` fails,
/// and the victim rejoins from genesis — the detected-corruption path.
#[derive(Debug, Default)]
pub struct CorruptingStore {
    inner: MemStore,
}

impl CorruptingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for CorruptingStore {
    fn save(&mut self, p: ProcessId, bytes: &[u8]) {
        self.inner.save(p, bytes);
    }
    fn load(&mut self, p: ProcessId) -> Option<Vec<u8>> {
        let mut bytes = self.inner.load(p)?;
        // An empty stored blob has no bit to flip; serve it unmangled
        // (frame validation rejects it anyway) instead of panicking.
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0x01;
        }
        Some(bytes)
    }
}

// ---------------------------------------------------------------------------
// Snapshot policy
// ---------------------------------------------------------------------------

/// When the driver persists snapshots. Both triggers may be active.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotPolicy {
    /// Snapshot every live snapshot-capable process each time this many
    /// further deliveries have completed.
    pub every_k: Option<u64>,
    /// Snapshot a process immediately after it is observed deciding —
    /// the paper-level durability point (a decision, once announced,
    /// must survive a crash).
    pub on_decide: bool,
}

impl SnapshotPolicy {
    /// Snapshot on every observed decision only.
    pub fn decide_triggered() -> Self {
        SnapshotPolicy {
            every_k: None,
            on_decide: true,
        }
    }

    /// Snapshot every `k` deliveries only.
    pub fn periodic(k: u64) -> Self {
        SnapshotPolicy {
            every_k: Some(k),
            on_decide: false,
        }
    }

    /// Both triggers: every `k` deliveries and on every decision.
    pub fn combined(k: u64) -> Self {
        SnapshotPolicy {
            every_k: Some(k),
            on_decide: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Crash plans and tactics
// ---------------------------------------------------------------------------

/// One planned crash: the victim stops at delivery count `step` and is
/// restarted (via the caller's [`RebuildFn`]) once `downtime` further
/// deliveries have completed — or immediately if the network quiesces
/// first, so a plan can never deadlock a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Process to crash.
    pub victim: ProcessId,
    /// Delivery count at which the crash fires.
    pub step: u64,
    /// Deliveries the victim stays down.
    pub downtime: u64,
}

/// A deterministic crash schedule for one run.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    /// Planned crashes; the driver applies them in `step` order.
    pub events: Vec<CrashEvent>,
}

impl CrashPlan {
    /// A plan with no crashes (the driver degenerates to
    /// [`crate::search::run_conformance`] plus snapshotting).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single crash event.
    pub fn single(victim: ProcessId, step: u64, downtime: u64) -> Self {
        CrashPlan {
            events: vec![CrashEvent {
                victim,
                step,
                downtime,
            }],
        }
    }
}

/// Phase-targeting crash tactics, resolved against a pilot run's
/// first-decide steps into a concrete [`CrashPlan`] by
/// [`resolve_tactics`]. Each aims at a distinct durability hazard.
#[derive(Debug, Clone, Copy)]
pub enum CrashTactic {
    /// Crash at a fixed delivery count — the baseline tactic (and the
    /// fallback the others degrade to when the pilot never decided).
    AtStep {
        /// Process to crash.
        victim: ProcessId,
        /// Delivery count of the crash.
        step: u64,
        /// Deliveries down.
        downtime: u64,
    },
    /// Crash `lead` deliveries *before* the victim's pilot first-decide
    /// step: mid-quorum, with collected acks in volatile state.
    BeforeDecide {
        /// Process to crash.
        victim: ProcessId,
        /// Deliveries before the pilot decide step.
        lead: u64,
        /// Deliveries down.
        downtime: u64,
    },
    /// Crash `lag` deliveries *after* the pilot first-decide step: the
    /// decision is announced and (under a decide-triggered policy)
    /// snapshotted — the restart must not lose it.
    AfterDecide {
        /// Process to crash.
        victim: ProcessId,
        /// Deliveries after the pilot decide step.
        lag: u64,
        /// Deliveries down.
        downtime: u64,
    },
    /// Crash twice: at `step`, and again `gap` deliveries after the
    /// first restart completes — recovery-of-a-recovery.
    DoubleCrash {
        /// Process to crash.
        victim: ProcessId,
        /// Delivery count of the first crash.
        step: u64,
        /// Deliveries between the first restart and the second crash.
        gap: u64,
        /// Deliveries down (per crash).
        downtime: u64,
    },
}

/// Resolves tactics into a concrete plan. `first_decide` maps each
/// process to the delivery step of its first decide in a pilot run of
/// the same system and scheduler (see [`first_decide_steps`]); tactics
/// referencing a process that never decided fall back to an early
/// fixed-step crash.
pub fn resolve_tactics(
    tactics: &[CrashTactic],
    first_decide: &BTreeMap<ProcessId, u64>,
) -> CrashPlan {
    let mut events = Vec::new();
    for t in tactics {
        match *t {
            CrashTactic::AtStep {
                victim,
                step,
                downtime,
            } => events.push(CrashEvent {
                victim,
                step,
                downtime,
            }),
            CrashTactic::BeforeDecide {
                victim,
                lead,
                downtime,
            } => {
                let step = first_decide
                    .get(&victim)
                    .map(|&s| s.saturating_sub(lead))
                    .unwrap_or(1)
                    .max(1);
                events.push(CrashEvent {
                    victim,
                    step,
                    downtime,
                });
            }
            CrashTactic::AfterDecide {
                victim,
                lag,
                downtime,
            } => {
                let step = first_decide.get(&victim).map(|&s| s + lag).unwrap_or(1);
                events.push(CrashEvent {
                    victim,
                    step,
                    downtime,
                });
            }
            CrashTactic::DoubleCrash {
                victim,
                step,
                gap,
                downtime,
            } => {
                events.push(CrashEvent {
                    victim,
                    step,
                    downtime,
                });
                events.push(CrashEvent {
                    victim,
                    // The second crash must land after the first restart
                    // (the driver skips crashes of already-down processes).
                    step: step + downtime + gap.max(1),
                    downtime,
                });
            }
        }
    }
    events.sort_by_key(|e| e.step);
    CrashPlan { events }
}

/// Pilot helper: runs the system crash-free and returns each process's
/// first-decide delivery step, for [`resolve_tactics`].
pub fn first_decide_steps<M: WireMessage + 'static>(
    build: &mut SystemFactory<'_, M>,
    mk_observer: &ObserverFactory<'_, M>,
    scheduler: Box<dyn Scheduler>,
    budget: u64,
) -> BTreeMap<ProcessId, u64> {
    let mut sim = build(scheduler);
    let mut observer = mk_observer();
    run_traced(&mut sim, budget, &mut observer);
    let mut first = BTreeMap::new();
    for op in sim.trace().expect("tracing enabled").ops_of_kind(OP_DECIDE) {
        first.entry(op.process).or_insert(op.step);
    }
    first
}

// ---------------------------------------------------------------------------
// The crash-recovery driver
// ---------------------------------------------------------------------------

/// Rebuilds a crashed process for [`Simulation::restart`]: given the
/// stored snapshot bytes (if the store had any), returns the process
/// plus whether it was rebuilt **from genesis** (no snapshot, or the
/// snapshot failed validation/decoding). Callers typically try
/// `from_snapshot` and fall back to the genesis constructor.
pub type RebuildFn<'a, M> =
    dyn FnMut(ProcessId, Option<Vec<u8>>) -> (Box<dyn Process<M>>, bool) + 'a;

/// Everything a crash-recovery conformance run produced.
pub struct RecoveryRun<M: WireMessage> {
    /// The finished simulation.
    pub sim: Simulation<M>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Witness or minimal violating prefix over the restart-spanning
    /// history. Genesis rejoins are excluded from the honest set (their
    /// durable loss is charged to the fault budget); inclusivity is
    /// asserted only for quiescent runs.
    pub result: Result<Witness, PrefixViolation>,
    /// Processes that rejoined from genesis (no usable snapshot).
    pub genesis_rejoins: BTreeSet<ProcessId>,
    /// Snapshots persisted to the store during the run.
    pub snapshots_taken: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Runs a system under a crash plan with snapshotting, records the full
/// restart-spanning history, and checks it at every prefix. The crash
/// model is the engine's: a crashed process loses its in-flight inbox
/// and all traffic sent while it is down; recovery re-solicits what the
/// restored phase permits (see the module docs).
#[allow(clippy::too_many_arguments)] // the driver *is* the aggregation point
pub fn run_crash_conformance<M: WireMessage + 'static>(
    build: &mut SystemFactory<'_, M>,
    mk_observer: &ObserverFactory<'_, M>,
    rebuild: &mut RebuildFn<'_, M>,
    policy: SnapshotPolicy,
    store: &mut dyn SnapshotStore,
    plan: &CrashPlan,
    cfg: &CheckerConfig,
    scheduler: Box<dyn Scheduler>,
    budget: u64,
) -> RecoveryRun<M> {
    let mut sim = build(scheduler);
    let mut observer = mk_observer();
    sim.enable_trace();
    sim.start();

    let mut events = plan.events.clone();
    events.sort_by_key(|e| e.step);
    let mut next_event = 0usize;
    // (due delivery count, victim), kept sorted by due step.
    let mut pending: Vec<(u64, ProcessId)> = Vec::new();
    let mut genesis_rejoins: BTreeSet<ProcessId> = BTreeSet::new();
    let mut snapshots_taken = 0u64;
    let mut restarts = 0u64;
    let mut last_periodic = 0u64;
    let mut buf: Vec<OpEvent> = Vec::new();

    let do_restart = |sim: &mut Simulation<M>,
                      store: &mut dyn SnapshotStore,
                      rebuild: &mut RebuildFn<'_, M>,
                      genesis_rejoins: &mut BTreeSet<ProcessId>,
                      restarts: &mut u64,
                      victim: ProcessId| {
        let snap = store.load(victim);
        let (proc, from_genesis) = rebuild(victim, snap);
        if from_genesis {
            genesis_rejoins.insert(victim);
        }
        sim.restart(victim, proc);
        *restarts += 1;
    };

    let outcome = loop {
        let delivered = sim.metrics().delivered;

        // 1. Crashes due at this delivery count (a crash of an
        //    already-down process is skipped, not queued).
        while next_event < events.len() && events[next_event].step <= delivered {
            let ev = events[next_event];
            next_event += 1;
            if sim.is_crashed(ev.victim) {
                continue;
            }
            sim.crash(ev.victim);
            pending.push((delivered + ev.downtime, ev.victim));
            pending.sort_by_key(|&(due, _)| due);
        }

        // 2. Restarts whose downtime has elapsed.
        while let Some(&(due, victim)) = pending.first() {
            if due > delivered {
                break;
            }
            pending.remove(0);
            do_restart(
                &mut sim,
                store,
                rebuild,
                &mut genesis_rejoins,
                &mut restarts,
                victim,
            );
        }

        // 3. Observe: diff live process state into ops (restart markers
        //    first, then propose/refine/decide), then snapshot per
        //    policy — on-decide saves happen after the decide is in the
        //    trace, modeling announce-then-fsync.
        buf.clear();
        observer(&sim, &mut buf);
        let mut decided_now: Vec<ProcessId> = Vec::new();
        if !buf.is_empty() {
            buf.sort_by_key(|o| op_priority(o.kind));
            if policy.on_decide {
                decided_now.extend(
                    buf.iter()
                        .filter(|o| o.kind == OP_DECIDE)
                        .map(|o| o.process),
                );
            }
            let trace = sim.trace_mut().expect("tracing enabled");
            for ev in buf.drain(..) {
                trace.push_op(ev);
            }
        }
        for p in decided_now {
            if !sim.is_crashed(p) {
                if let Some(bytes) = sim.snapshot_of(p) {
                    store.save(p, &bytes);
                    snapshots_taken += 1;
                }
            }
        }
        if let Some(k) = policy.every_k {
            if delivered >= last_periodic + k {
                last_periodic = delivered;
                for p in 0..sim.n() {
                    if !sim.is_crashed(p) {
                        if let Some(bytes) = sim.snapshot_of(p) {
                            store.save(p, &bytes);
                            snapshots_taken += 1;
                        }
                    }
                }
            }
        }

        // 4. Advance.
        if delivered >= budget {
            break RunOutcome {
                delivered,
                quiescent: sim.in_flight() == 0,
            };
        }
        if !sim.step() {
            // Quiescent. Pending restarts can no longer wait out their
            // downtime in deliveries — fire the earliest now (restart
            // traffic usually un-quiesces the network). Remaining crash
            // events likewise fast-forward to "now".
            if let Some(&(_, victim)) = pending.first() {
                pending.remove(0);
                do_restart(
                    &mut sim,
                    store,
                    rebuild,
                    &mut genesis_rejoins,
                    &mut restarts,
                    victim,
                );
                continue;
            }
            if next_event < events.len() {
                events[next_event].step = delivered;
                continue;
            }
            break RunOutcome {
                delivered,
                quiescent: true,
            };
        }
    };

    let mut effective = if outcome.quiescent {
        cfg.clone()
    } else {
        cfg.clone().without_inclusivity()
    };
    // A genesis rejoin legitimately lost durable state; its post-rejoin
    // history is a fresh process's, not a continuation. Charge it to
    // the fault budget instead of the safety battery.
    effective.honest.retain(|p| !genesis_rejoins.contains(p));
    let result = check_trace(sim.trace().expect("tracing enabled"), &effective);
    RecoveryRun {
        sim,
        outcome,
        result,
        genesis_rejoins,
        snapshots_taken,
        restarts,
    }
}

/// Replays a recorded schedule under the same crash plan, policy, and a
/// fresh store.
#[allow(clippy::too_many_arguments)]
pub fn replay_crash_schedule<M: WireMessage + 'static>(
    build: &mut SystemFactory<'_, M>,
    mk_observer: &ObserverFactory<'_, M>,
    rebuild: &mut RebuildFn<'_, M>,
    policy: SnapshotPolicy,
    mk_store: &dyn Fn() -> Box<dyn SnapshotStore>,
    plan: &CrashPlan,
    cfg: &CheckerConfig,
    schedule: &[u64],
    budget: u64,
) -> RecoveryRun<M> {
    let mut store = mk_store();
    run_crash_conformance(
        build,
        mk_observer,
        rebuild,
        policy,
        store.as_mut(),
        plan,
        cfg,
        Box::new(ReplayScheduler::new(schedule.to_vec())),
        budget,
    )
}

/// Sweeps adversarial delivery schedules under a fixed crash plan —
/// the crash-recovery twin of [`crate::search::search_schedules`].
/// Every seed gets a fresh store from `mk_store` (snapshots must not
/// leak between runs); the first violation is shrunk to a minimal
/// replayable schedule with the crash plan held fixed.
#[allow(clippy::too_many_arguments)]
pub fn search_crash_schedules<M: WireMessage + 'static>(
    build: &mut SystemFactory<'_, M>,
    mk_observer: &ObserverFactory<'_, M>,
    rebuild: &mut RebuildFn<'_, M>,
    policy: SnapshotPolicy,
    mk_store: &dyn Fn() -> Box<dyn SnapshotStore>,
    plan: &CrashPlan,
    cfg: &CheckerConfig,
    seeds: std::ops::Range<u64>,
    budget: u64,
) -> SearchReport {
    let mut report = SearchReport::default();
    for seed in seeds {
        let (rec, handle) = RecordingScheduler::new(Box::new(SearchScheduler::new(seed)));
        let mut store = mk_store();
        let run = run_crash_conformance(
            build,
            mk_observer,
            rebuild,
            policy,
            store.as_mut(),
            plan,
            cfg,
            Box::new(rec),
            budget,
        );
        report.seeds_run += 1;
        report.deliveries += run.outcome.delivered;
        match run.result {
            Ok(w) => report.ops_checked += w.ops_checked as u64,
            Err(v) => {
                let recorded = handle.lock().clone();
                let (schedule, violation, replays) = shrink_with(
                    |sched, replays| {
                        *replays += 1;
                        replay_crash_schedule(
                            build,
                            mk_observer,
                            rebuild,
                            policy,
                            mk_store,
                            plan,
                            cfg,
                            sched,
                            budget,
                        )
                        .result
                        .err()
                    },
                    recorded,
                    v,
                );
                report.counterexample = Some(Counterexample {
                    seed,
                    schedule,
                    violation,
                    replays,
                });
                return report;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_codec::encode_frame;

    #[test]
    fn memstore_serves_latest() {
        let mut s = MemStore::new();
        assert!(s.load(0).is_none());
        s.save(0, b"one");
        s.save(0, b"two");
        assert_eq!(s.load(0).as_deref(), Some(&b"two"[..]));
        assert!(s.load(1).is_none());
    }

    #[test]
    fn rollback_store_serves_the_first_snapshot() {
        let mut s = RollbackStore::new();
        s.save(3, b"stale");
        s.save(3, b"fresh");
        assert_eq!(s.load(3).as_deref(), Some(&b"stale"[..]));
    }

    #[test]
    fn corrupting_store_breaks_the_checksum() {
        let frame = encode_frame(0x7777, &42u64);
        let mut s = CorruptingStore::new();
        s.save(0, &frame);
        let served = s.load(0).unwrap();
        assert_ne!(served, frame);
        assert!(verify_frame(&served).is_err(), "bit flip must be detected");
    }

    #[test]
    fn corrupting_store_survives_an_empty_blob() {
        let mut s = CorruptingStore::new();
        s.save(3, &[]);
        // Used to panic (`bytes[0]` on an empty vec); must serve the
        // blob instead and let frame validation reject it downstream.
        let served = s.load(3).expect("stored blob is served");
        assert!(served.is_empty());
        assert!(verify_frame(&served).is_err());
    }

    #[test]
    fn dirstore_roundtrips_and_rejects_corruption() {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bgla-dirstore-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let mut s = DirStore::new(&dir).unwrap();
        assert!(s.load(0).is_none(), "empty dir has no snapshot");

        let frame = encode_frame(0x7777, &7u64);
        s.save(0, &frame);
        assert_eq!(s.load(0), Some(frame.clone()));

        // Truncation: the validated load refuses to serve it.
        std::fs::write(s.path(0), &frame[..frame.len() - 3]).unwrap();
        assert!(s.load(0).is_none(), "truncated snapshot must be rejected");

        // Bit rot, likewise.
        let mut rotten = frame.clone();
        rotten[frame.len() / 2] ^= 0x10;
        std::fs::write(s.path(0), &rotten).unwrap();
        assert!(s.load(0).is_none(), "corrupt snapshot must be rejected");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tactics_resolve_against_pilot_decides() {
        let mut first = BTreeMap::new();
        first.insert(1usize, 40u64);
        let plan = resolve_tactics(
            &[
                CrashTactic::BeforeDecide {
                    victim: 1,
                    lead: 5,
                    downtime: 10,
                },
                CrashTactic::AfterDecide {
                    victim: 1,
                    lag: 3,
                    downtime: 10,
                },
                // Never decided in the pilot: falls back to step 1.
                CrashTactic::BeforeDecide {
                    victim: 2,
                    lead: 5,
                    downtime: 10,
                },
                CrashTactic::DoubleCrash {
                    victim: 0,
                    step: 10,
                    gap: 4,
                    downtime: 6,
                },
            ],
            &first,
        );
        let steps: Vec<(ProcessId, u64)> = plan.events.iter().map(|e| (e.victim, e.step)).collect();
        assert_eq!(steps, vec![(2, 1), (0, 10), (0, 20), (1, 35), (1, 43)]);
    }
}
