//! **Wait Till Safe** (WTS) — Algorithms 1 and 2 of the paper.
//!
//! One-shot Byzantine Lattice Agreement in two phases:
//!
//! 1. **Values Disclosure**: every proposer reliably-broadcasts its input.
//!    Delivered values accumulate in the *Safe-values Set* (`SvS`); the
//!    reliable broadcast prevents a Byzantine proposer from disclosing
//!    different values to different processes. A process moves on once it
//!    has seen `n − f` disclosures (not strictly necessary, but it yields
//!    the `O(f)` delay bound — an ablation bench measures the difference).
//! 2. **Deciding**: a proposer repeatedly asks acceptors to ack its
//!    `Proposed_set`; acceptors ack supersets of what they previously
//!    accepted and nack (with their accepted set) otherwise. A proposal
//!    acked by the Byzantine quorum `⌊(n+f)/2⌋ + 1` is decided. During
//!    this phase correct processes only *handle* messages whose values all
//!    lie in `SvS` (the `SAFE` predicate); others wait in a buffer.
//!
//! One [`WtsProcess`] plays both the proposer and acceptor roles, as the
//! paper's deployment note allows.
//!
//! # Representation notes
//!
//! Sets travel as [`ValueSet`] (O(1)-clone, merge-walk joins) and
//! `ack_req`s are delta-encoded ([`SetUpdate`]): after an acceptor has
//! replied to timestamp `t`, later requests to it carry only
//! `Proposed_set ∖ Proposed_set@t`. Acks carry **no set at all** — a
//! correct acceptor's ack echoes exactly the proposer's own
//! `Proposed_set@ts`, which the proposer still holds, so only the
//! timestamp needs to travel; the proposer applies the `SAFE` guard to
//! its own copy, which is the same check the echo used to feed.

use crate::config::SystemConfig;
use crate::value::Value;
use crate::valueset::{DeltaReceiver, DeltaSender, SetUpdate, ValueSet};
use bgla_codec::{decode_frame, encode_frame, CodecError, Reader, Wire, Writer};
use bgla_rbcast::{RbMsg, RbcastEngine};
use bgla_simnet::{Context, Process, ProcessId, WireMessage};
use std::any::Any;

/// Frame kind of a [`WtsProcess`] crash-recovery snapshot.
pub const WTS_SNAPSHOT_KIND: u16 = 0x0101;

/// Wire messages of WTS.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum WtsMsg<V: Value> {
    /// Disclosure-phase traffic: reliable broadcast of initial values.
    Rb(RbMsg<V>),
    /// Proposer → acceptors: request acks for the (delta-encoded)
    /// `Proposed_set`, tagged with the proposer's refinement timestamp.
    AckReq {
        /// Current `Proposed_set` (full on first contact, delta after).
        proposed: SetUpdate<V>,
        /// Refinement timestamp `ts`.
        ts: u64,
    },
    /// Acceptor → proposer: the proposal of `ts` was accepted. The
    /// accepted set is by construction `Proposed_set@ts`, which the
    /// proposer holds — no payload travels.
    Ack {
        /// Timestamp copied from the request.
        ts: u64,
    },
    /// Acceptor → proposer: refused; here is what I had accepted.
    Nack {
        /// The acceptor's `Accepted_set` at refusal time.
        accepted: ValueSet<V>,
        /// Timestamp copied from the request.
        ts: u64,
    },
}

impl<V: Value> WireMessage for WtsMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            WtsMsg::Rb(m) => m.kind(),
            WtsMsg::AckReq { .. } => "ack_req",
            WtsMsg::Ack { .. } => "ack",
            WtsMsg::Nack { .. } => "nack",
        }
    }
    fn wire_size(&self) -> usize {
        match self {
            WtsMsg::Rb(RbMsg::Init { value, .. }) => 16 + value.wire_size(),
            WtsMsg::Rb(RbMsg::Echo { value, .. }) | WtsMsg::Rb(RbMsg::Ready { value, .. }) => {
                24 + value.wire_size()
            }
            WtsMsg::AckReq { proposed, .. } => 16 + proposed.wire_size(),
            WtsMsg::Ack { .. } => 16,
            WtsMsg::Nack { accepted, .. } => 16 + accepted.wire_size(),
        }
    }
}

impl<V: Value> Wire for WtsMsg<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            WtsMsg::Rb(m) => {
                w.u8(0);
                m.encode(w);
            }
            WtsMsg::AckReq { proposed, ts } => {
                w.u8(1);
                proposed.encode(w);
                w.u64(*ts);
            }
            WtsMsg::Ack { ts } => {
                w.u8(2);
                w.u64(*ts);
            }
            WtsMsg::Nack { accepted, ts } => {
                w.u8(3);
                accepted.encode(w);
                w.u64(*ts);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(WtsMsg::Rb(Wire::decode(r)?)),
            1 => Ok(WtsMsg::AckReq {
                proposed: Wire::decode(r)?,
                ts: r.u64()?,
            }),
            2 => Ok(WtsMsg::Ack { ts: r.u64()? }),
            3 => Ok(WtsMsg::Nack {
                accepted: Wire::decode(r)?,
                ts: r.u64()?,
            }),
            _ => Err(CodecError::Invalid("wts msg tag")),
        }
    }
}

/// Proposer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WtsState {
    /// Still collecting disclosures.
    Disclosing,
    /// Proposing / refining.
    Proposing,
    /// Decided (terminal).
    Decided,
}

impl Wire for WtsState {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            WtsState::Disclosing => 0,
            WtsState::Proposing => 1,
            WtsState::Decided => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(WtsState::Disclosing),
            1 => Ok(WtsState::Proposing),
            2 => Ok(WtsState::Decided),
            _ => Err(CodecError::Invalid("wts state tag")),
        }
    }
}

/// A correct WTS participant (proposer + acceptor).
pub struct WtsProcess<V: Value> {
    /// System parameters.
    pub config: SystemConfig,
    me: ProcessId,
    /// This process's initial value (`pro_i`).
    pub proposal: V,
    /// Application-level validity predicate ("is an element of the
    /// lattice", Alg. 1 line 10). Defaults to accepting everything.
    // bgla-lint: allow(wire-coverage, "plain fn pointer; not serializable, re-supplied at construction")
    validator: fn(&V) -> bool,
    /// Ablation switch: propose after the *own* disclosure only instead
    /// of waiting for `n − f` (the paper notes the wait "is not strictly
    /// necessary, but allows us to show a bound of O(f) on the message
    /// delays"). Measured by `exp_ablation`.
    eager: bool,

    state: WtsState,
    rb: RbcastEngine<V>,
    /// Safe-values set: everything reliably delivered in the disclosure
    /// phase (keyed by origin — Observation 1: at most one per process).
    svs: ValueSet<V>,
    /// How many distinct origins have disclosed.
    init_counter: usize,
    /// Current proposal (grows monotonically).
    proposed_set: ValueSet<V>,
    /// Who acked the current timestamp.
    ack_set: std::collections::BTreeSet<ProcessId>,
    ts: u64,
    /// Acceptor role: greatest set accepted so far.
    accepted_set: ValueSet<V>,
    /// Messages waiting to become safe / relevant.
    waiting: Vec<(ProcessId, WtsMsg<V>)>,
    /// Proposer-side delta bookkeeping (snapshots + reply watermarks).
    delta_tx: DeltaSender<V>,
    /// Acceptor-side delta bases (consumed proposals by proposer, ts).
    // bgla-lint: allow(wire-coverage, "delta bases are peer-relative; a restarted process resumes in full-set mode by design")
    delta_rx: DeltaReceiver<V>,
    /// Set by [`WtsProcess::from_snapshot`]: the next `on_start` is a
    /// *recovery* boot (re-announce instead of initialize).
    // bgla-lint: allow(wire-coverage, "boot flag: decode sets it true to mark a recovered process")
    recovered: bool,

    /// The decision, once made (`Stability`: write-once).
    pub decision: Option<ValueSet<V>>,
    /// Causal depth (message delays) at decision time.
    pub decision_depth: Option<u64>,
    /// Number of proposal refinements performed (Lemma 3 bounds this by
    /// `f`).
    pub refinements: u64,
}

impl<V: Value> WtsProcess<V> {
    /// Creates a correct participant with initial value `proposal`.
    pub fn new(me: ProcessId, config: SystemConfig, proposal: V) -> Self {
        WtsProcess {
            config,
            me,
            proposal,
            validator: |_| true,
            eager: false,
            state: WtsState::Disclosing,
            rb: RbcastEngine::new_unchecked(config.n, config.f),
            svs: ValueSet::new(),
            init_counter: 0,
            proposed_set: ValueSet::new(),
            ack_set: std::collections::BTreeSet::new(),
            ts: 0,
            accepted_set: ValueSet::new(),
            waiting: Vec::new(),
            delta_tx: DeltaSender::new(true),
            delta_rx: DeltaReceiver::new(),
            recovered: false,
            decision: None,
            decision_depth: None,
            refinements: 0,
        }
    }

    /// Installs a validity predicate for disclosed values.
    pub fn with_validator(mut self, v: fn(&V) -> bool) -> Self {
        self.validator = v;
        self
    }

    /// Ablation: skip the `n − f` disclosure wait (start proposing after
    /// the first disclosure lands). Correct but loses the O(f) delay
    /// bound — the proposal starts smaller, so more nack-refinements
    /// happen.
    pub fn with_eager_proposing(mut self) -> Self {
        self.eager = true;
        self
    }

    /// Ablation: disable delta-encoded ack requests (every `ack_req`
    /// carries the full set). Used by the byte-count experiments.
    pub fn with_deltas(mut self, enabled: bool) -> Self {
        self.delta_tx = DeltaSender::new(enabled);
        self
    }

    /// The `SAFE` predicate: every value in `set` has been disclosed.
    fn safe(&self, set: &ValueSet<V>) -> bool {
        set.is_subset(&self.svs)
    }

    /// Process id (for diagnostics).
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Current state.
    pub fn state(&self) -> WtsState {
        self.state
    }

    /// Current safe-values set size (diagnostics / tests).
    pub fn svs_len(&self) -> usize {
        self.svs.len()
    }

    /// The current `Proposed_set` (cheap `O(1)` clone) — read by the
    /// conformance observers to emit refine-snapshot op events.
    pub fn proposed_values(&self) -> ValueSet<V> {
        self.proposed_set.clone()
    }

    fn send_ack_req(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        self.delta_tx.record_broadcast(self.ts, &self.proposed_set);
        for to in 0..self.config.n {
            ctx.send(
                to,
                WtsMsg::AckReq {
                    proposed: self.delta_tx.encode_for(to, self.ts, &self.proposed_set),
                    ts: self.ts,
                },
            );
        }
    }

    /// Handles one buffered or fresh message if its guard holds.
    /// Returns `true` when consumed.
    fn try_handle(
        &mut self,
        from: ProcessId,
        msg: &WtsMsg<V>,
        ctx: &mut Context<WtsMsg<V>>,
    ) -> bool {
        match msg {
            // bgla-lint: allow(byzantine-panic, "local invariant: the buffering site only ever stores ack_req / nack")
            WtsMsg::Rb(_) => unreachable!("rb messages are handled eagerly"),
            // ----- Acceptor role (Algorithm 2) -----
            WtsMsg::AckReq { proposed, ts } => {
                let Some(full) = self.delta_rx.resolve(from, proposed) else {
                    return true; // delta gap (Byzantine sender): drop
                };
                if !self.safe(&full) {
                    return false;
                }
                self.delta_rx.record(from, *ts, &full);
                if self.accepted_set.is_subset(&full) {
                    self.accepted_set = full;
                    ctx.send(from, WtsMsg::Ack { ts: *ts });
                } else {
                    ctx.send(
                        from,
                        WtsMsg::Nack {
                            accepted: self.accepted_set.clone(),
                            ts: *ts,
                        },
                    );
                    self.accepted_set.join_with(&full);
                }
                true
            }
            // ----- Proposer role (Algorithm 1) -----
            WtsMsg::Ack { ts } => {
                self.delta_tx.record_reply(from, *ts);
                if *ts < self.ts || self.state == WtsState::Decided {
                    return true; // stale: drop
                }
                // A correct acceptor's ack stands for Proposed_set@ts,
                // which (ts == self.ts) is exactly `proposed_set`; the
                // SAFE guard applies to our own copy.
                if self.state != WtsState::Proposing
                    || *ts != self.ts
                    || !self.safe(&self.proposed_set)
                {
                    return false;
                }
                self.ack_set.insert(from);
                if self.ack_set.len() >= self.config.quorum() {
                    self.state = WtsState::Decided;
                    self.decision = Some(self.proposed_set.clone());
                    self.decision_depth = Some(ctx.depth);
                }
                true
            }
            WtsMsg::Nack { accepted, ts } => {
                self.delta_tx.record_reply(from, *ts);
                if *ts < self.ts || self.state == WtsState::Decided {
                    return true; // stale: drop
                }
                if self.state != WtsState::Proposing || *ts != self.ts || !self.safe(accepted) {
                    return false;
                }
                let grows = !accepted.is_subset(&self.proposed_set);
                if grows {
                    self.proposed_set.join_with(accepted);
                    self.ack_set.clear();
                    self.ts += 1;
                    self.refinements += 1;
                    self.send_ack_req(ctx);
                }
                true
            }
        }
    }

    /// Serializes the durable state as a checksummed snapshot frame
    /// ([`WTS_SNAPSHOT_KIND`]). See the module docs of
    /// [`crate::recovery`] for the durable/volatile contract.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_frame(WTS_SNAPSHOT_KIND, self)
    }

    /// Reconstructs a process from a snapshot produced by
    /// [`Self::snapshot_bytes`]. Volatile state (delta watermarks, the
    /// validator) restarts fresh; chain `.with_validator` to re-install
    /// a predicate. The next `on_start` re-announces instead of
    /// initializing.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, CodecError> {
        decode_frame(WTS_SNAPSHOT_KIND, bytes)
    }

    /// Re-scans the waiting buffer until no more progress is possible.
    fn drain_waiting(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.waiting.len() {
                // bgla-lint: allow(byzantine-panic, "i < waiting.len() loop guard")
                let (from, msg) = self.waiting[i].clone();
                if self.try_handle(from, &msg, ctx) {
                    self.waiting.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

/// The durable half of a [`WtsProcess`]. Volatile and therefore absent:
/// the delta watermarks (`delta_tx`/`delta_rx` — peer-held-state claims
/// that are stale after an amnesiac restart; fresh trackers ride the
/// gap→`Full` fallback) and the `validator` fn pointer (configuration,
/// re-installed by the harness).
impl<V: Value> Wire for WtsProcess<V> {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        w.usize(self.me);
        self.proposal.encode(w);
        self.eager.encode(w);
        self.state.encode(w);
        self.rb.encode(w);
        self.svs.encode(w);
        w.usize(self.init_counter);
        self.proposed_set.encode(w);
        self.ack_set.encode(w);
        w.u64(self.ts);
        self.accepted_set.encode(w);
        self.waiting.encode(w);
        self.delta_tx.enabled().encode(w);
        self.decision.encode(w);
        self.decision_depth.encode(w);
        w.u64(self.refinements);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let config = SystemConfig::decode(r)?;
        let me = r.usize()?;
        let proposal = V::decode(r)?;
        let eager = bool::decode(r)?;
        let state = WtsState::decode(r)?;
        let rb = Wire::decode(r)?;
        let svs = Wire::decode(r)?;
        let init_counter = r.usize()?;
        let proposed_set = Wire::decode(r)?;
        let ack_set = Wire::decode(r)?;
        let ts = r.u64()?;
        let accepted_set = Wire::decode(r)?;
        let waiting = Wire::decode(r)?;
        let deltas = bool::decode(r)?;
        Ok(WtsProcess {
            config,
            me,
            proposal,
            validator: |_| true,
            eager,
            state,
            rb,
            svs,
            init_counter,
            proposed_set,
            ack_set,
            ts,
            accepted_set,
            waiting,
            delta_tx: DeltaSender::new(deltas),
            delta_rx: DeltaReceiver::new(),
            recovered: true,
            decision: Wire::decode(r)?,
            decision_depth: Wire::decode(r)?,
            refinements: r.u64()?,
        })
    }
}

impl<V: Value> Process<WtsMsg<V>> for WtsProcess<V> {
    fn on_start(&mut self, ctx: &mut Context<WtsMsg<V>>) {
        if self.recovered {
            // Recovery boot. Re-announce the disclosure (peers' rb
            // guards dedupe it; our own restored engine refuses to
            // re-echo) and, when mid-proposal, re-issue the ack request
            // for the current timestamp — the acks that were in flight
            // at crash time were swept with the crash.
            self.recovered = false;
            for m in self.rb.broadcast(0, self.proposal.clone()) {
                ctx.broadcast(WtsMsg::Rb(m));
            }
            if self.state == WtsState::Proposing {
                self.ack_set.clear();
                self.send_ack_req(ctx);
            }
            return;
        }
        // Values Disclosure Phase: commit to the initial value.
        self.proposed_set.insert(self.proposal.clone());
        for m in self.rb.broadcast(0, self.proposal.clone()) {
            ctx.broadcast(WtsMsg::Rb(m));
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: WtsMsg<V>, ctx: &mut Context<WtsMsg<V>>) {
        match msg {
            WtsMsg::Rb(rb) => {
                let (out, deliveries) = self.rb.on_message(from, rb);
                for m in out {
                    ctx.broadcast(WtsMsg::Rb(m));
                }
                for d in deliveries {
                    if !(self.validator)(&d.value) {
                        continue; // not an element of the lattice
                    }
                    // SvS keeps growing even after we leave the
                    // disclosure phase ("operations of Phase 1 could run
                    // in parallel with Phase 2"); only Proposed_set stops
                    // absorbing disclosures.
                    self.svs.insert(d.value.clone());
                    self.init_counter += 1;
                    if self.state == WtsState::Disclosing {
                        self.proposed_set.insert(d.value);
                    }
                }
                // Enough disclosures? Start proposing.
                let threshold = if self.eager {
                    1
                } else {
                    self.config.disclosure_threshold()
                };
                if self.state == WtsState::Disclosing && self.init_counter >= threshold {
                    self.state = WtsState::Proposing;
                    self.send_ack_req(ctx);
                }
                self.drain_waiting(ctx);
            }
            other => {
                if !self.try_handle(from, &other, ctx) {
                    self.waiting.push((from, other));
                } else {
                    self.drain_waiting(ctx);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.snapshot_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::wts_system;
    use crate::spec;
    use bgla_simnet::{RandomScheduler, SimulationBuilder};

    #[test]
    fn four_honest_processes_agree() {
        let config = SystemConfig::new(4, 1);
        let mut b = SimulationBuilder::new();
        for i in 0..4 {
            b = b.add(Box::new(WtsProcess::new(i, config, 100 + i as u64)));
        }
        let mut sim = b.build();
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        let mut decisions = Vec::new();
        for i in 0..4 {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            let d = p.decision.as_ref().expect("every correct process decides");
            // Inclusivity: own value present.
            assert!(d.contains(&(100 + i as u64)));
            decisions.push(d.clone());
        }
        spec::check_comparability(&decisions).unwrap();
    }

    #[test]
    fn decisions_comparable_under_random_schedules() {
        for seed in 0..30 {
            let (mut sim, config) =
                wts_system(7, 2, |i| i as u64, Box::new(RandomScheduler::new(seed)));
            let out = sim.run(5_000_000);
            assert!(out.quiescent, "seed {seed}");
            let mut decisions = Vec::new();
            for i in 0..config.n {
                let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
                let d = p.decision.clone().expect("liveness");
                assert!(d.contains(&(i as u64)), "inclusivity @ {i} (seed {seed})");
                decisions.push(d);
            }
            spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn decision_depth_within_theorem_3_bound() {
        for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
            let (mut sim, _) = wts_system(
                n,
                f,
                |i| i as u64,
                Box::new(bgla_simnet::FifoScheduler::new()),
            );
            sim.run(10_000_000);
            for i in 0..n {
                let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
                let depth = p.decision_depth.expect("decided");
                assert!(
                    depth <= (2 * f as u64) + 5,
                    "n={n} f={f} p{i}: depth {depth} > 2f+5"
                );
            }
        }
    }

    #[test]
    fn refinements_bounded_by_f() {
        for seed in 0..20 {
            let (mut sim, config) =
                wts_system(7, 2, |i| i as u64, Box::new(RandomScheduler::new(seed)));
            sim.run(5_000_000);
            for i in 0..config.n {
                let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
                assert!(
                    p.refinements <= config.f as u64,
                    "seed {seed} p{i}: {} refinements > f={}",
                    p.refinements,
                    config.f
                );
            }
        }
    }

    #[test]
    fn validator_filters_garbage() {
        // Values >= 1000 are "not elements of the lattice".
        let config = SystemConfig::new(4, 1);
        let mut b = SimulationBuilder::new();
        for i in 0..4 {
            let value = if i == 3 { 5000u64 } else { i as u64 };
            b = b.add(Box::new(
                WtsProcess::new(i, config, value).with_validator(|v| *v < 1000),
            ));
        }
        let mut sim = b.build();
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        for i in 0..3 {
            let p = sim.process_as::<WtsProcess<u64>>(i).unwrap();
            let d = p.decision.as_ref().expect("correct processes decide");
            assert!(!d.contains(&5000), "garbage value decided at p{i}");
        }
    }

    /// Delta on/off produce identical decisions; deltas strictly shrink
    /// the modeled ack_req bytes once refinements happen.
    #[test]
    fn deltas_preserve_outcomes_and_shrink_bytes() {
        let run = |deltas: bool| {
            let config = SystemConfig::new(7, 2);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(11)));
            for i in 0..7 {
                b = b.add(Box::new(
                    WtsProcess::new(i, config, i as u64).with_deltas(deltas),
                ));
            }
            let mut sim = b.build();
            assert!(sim.run(10_000_000).quiescent);
            let decisions: Vec<ValueSet<u64>> = (0..7)
                .map(|i| {
                    sim.process_as::<WtsProcess<u64>>(i)
                        .unwrap()
                        .decision
                        .clone()
                        .expect("liveness")
                })
                .collect();
            let bytes = *sim
                .metrics()
                .bytes_by_kind
                .get("ack_req")
                .expect("ack_reqs sent");
            (decisions, bytes)
        };
        let (with_deltas, bytes_on) = run(true);
        let (without, bytes_off) = run(false);
        assert_eq!(with_deltas, without, "deltas changed the outcome");
        assert!(
            bytes_on <= bytes_off,
            "deltas increased ack_req bytes: {bytes_on} > {bytes_off}"
        );
    }
}
