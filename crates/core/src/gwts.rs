//! **Generalized Wait Till Safe** (GWTS) — Algorithms 3 and 4.
//!
//! Solves *Generalized* Byzantine Lattice Agreement: inputs arrive as an
//! (in principle infinite) stream; values are batched per decision round;
//! each round runs the two-phase WTS pattern. The two generalization
//! hazards the paper identifies are handled exactly as prescribed:
//!
//! * **Round clogging** — Byzantine proposers pretending to decide and
//!   rushing ahead would flood acceptors with future-round proposals.
//!   Defense: acceptors *trust* round `r` (process its messages) only
//!   after seeing public evidence that round `r − 1` legitimately ended
//!   (`Safe_r`, Lemmas 6/7).
//! * **Public acceptance** — acks are *reliably broadcast* rather than
//!   sent point-to-point, making quorum formation public, so any correct
//!   proposer can adopt a committed proposal of round `r` as its own
//!   decision (provided Local Stability is preserved), and acceptors can
//!   advance `Safe_r` consistently.
//!
//! Interpretation note (documented in DESIGN.md): the paper writes the
//! proposer `SAFE` check as `⊆ SvS[r]`; since `Proposed_set` accumulates
//! values from *all* earlier rounds, `SvS[r]` must be read cumulatively —
//! the proof of Theorem 4 indeed works with `W_r = ∪_{r'≤r} SvS[r']`.
//! We therefore check safety against the union of all delivered
//! disclosures, which is exactly the `∃r` form the paper's acceptor
//! predicate `SAFEA` already has.

use crate::config::SystemConfig;
use crate::value::Value;
use crate::valueset::{DeltaReceiver, DeltaSender, SetUpdate, ValueSet};
use bgla_codec::{decode_frame, encode_frame, CodecError, Reader, Wire, Writer};
use bgla_rbcast::{RbMsg, RbcastEngine};
use bgla_simnet::{Context, Process, ProcessId, WireMessage};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// Frame kind of a [`GwtsProcess`] crash-recovery snapshot.
pub const GWTS_SNAPSHOT_KIND: u16 = 0x0102;

/// A reliably-broadcast acceptance record (the paper's
/// `<ack, Accepted_set, destination, sender, ts, round>`; the sender is
/// the authenticated rbcast origin).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AckRecord<V: Value> {
    /// The set the acceptor accepted.
    pub accepted: ValueSet<V>,
    /// The proposer whose request triggered this acceptance.
    pub destination: ProcessId,
    /// Proposer's refinement timestamp.
    pub ts: u64,
    /// Round number.
    pub round: u64,
}

impl<V: Value> Wire for AckRecord<V> {
    fn encode(&self, w: &mut Writer) {
        self.accepted.encode(w);
        w.usize(self.destination);
        w.u64(self.ts);
        w.u64(self.round);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AckRecord {
            accepted: Wire::decode(r)?,
            destination: r.usize()?,
            ts: r.u64()?,
            round: r.u64()?,
        })
    }
}

/// GWTS wire messages.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum GwtsMsg<V: Value> {
    /// Disclosure of `Batch[r]` via reliable broadcast (tag = round).
    Disc(RbMsg<ValueSet<V>>),
    /// Proposer → acceptors.
    AckReq {
        /// Cumulative proposal (delta-encoded per acceptor).
        proposed: SetUpdate<V>,
        /// Refinement timestamp.
        ts: u64,
        /// Round.
        round: u64,
    },
    /// Acceptor acks are reliably broadcast (tag = per-origin counter).
    Ack(RbMsg<AckRecord<V>>),
    /// Point-to-point refusal carrying the acceptor's set.
    Nack {
        /// Acceptor's accepted set.
        accepted: ValueSet<V>,
        /// Timestamp copied from the request.
        ts: u64,
        /// Round copied from the request.
        round: u64,
    },
}

impl<V: Value> WireMessage for GwtsMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            GwtsMsg::Disc(m) => match m {
                RbMsg::Init { .. } => "disc_init",
                RbMsg::Echo { .. } => "disc_echo",
                RbMsg::Ready { .. } => "disc_ready",
            },
            GwtsMsg::AckReq { .. } => "ack_req",
            GwtsMsg::Ack(m) => match m {
                RbMsg::Init { .. } => "ack_init",
                RbMsg::Echo { .. } => "ack_echo",
                RbMsg::Ready { .. } => "ack_ready",
            },
            GwtsMsg::Nack { .. } => "nack",
        }
    }
    fn wire_size(&self) -> usize {
        fn rb_overhead<T>(m: &RbMsg<T>) -> usize {
            match m {
                RbMsg::Init { .. } => 16,
                _ => 24,
            }
        }
        match self {
            GwtsMsg::Disc(m) => {
                let p = match m {
                    RbMsg::Init { value, .. }
                    | RbMsg::Echo { value, .. }
                    | RbMsg::Ready { value, .. } => value.wire_size(),
                };
                rb_overhead(m) + p
            }
            GwtsMsg::AckReq { proposed, .. } => 24 + proposed.wire_size(),
            GwtsMsg::Ack(m) => {
                let p = match m {
                    RbMsg::Init { value, .. }
                    | RbMsg::Echo { value, .. }
                    | RbMsg::Ready { value, .. } => 24 + value.accepted.wire_size(),
                };
                rb_overhead(m) + p
            }
            GwtsMsg::Nack { accepted, .. } => 24 + accepted.wire_size(),
        }
    }
}

impl<V: Value> Wire for GwtsMsg<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            GwtsMsg::Disc(m) => {
                w.u8(0);
                m.encode(w);
            }
            GwtsMsg::AckReq {
                proposed,
                ts,
                round,
            } => {
                w.u8(1);
                proposed.encode(w);
                w.u64(*ts);
                w.u64(*round);
            }
            GwtsMsg::Ack(m) => {
                w.u8(2);
                m.encode(w);
            }
            GwtsMsg::Nack {
                accepted,
                ts,
                round,
            } => {
                w.u8(3);
                accepted.encode(w);
                w.u64(*ts);
                w.u64(*round);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(GwtsMsg::Disc(Wire::decode(r)?)),
            1 => Ok(GwtsMsg::AckReq {
                proposed: Wire::decode(r)?,
                ts: r.u64()?,
                round: r.u64()?,
            }),
            2 => Ok(GwtsMsg::Ack(Wire::decode(r)?)),
            3 => Ok(GwtsMsg::Nack {
                accepted: Wire::decode(r)?,
                ts: r.u64()?,
                round: r.u64()?,
            }),
            _ => Err(CodecError::Invalid("gwts msg tag")),
        }
    }
}

/// Proposer phase within the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GwtsState {
    /// Collecting round-`r` disclosures.
    Disclosing,
    /// Proposing / refining in round `r`.
    Proposing,
    /// Finished `max_rounds` rounds (simulation-only terminal state; the
    /// real protocol never stops).
    Done,
}

impl Wire for GwtsState {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            GwtsState::Disclosing => 0,
            GwtsState::Proposing => 1,
            GwtsState::Done => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(GwtsState::Disclosing),
            1 => Ok(GwtsState::Proposing),
            2 => Ok(GwtsState::Done),
            _ => Err(CodecError::Invalid("gwts state tag")),
        }
    }
}

/// A correct GWTS participant (proposer + acceptor co-located).
pub struct GwtsProcess<V: Value> {
    /// System parameters.
    pub config: SystemConfig,
    me: ProcessId,
    /// Values to inject at the start of each round (the input stream,
    /// pre-batched by arrival round). [`GwtsProcess::new_value`] appends
    /// at runtime instead, as the RSM does.
    pub input_schedule: BTreeMap<u64, Vec<V>>,
    /// Number of rounds to run before going quiescent (the paper's
    /// protocol runs forever; simulations must stop).
    pub max_rounds: u64,

    state: GwtsState,
    /// Current round.
    pub round: u64,
    ts: u64,
    rb_disc: RbcastEngine<ValueSet<V>>,
    rb_ack: RbcastEngine<AckRecord<V>>,
    next_ack_tag: u64,
    /// Per-round pending input batches.
    batches: BTreeMap<u64, Vec<V>>,
    /// Union of all delivered disclosures (cumulative SvS).
    svs_all: ValueSet<V>,
    /// Disclosure deliveries per round.
    counters: BTreeMap<u64, usize>,
    /// Cumulative proposal.
    proposed_set: ValueSet<V>,
    /// Acceptor: current accepted set.
    accepted_set: ValueSet<V>,
    /// Acceptor: highest trusted round.
    pub safe_r: u64,
    /// Quorum bookkeeping: ack record -> origins that broadcast it.
    ack_history: BTreeMap<AckRecord<V>, BTreeSet<ProcessId>>,
    /// Non-disclosure messages waiting on safety / round guards.
    waiting: Vec<(ProcessId, GwtsMsg<V>)>,
    /// RB-delivered ack records waiting on safety / round guards.
    pending_acks: Vec<(ProcessId, AckRecord<V>)>,
    /// Cumulative decision (Local Stability floor).
    decided_set: ValueSet<V>,
    /// Proposer-side delta bookkeeping (snapshots + reply watermarks).
    delta_tx: DeltaSender<V>,
    /// Acceptor-side delta bases.
    // bgla-lint: allow(wire-coverage, "delta bases are peer-relative; a restarted process resumes in full-set mode by design")
    delta_rx: DeltaReceiver<V>,
    /// Set by [`GwtsProcess::from_snapshot`]: the next `on_start` is a
    /// recovery boot.
    // bgla-lint: allow(wire-coverage, "boot flag: decode sets it true to mark a recovered process")
    recovered: bool,

    /// The decision sequence `Dec_i`.
    pub decisions: Vec<ValueSet<V>>,
    /// Causal depth at each decision.
    pub decision_depths: Vec<u64>,
    /// Refinements per round (Lemma 10 bounds each by `f`).
    pub refinements: BTreeMap<u64, u64>,
    /// Every value this process has proposed (for the generalized
    /// inclusivity checker).
    pub all_inputs: Vec<V>,
}

impl<V: Value> GwtsProcess<V> {
    /// Creates a participant that will run `max_rounds` rounds, feeding
    /// itself `input_schedule[r]` at the start of round `r`.
    pub fn new(
        me: ProcessId,
        config: SystemConfig,
        input_schedule: BTreeMap<u64, Vec<V>>,
        max_rounds: u64,
    ) -> Self {
        GwtsProcess {
            config,
            me,
            input_schedule,
            max_rounds,
            state: GwtsState::Disclosing, // set properly in on_start
            round: 0,
            ts: 0,
            rb_disc: RbcastEngine::new(config.n, config.f),
            rb_ack: RbcastEngine::new(config.n, config.f),
            next_ack_tag: 0,
            batches: BTreeMap::new(),
            svs_all: ValueSet::new(),
            counters: BTreeMap::new(),
            proposed_set: ValueSet::new(),
            accepted_set: ValueSet::new(),
            safe_r: 0,
            ack_history: BTreeMap::new(),
            waiting: Vec::new(),
            pending_acks: Vec::new(),
            decided_set: ValueSet::new(),
            delta_tx: DeltaSender::new(true),
            delta_rx: DeltaReceiver::new(),
            recovered: false,
            decisions: Vec::new(),
            decision_depths: Vec::new(),
            refinements: BTreeMap::new(),
            all_inputs: Vec::new(),
        }
    }

    /// Ablation: disable delta-encoded ack requests (every `ack_req`
    /// carries the full cumulative set). Used by the byte experiments.
    pub fn with_deltas(mut self, enabled: bool) -> Self {
        self.delta_tx = DeltaSender::new(enabled);
        self
    }

    /// Feeds a new input value: goes into the batch of the *next* round
    /// (`Batch[r+1]`), exactly like Algorithm 3's `new_value`.
    pub fn new_value(&mut self, v: V) {
        self.all_inputs.push(v.clone());
        self.batches.entry(self.round + 1).or_default().push(v);
    }

    /// Process id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Current state.
    pub fn state(&self) -> GwtsState {
        self.state
    }

    /// The latest (largest) decision, if any.
    pub fn latest_decision(&self) -> Option<&ValueSet<V>> {
        self.decisions.last()
    }

    /// The cumulative `Proposed_set` (cheap `O(1)` clone) — read by the
    /// conformance observers to emit refine-snapshot op events.
    pub fn proposed_values(&self) -> ValueSet<V> {
        self.proposed_set.clone()
    }

    /// Whether `set` is known (from the public ack history) to have been
    /// accepted by a Byzantine quorum — the confirmation predicate of the
    /// RSM plug-in (Algorithm 7): `<ack, set, ·, ·, ts, r>` appears
    /// `⌊(n+f)/2⌋+1` times for some fixed `(ts, r)`.
    pub fn has_committed(&self, set: &ValueSet<V>) -> bool {
        let quorum = self.config.quorum();
        self.ack_history
            .iter()
            .any(|(rec, origins)| rec.accepted == *set && origins.len() >= quorum)
    }

    fn safe(&self, set: &ValueSet<V>) -> bool {
        set.is_subset(&self.svs_all)
    }

    fn start_round(&mut self, round: u64, ctx: &mut Context<GwtsMsg<V>>) {
        self.round = round;
        if let Some(vals) = self.input_schedule.remove(&round) {
            for v in vals {
                self.all_inputs.push(v.clone());
                self.batches.entry(round).or_default().push(v);
            }
        }
        let batch: ValueSet<V> = self
            .batches
            .remove(&round)
            .unwrap_or_default()
            .into_iter()
            .collect();
        self.proposed_set.join_with(&batch);
        self.state = GwtsState::Disclosing;
        for m in self.rb_disc.broadcast(round, batch) {
            ctx.broadcast(GwtsMsg::Disc(m));
        }
        self.maybe_start_proposing(ctx);
    }

    fn maybe_start_proposing(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
        if self.state == GwtsState::Disclosing
            && self.counters.get(&self.round).copied().unwrap_or(0)
                >= self.config.disclosure_threshold()
        {
            self.state = GwtsState::Proposing;
            self.ts += 1;
            self.send_ack_req(ctx);
            self.check_decision(ctx);
        }
    }

    fn send_ack_req(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
        self.delta_tx.record_broadcast(self.ts, &self.proposed_set);
        for to in 0..self.config.n {
            ctx.send(
                to,
                GwtsMsg::AckReq {
                    proposed: self.delta_tx.encode_for(to, self.ts, &self.proposed_set),
                    ts: self.ts,
                    round: self.round,
                },
            );
        }
    }

    /// Advances `Safe_r` while some round-`Safe_r` proposal shows a
    /// public quorum of identical ack records.
    fn advance_safe_r(&mut self) {
        loop {
            let quorum = self.config.quorum();
            let advanced = self
                .ack_history
                .iter()
                .any(|(rec, origins)| rec.round == self.safe_r && origins.len() >= quorum);
            if advanced {
                self.safe_r += 1;
            } else {
                break;
            }
        }
    }

    /// Decides if some round-`r` proposal has a public quorum and extends
    /// the current decision; then rolls into the next round.
    fn check_decision(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
        while self.state == GwtsState::Proposing {
            let quorum = self.config.quorum();
            let candidate = self
                .ack_history
                .iter()
                .filter(|(rec, origins)| {
                    rec.round == self.round
                        && origins.len() >= quorum
                        && self.decided_set.is_subset(&rec.accepted)
                })
                // Prefer the largest committed set (committed sets of one
                // round are mutually comparable by quorum intersection).
                .max_by_key(|(rec, _)| rec.accepted.len())
                .map(|(rec, _)| rec.accepted.clone());
            let Some(accepted) = candidate else { break };
            self.decisions.push(accepted.clone());
            self.decision_depths.push(ctx.depth);
            self.decided_set = accepted;
            self.prune_old_rounds();
            let next = self.round + 1;
            if next < self.max_rounds {
                self.start_round(next, ctx);
            } else {
                self.state = GwtsState::Done;
            }
        }
    }

    /// Tries to consume one AckReq/Nack; `true` if consumed.
    fn try_handle(
        &mut self,
        from: ProcessId,
        msg: &GwtsMsg<V>,
        ctx: &mut Context<GwtsMsg<V>>,
    ) -> bool {
        match msg {
            // ---- Acceptor role ----
            GwtsMsg::AckReq {
                proposed,
                ts,
                round,
            } => {
                if *round > self.safe_r {
                    return false;
                }
                let Some(full) = self.delta_rx.resolve(from, proposed) else {
                    return true; // delta gap (Byzantine sender): drop
                };
                if !self.safe(&full) {
                    return false;
                }
                self.delta_rx.record(from, *ts, &full);
                if self.accepted_set.is_subset(&full) {
                    self.accepted_set = full;
                    let rec = AckRecord {
                        accepted: self.accepted_set.clone(),
                        destination: from,
                        ts: *ts,
                        round: *round,
                    };
                    let tag = self.next_ack_tag;
                    self.next_ack_tag += 1;
                    for m in self.rb_ack.broadcast(tag, rec) {
                        ctx.broadcast(GwtsMsg::Ack(m));
                    }
                } else {
                    ctx.send(
                        from,
                        GwtsMsg::Nack {
                            accepted: self.accepted_set.clone(),
                            ts: *ts,
                            round: *round,
                        },
                    );
                    self.accepted_set.join_with(&full);
                }
                true
            }
            // ---- Proposer role ----
            GwtsMsg::Nack {
                accepted,
                ts,
                round,
            } => {
                self.delta_tx.record_reply(from, *ts);
                if *round < self.round
                    || (*round == self.round && *ts < self.ts)
                    || self.state == GwtsState::Done
                {
                    return true; // stale
                }
                if self.state != GwtsState::Proposing
                    || *round != self.round
                    || *ts != self.ts
                    || !self.safe(accepted)
                {
                    return false;
                }
                if !accepted.is_subset(&self.proposed_set) {
                    self.proposed_set.join_with(accepted);
                    self.ts += 1;
                    *self.refinements.entry(self.round).or_insert(0) += 1;
                    self.send_ack_req(ctx);
                }
                true
            }
            // bgla-lint: allow(byzantine-panic, "local invariant: the buffering site only ever stores ack_req / nack")
            GwtsMsg::Disc(_) | GwtsMsg::Ack(_) => unreachable!("handled eagerly"),
        }
    }

    /// Absorbs a reliably-delivered ack record if safe and trusted;
    /// `true` if consumed.
    fn try_absorb_ack(&mut self, origin: ProcessId, rec: &AckRecord<V>) -> bool {
        if rec.round > self.safe_r || !self.safe(&rec.accepted) {
            return false;
        }
        if rec.destination == self.me {
            // The acceptor publicly holds our proposal of `ts`: later
            // ack_reqs to it may be delta-encoded against that base.
            self.delta_tx.record_reply(origin, rec.ts);
        }
        self.ack_history
            .entry(rec.clone())
            .or_default()
            .insert(origin);
        true
    }

    /// Garbage-collects per-round state that can no longer influence the
    /// protocol: once this proposer decided round `r` *and* the acceptor
    /// trusts a round beyond it, ack records and disclosure counters for
    /// rounds `< min(r, safe_r − 1)` are dead weight (decisions only read
    /// records of the current round; `Safe_r` only reads round `safe_r`).
    /// Keeps long streams at O(1) retained rounds instead of O(rounds).
    fn prune_old_rounds(&mut self) {
        let keep_from = self.round.min(self.safe_r.saturating_sub(1));
        self.ack_history.retain(|rec, _| rec.round >= keep_from);
        self.counters.retain(|round, _| *round >= keep_from);
        self.pending_acks.retain(|(_, rec)| rec.round >= keep_from);
    }

    /// Retained ack-history size (diagnostics: pruning keeps it bounded).
    pub fn ack_history_len(&self) -> usize {
        self.ack_history.len()
    }

    fn drain_waiting(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.waiting.len() {
                // bgla-lint: allow(byzantine-panic, "i < waiting.len() loop guard")
                let (from, msg) = self.waiting[i].clone();
                if self.try_handle(from, &msg, ctx) {
                    self.waiting.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            let mut j = 0;
            while j < self.pending_acks.len() {
                // bgla-lint: allow(byzantine-panic, "i < waiting.len() loop guard")
                let (origin, rec) = self.pending_acks[j].clone();
                if self.try_absorb_ack(origin, &rec) {
                    self.pending_acks.remove(j);
                    progressed = true;
                } else {
                    j += 1;
                }
            }
            if progressed {
                self.advance_safe_r();
                self.check_decision(ctx);
                self.maybe_start_proposing(ctx);
            } else {
                break;
            }
        }
    }
}

/// The durable half of a [`GwtsProcess`]: everything both roles need to
/// stay safe across a restart — both rbcast engines (no re-echo, no
/// re-delivery), the public ack history, the Local Stability floor
/// `decided_set`, and the full decision sequence. Volatile and absent:
/// the delta watermarks (fresh trackers ride the gap→`Full` fallback).
impl<V: Value> Wire for GwtsProcess<V> {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        w.usize(self.me);
        self.input_schedule.encode(w);
        w.u64(self.max_rounds);
        self.state.encode(w);
        w.u64(self.round);
        w.u64(self.ts);
        self.rb_disc.encode(w);
        self.rb_ack.encode(w);
        w.u64(self.next_ack_tag);
        self.batches.encode(w);
        self.svs_all.encode(w);
        self.counters.encode(w);
        self.proposed_set.encode(w);
        self.accepted_set.encode(w);
        w.u64(self.safe_r);
        self.ack_history.encode(w);
        self.waiting.encode(w);
        self.pending_acks.encode(w);
        self.decided_set.encode(w);
        self.delta_tx.enabled().encode(w);
        self.decisions.encode(w);
        self.decision_depths.encode(w);
        self.refinements.encode(w);
        self.all_inputs.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GwtsProcess {
            config: Wire::decode(r)?,
            me: r.usize()?,
            input_schedule: Wire::decode(r)?,
            max_rounds: r.u64()?,
            state: Wire::decode(r)?,
            round: r.u64()?,
            ts: r.u64()?,
            rb_disc: Wire::decode(r)?,
            rb_ack: Wire::decode(r)?,
            next_ack_tag: r.u64()?,
            batches: Wire::decode(r)?,
            svs_all: Wire::decode(r)?,
            counters: Wire::decode(r)?,
            proposed_set: Wire::decode(r)?,
            accepted_set: Wire::decode(r)?,
            safe_r: r.u64()?,
            ack_history: Wire::decode(r)?,
            waiting: Wire::decode(r)?,
            pending_acks: Wire::decode(r)?,
            decided_set: Wire::decode(r)?,
            delta_tx: DeltaSender::new(bool::decode(r)?),
            delta_rx: DeltaReceiver::new(),
            recovered: true,
            decisions: Wire::decode(r)?,
            decision_depths: Wire::decode(r)?,
            refinements: Wire::decode(r)?,
            all_inputs: Wire::decode(r)?,
        })
    }
}

impl<V: Value> GwtsProcess<V> {
    /// Serializes the durable state as a checksummed snapshot frame
    /// ([`GWTS_SNAPSHOT_KIND`]).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_frame(GWTS_SNAPSHOT_KIND, self)
    }

    /// Reconstructs a process from [`Self::snapshot_bytes`] output. The
    /// next `on_start` re-announces (current-`ts` ack request) instead
    /// of starting round 0.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, CodecError> {
        decode_frame(GWTS_SNAPSHOT_KIND, bytes)
    }
}

impl<V: Value> Process<GwtsMsg<V>> for GwtsProcess<V> {
    fn on_start(&mut self, ctx: &mut Context<GwtsMsg<V>>) {
        if self.recovered {
            // Recovery boot: when mid-proposal, re-issue the ack request
            // at the current timestamp — in-flight acks were swept with
            // the crash, and acceptors that already hold this proposal
            // will publicly re-ack it (fresh rbcast instances), letting
            // the quorum re-form. A process recovered mid-*disclosure*
            // sends nothing: its own init survived the crash (outbound
            // traffic is not dropped), and what it lost — inbound
            // echo/ready traffic — cannot be re-requested under plain
            // Bracha broadcast. It may stall until the next round's
            // traffic arrives; see `crate::recovery` for why that is
            // absorbed within the crash budget.
            self.recovered = false;
            if self.state == GwtsState::Proposing {
                self.send_ack_req(ctx);
            }
            return;
        }
        self.start_round(0, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: GwtsMsg<V>, ctx: &mut Context<GwtsMsg<V>>) {
        match msg {
            GwtsMsg::Disc(rb) => {
                let (out, dels) = self.rb_disc.on_message(from, rb);
                for m in out {
                    ctx.broadcast(GwtsMsg::Disc(m));
                }
                for d in dels {
                    self.svs_all.join_with(&d.value);
                    *self.counters.entry(d.tag).or_insert(0) += 1;
                    if self.state == GwtsState::Disclosing {
                        self.proposed_set.join_with(&d.value);
                    }
                }
                self.maybe_start_proposing(ctx);
                self.drain_waiting(ctx);
            }
            GwtsMsg::Ack(rb) => {
                let (out, dels) = self.rb_ack.on_message(from, rb);
                for m in out {
                    ctx.broadcast(GwtsMsg::Ack(m));
                }
                for d in dels {
                    if !self.try_absorb_ack(d.origin, &d.value) {
                        self.pending_acks.push((d.origin, d.value));
                    }
                }
                self.advance_safe_r();
                self.check_decision(ctx);
                self.drain_waiting(ctx);
            }
            other => {
                if self.try_handle(from, &other, ctx) {
                    self.drain_waiting(ctx);
                } else {
                    self.waiting.push((from, other));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.snapshot_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use bgla_simnet::{FifoScheduler, RandomScheduler, Scheduler, Simulation, SimulationBuilder};

    /// Builds an all-correct GWTS system. Inputs are injected only into
    /// rounds `0 .. rounds − 2`: a value fed to the *last* rounds may
    /// legitimately only appear in decisions of rounds beyond the
    /// simulation horizon (the real protocol never stops), so the finite
    /// harness leaves two drain rounds.
    fn gwts_system(
        n: usize,
        f: usize,
        rounds: u64,
        values_per_round: u64,
        scheduler: Box<dyn Scheduler>,
    ) -> Simulation<GwtsMsg<u64>> {
        assert!(rounds >= 3, "need >= 2 drain rounds for inclusivity");
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(scheduler);
        for i in 0..n {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for r in 0..rounds - 2 {
                let vals = (0..values_per_round)
                    .map(|k| (i as u64) * 1_000_000 + r * 1_000 + k)
                    .collect();
                schedule.insert(r, vals);
            }
            b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
        }
        b.build()
    }

    fn collect(
        sim: &Simulation<GwtsMsg<u64>>,
        n: usize,
    ) -> (Vec<Vec<ValueSet<u64>>>, Vec<Vec<u64>>) {
        let mut seqs = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
            seqs.push(p.decisions.clone());
            inputs.push(p.all_inputs.clone());
        }
        (seqs, inputs)
    }

    #[test]
    fn honest_stream_decides_every_round() {
        let (n, f, rounds) = (4, 1, 4u64);
        let mut sim = gwts_system(n, f, rounds, 2, Box::new(FifoScheduler::new()));
        let out = sim.run(10_000_000);
        assert!(out.quiescent);
        let (seqs, inputs) = collect(&sim, n);
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), rounds as usize, "process {i} decision count");
        }
        spec::check_local_stability(&seqs).unwrap();
        spec::check_global_comparability(&seqs).unwrap();
        spec::check_generalized_inclusivity(&inputs, &seqs).unwrap();
    }

    #[test]
    fn random_schedules_preserve_generalized_spec() {
        for seed in 0..15 {
            let (n, f, rounds) = (4, 1, 3u64);
            let mut sim = gwts_system(n, f, rounds, 1, Box::new(RandomScheduler::new(seed)));
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "seed {seed}");
            let (seqs, inputs) = collect(&sim, n);
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(s.len(), rounds as usize, "seed {seed} p{i}");
            }
            spec::check_local_stability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            spec::check_generalized_inclusivity(&inputs, &seqs)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn larger_system_multi_round() {
        let (n, f, rounds) = (7, 2, 3u64);
        let mut sim = gwts_system(n, f, rounds, 2, Box::new(RandomScheduler::new(7)));
        let out = sim.run(50_000_000);
        assert!(out.quiescent);
        let (seqs, inputs) = collect(&sim, n);
        for s in &seqs {
            assert_eq!(s.len(), rounds as usize);
        }
        spec::check_local_stability(&seqs).unwrap();
        spec::check_global_comparability(&seqs).unwrap();
        spec::check_generalized_inclusivity(&inputs, &seqs).unwrap();
    }

    #[test]
    fn refinements_bounded_per_round() {
        for seed in 0..10 {
            let (n, f, rounds) = (4, 1, 3u64);
            let mut sim = gwts_system(n, f, rounds, 1, Box::new(RandomScheduler::new(seed)));
            sim.run(10_000_000);
            for i in 0..n {
                let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
                for (r, c) in &p.refinements {
                    // Lemma 10: at most f refinements per round... plus
                    // the slack of concurrent proposers racing within the
                    // round (the proof counts set growth, each nack adds
                    // at least one of at most n new values per round).
                    assert!(
                        *c <= n as u64,
                        "seed {seed} p{i} round {r}: {c} refinements"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batches_still_progress() {
        // Processes with no inputs at all still decide every round
        // (decisions may be empty sets — bottom of the lattice).
        let config = SystemConfig::new(4, 1);
        let mut b = SimulationBuilder::new();
        for i in 0..4 {
            b = b.add(Box::new(GwtsProcess::<u64>::new(
                i,
                config,
                BTreeMap::new(),
                2,
            )));
        }
        let mut sim = b.build();
        let out = sim.run(10_000_000);
        assert!(out.quiescent);
        for i in 0..4 {
            let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
            assert_eq!(p.decisions.len(), 2);
        }
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use bgla_simnet::{FifoScheduler, SimulationBuilder};

    /// State does not grow linearly with the number of rounds: the
    /// retained ack history stays bounded by a per-round constant.
    #[test]
    fn ack_history_stays_bounded_across_many_rounds() {
        let (n, f) = (4usize, 1usize);
        let config = SystemConfig::new(n, f);
        let run = |rounds: u64| -> usize {
            let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
            for i in 0..n {
                let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                for r in 0..rounds.saturating_sub(2) {
                    schedule.insert(r, vec![(i as u64) * 1_000 + r]);
                }
                b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
            }
            let mut sim = b.build();
            sim.run(u64::MAX / 2);
            (0..n)
                .map(|i| {
                    sim.process_as::<GwtsProcess<u64>>(i)
                        .unwrap()
                        .ack_history_len()
                })
                .max()
                .unwrap()
        };
        let short = run(4);
        let long = run(12);
        // 3x the rounds must not mean 3x the retained state.
        assert!(
            long <= short * 2,
            "ack history grew with rounds: {short} -> {long}"
        );
    }

    /// Pruning must not break any property: re-run the multi-round spec
    /// battery at a longer horizon.
    #[test]
    fn long_stream_spec_holds_with_pruning() {
        let (n, f, rounds) = (4usize, 1usize, 10u64);
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(Box::new(FifoScheduler::new()));
        for i in 0..n {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for r in 0..rounds - 2 {
                schedule.insert(r, vec![(i as u64) * 1_000 + r]);
            }
            b = b.add(Box::new(GwtsProcess::new(i, config, schedule, rounds)));
        }
        let mut sim = b.build();
        let out = sim.run(u64::MAX / 2);
        assert!(out.quiescent);
        let mut seqs = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<GwtsProcess<u64>>(i).unwrap();
            assert_eq!(p.decisions.len(), rounds as usize);
            seqs.push(p.decisions.clone());
            inputs.push(p.all_inputs.clone());
        }
        crate::spec::check_local_stability(&seqs).unwrap();
        crate::spec::check_global_comparability(&seqs).unwrap();
        crate::spec::check_generalized_inclusivity(&inputs, &seqs).unwrap();
    }
}
