//! The opaque *value* type the agreement algorithms operate on.
//!
//! WLOG (paper §3.1) the lattice is a lattice of sets of values under
//! union; algorithm messages carry sets of `V` and decisions are such
//! sets — physically a [`crate::valueset::ValueSet`] (O(1)-clone shared
//! sorted vector). Applications choose `V` (commands for the RSM,
//! integers in the examples).

use bgla_codec::Wire;
use bgla_crypto::ToBytes;

/// A proposable value. `Ord` keeps all collections deterministic,
/// `wire_size` feeds the byte-complexity experiments, and the
/// [`Wire`] bound gives every value a real binary encoding — which is
/// what lets process state containing values be snapshotted durably
/// (crash recovery) and, eventually, shipped over a real transport.
pub trait Value: Clone + Ord + std::fmt::Debug + Send + Sync + 'static + Wire {
    /// Estimated serialized size in bytes.
    fn wire_size(&self) -> usize {
        8
    }
}

impl Value for u64 {}
impl Value for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}
impl Value for String {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}
impl<A: Value, B: Value> Value for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

/// Values usable with the signature-based algorithms: they additionally
/// need a canonical byte encoding to sign.
pub trait SignableValue: Value + ToBytes {}
impl<T: Value + ToBytes> SignableValue for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valueset::ValueSet;

    #[test]
    fn wire_sizes() {
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!("abc".to_string().wire_size(), 11);
        let set: ValueSet<u64> = [1, 2, 3].into_iter().collect();
        assert_eq!(set.wire_size(), 8 + 24);
    }
}
