//! Trace-level (Generalized) Lattice Agreement conformance checking.
//!
//! The checkers in [`crate::spec`] validate *final* run artifacts; this
//! module replays a recorded [`Trace`] — deliveries plus the
//! harness-emitted operation events ([`OpEvent`]) — and verifies the
//! LA/GLA safety properties **at every prefix** of the history, then
//! exhibits a *linearization witness*: a total order of propose/learn
//! operations consistent with both real time and the sequential
//! join-semilattice object (`propose(v)` adds `v` to a grow-only set;
//! `learn` returns the join of everything proposed before it). If no
//! such order exists, the checker reports the violation together with
//! the index of the first operation at which the history became
//! unlinearizable — the *minimal violating prefix* — which is what the
//! schedule shrinker in [`crate::search`] minimizes against.
//!
//! # Operation model
//!
//! * **`propose`** — one-way value injections (an initial input, or a
//!   `new_value` in the generalized algorithms). `values` lists the
//!   injected value keys. One-way operations have no completion event,
//!   so their linearization point may be arbitrarily late — but never
//!   before their invocation. A value that shows up in a learn *before*
//!   any honest propose of it is therefore attributed to an anonymous
//!   (Byzantine) injection — which may linearize at any time — and
//!   charged against the foreign-value budget
//!   ([`TraceViolation::TooManyForeign`]); the attribution is permanent
//!   even if an honest process proposes the same key later, because the
//!   early learn still needs the anonymous explanation.
//! * **`refine`** — internal proposal-set snapshots. Not linearized,
//!   but each process's snapshots must grow monotonically
//!   ([`TraceViolation::ProposalShrunk`]) — all four algorithms keep a
//!   cumulative `Proposed_set`.
//! * **`decide`** (a.k.a. learn) — `values` is the decided set. A learn
//!   op *spans* from the process's previous decide (its round start; 0
//!   for one-shot) to the step it was observed, so two learns are
//!   real-time ordered only when one completed before the other began —
//!   that is when the grow-only spec forces set inclusion
//!   ([`TraceViolation::RealtimeOrderViolated`]).
//!
//! The safety battery at every prefix: pairwise **comparability** of all
//! decided sets, **local stability** per process, real-time
//! monotonicity, propose-before-decide causality, and a configurable
//! **non-triviality** bound on decided values no honest process ever
//! proposed. **Inclusivity** (every honest input reaches a decision of
//! its proposer) is an eventual property and is checked once, at
//! [`OnlineChecker::finish`].

use crate::valueset::ValueSet;
use bgla_simnet::{OpEvent, ProcessId, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Op kind tag for value injections.
pub const OP_PROPOSE: &str = "propose";
/// Op kind tag for proposal-set refinement snapshots.
pub const OP_REFINE: &str = "refine";
/// Op kind tag for decisions/learns.
pub const OP_DECIDE: &str = "decide";
/// Op kind tag for crash/restart boundaries (emitted by the recovery
/// driver when a process reboots from a snapshot or from genesis).
pub const OP_RESTART: &str = "restart";

/// What the trace checker verifies; see the module docs.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Honest process ids — ops from other processes are ignored, and
    /// inclusivity is asserted only for these.
    pub honest: Vec<ProcessId>,
    /// Bound on *distinct* decided values that no honest process ever
    /// proposed (Non-Triviality; `f` for one-shot runs, a looser bound
    /// or `None` for generalized streams where each Byzantine round can
    /// inject more).
    pub max_foreign: Option<usize>,
    /// Whether [`OnlineChecker::finish`] asserts inclusivity (run must
    /// have reached quiescence for that to be meaningful).
    pub require_inclusivity: bool,
}

impl CheckerConfig {
    /// Config for an all-honest system of `n` processes with bound `f`.
    pub fn honest_system(n: usize, f: usize) -> Self {
        CheckerConfig {
            honest: (0..n).collect(),
            max_foreign: Some(f),
            require_inclusivity: true,
        }
    }

    /// Config with the listed Byzantine processes removed from the
    /// honest set (foreign bound stays `f`).
    pub fn with_byzantine(n: usize, f: usize, byz: &[ProcessId]) -> Self {
        CheckerConfig {
            honest: (0..n).filter(|i| !byz.contains(i)).collect(),
            max_foreign: Some(f),
            require_inclusivity: true,
        }
    }

    /// Replaces the foreign-value bound.
    pub fn max_foreign(mut self, bound: Option<usize>) -> Self {
        self.max_foreign = bound;
        self
    }

    /// Disables the end-of-trace inclusivity assertion (for truncated
    /// runs that never quiesced).
    pub fn without_inclusivity(mut self) -> Self {
        self.require_inclusivity = false;
        self
    }
}

/// A safety defect found in a history prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceViolation {
    /// Two decided sets are ⊆-incomparable (op indexes into the trace's
    /// op log).
    IncomparableDecisions {
        /// Earlier decide op index.
        a: usize,
        /// Later decide op index.
        b: usize,
    },
    /// A learn that started after another completed returned a smaller
    /// set — the grow-only sequential object cannot explain it.
    RealtimeOrderViolated {
        /// The completed learn's op index.
        earlier: usize,
        /// The later-starting learn's op index.
        later: usize,
    },
    /// A process's decision sequence decreased (Local Stability).
    DecisionShrunk {
        /// Offending process.
        process: ProcessId,
        /// Its decide op index.
        op: usize,
    },
    /// A process decided *less* after a restart than it had durably
    /// decided before the crash — the restart-spanning Local Stability
    /// defect a stale-snapshot rollback produces. Kept distinct from
    /// [`TraceViolation::DecisionShrunk`] so recovery tests can assert
    /// the regression was detected *across* the restart boundary.
    RestartRegression {
        /// Offending process.
        process: ProcessId,
        /// Its post-restart decide op index.
        op: usize,
    },
    /// A process's refinement snapshots decreased — `Proposed_set` must
    /// be cumulative.
    ProposalShrunk {
        /// Offending process.
        process: ProcessId,
        /// Its refine op index.
        op: usize,
    },
    /// More distinct never-proposed values were decided than the
    /// configured bound allows (Non-Triviality).
    TooManyForeign {
        /// The decide op index that crossed the bound.
        op: usize,
        /// The foreign value keys seen so far.
        foreign: Vec<u64>,
        /// The configured bound.
        bound: usize,
    },
    /// At end of trace: an honest process's proposed value never
    /// appeared in that process's decisions (Inclusivity), or the
    /// process never decided at all.
    MissingInclusion {
        /// The proposer.
        process: ProcessId,
        /// The missing value key.
        value: u64,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::IncomparableDecisions { a, b } => {
                write!(f, "decide ops #{a} and #{b} returned incomparable sets")
            }
            TraceViolation::RealtimeOrderViolated { earlier, later } => write!(
                f,
                "decide op #{later} started after #{earlier} completed but returned less"
            ),
            TraceViolation::DecisionShrunk { process, op } => {
                write!(f, "process {process} decision sequence shrank at op #{op}")
            }
            TraceViolation::RestartRegression { process, op } => write!(
                f,
                "process {process} decided less after a restart at op #{op} \
                 (stale-snapshot rollback)"
            ),
            TraceViolation::ProposalShrunk { process, op } => {
                write!(f, "process {process} proposal snapshot shrank at op #{op}")
            }
            TraceViolation::TooManyForeign { op, foreign, bound } => write!(
                f,
                "decide op #{op}: {} distinct never-proposed values {foreign:?} exceed bound {bound}",
                foreign.len()
            ),
            TraceViolation::MissingInclusion { process, value } => write!(
                f,
                "process {process} proposed value {value} but never decided a set containing it"
            ),
        }
    }
}

impl std::error::Error for TraceViolation {}

/// A violation plus where in the history it surfaced: the prefix of the
/// op log ending at `at_op` (inclusive) is the minimal violating prefix
/// the checker can name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixViolation {
    /// Index into [`Trace::ops`] of the op that completed the violation
    /// (`usize::MAX` for end-of-trace inclusivity failures).
    pub at_op: usize,
    /// Deliveries completed when the violation surfaced.
    pub at_step: u64,
    /// The defect.
    pub violation: TraceViolation,
}

impl fmt::Display for PrefixViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at_op == usize::MAX {
            write!(f, "at end of trace: {}", self.violation)
        } else {
            write!(
                f,
                "at op #{} (step {}): {}",
                self.at_op, self.at_step, self.violation
            )
        }
    }
}

/// One operation of a linearization witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessOp {
    /// A value entered the object. `process` is `None` for values no
    /// honest process proposed (Byzantine injections, linearized as
    /// anonymous proposes).
    Propose {
        /// Proposer, when honest.
        process: Option<ProcessId>,
        /// The value key.
        value: u64,
    },
    /// A learn returned the join of everything proposed before it.
    Learn {
        /// The learner.
        process: ProcessId,
        /// The returned set.
        set: ValueSet<u64>,
        /// Op index in the trace, for cross-referencing.
        op: usize,
    },
}

/// A linearization of the recorded history: a certificate that the run
/// is explainable by the sequential grow-only join object.
#[derive(Debug, Clone, Default)]
pub struct Witness {
    /// The operations, in linearized order.
    pub order: Vec<WitnessOp>,
    /// Ops consumed from the trace (propose/refine/decide of honest
    /// processes).
    pub ops_checked: usize,
}

impl Witness {
    /// Re-executes the witness against the sequential object and
    /// asserts every learn returns exactly the running join. A witness
    /// produced by [`OnlineChecker::finish`] always passes; exposed so
    /// tests can certify it independently.
    pub fn validate(&self) -> Result<(), String> {
        let mut joined: ValueSet<u64> = ValueSet::new();
        for (i, op) in self.order.iter().enumerate() {
            match op {
                WitnessOp::Propose { value, .. } => {
                    joined.insert(*value);
                }
                WitnessOp::Learn { set, op, .. } => {
                    if *set != joined {
                        return Err(format!(
                            "witness position {i} (trace op #{op}): learn returned {:?} \
                             but the running join is {:?}",
                            set, joined
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One recorded learn. Its real-time span is `[previous decide of the
/// same process, end]`; only the completion step needs storing (starts
/// are re-derived per process from `last_decide`).
#[derive(Debug, Clone)]
struct LearnRec {
    process: ProcessId,
    set: ValueSet<u64>,
    /// Step at which the op completed (observation step).
    end: u64,
    /// Op index in the trace.
    op: usize,
}

/// Incremental prefix checker: feed ops in observation order via
/// [`OnlineChecker::push_op`]; the first `Err` names the minimal
/// violating prefix. [`OnlineChecker::finish`] runs the end-of-trace
/// battery (inclusivity) and builds the linearization [`Witness`].
pub struct OnlineChecker {
    cfg: CheckerConfig,
    ops_seen: usize,
    /// First honest proposer and propose step per value key.
    proposed_when: BTreeMap<u64, (ProcessId, u64)>,
    /// Every value each honest process proposed (inclusivity is
    /// per-proposer: two proposers of the same key each owe it).
    proposed_by: BTreeMap<ProcessId, ValueSet<u64>>,
    /// Distinct decided-but-never-proposed value keys.
    foreign: ValueSet<u64>,
    /// All learns, in observation (end-step) order.
    learns: Vec<LearnRec>,
    /// Distinct decided sets, sorted ascending by size (a ⊆-chain when
    /// no violation has been raised), with the op that introduced each.
    chain: Vec<(ValueSet<u64>, usize)>,
    /// Running ⊆-maximum of `learns[..=i]` (prefix max in end order).
    ended_max: Vec<ValueSet<u64>>,
    /// Per-process last decide (set, op index, end step).
    last_decide: BTreeMap<ProcessId, (ValueSet<u64>, usize, u64)>,
    /// Per-process last refine snapshot.
    last_refine: BTreeMap<ProcessId, (ValueSet<u64>, usize)>,
    /// Processes that restarted since their last decide. A shrink in the
    /// next decide of such a process is a [`TraceViolation::RestartRegression`]
    /// rather than a plain [`TraceViolation::DecisionShrunk`].
    restarted: BTreeSet<ProcessId>,
}

impl OnlineChecker {
    /// A fresh checker for one run.
    pub fn new(cfg: CheckerConfig) -> Self {
        OnlineChecker {
            cfg,
            ops_seen: 0,
            proposed_when: BTreeMap::new(),
            proposed_by: BTreeMap::new(),
            foreign: ValueSet::new(),
            learns: Vec::new(),
            chain: Vec::new(),
            ended_max: Vec::new(),
            last_decide: BTreeMap::new(),
            last_refine: BTreeMap::new(),
            restarted: BTreeSet::new(),
        }
    }

    fn fail(&self, op: usize, step: u64, violation: TraceViolation) -> PrefixViolation {
        PrefixViolation {
            at_op: op,
            at_step: step,
            violation,
        }
    }

    /// Consumes the next op of the history. The op index used in
    /// violations is the number of ops previously pushed.
    pub fn push_op(&mut self, ev: &OpEvent) -> Result<(), PrefixViolation> {
        let idx = self.ops_seen;
        self.ops_seen += 1;
        if !self.cfg.honest.contains(&ev.process) {
            return Ok(());
        }
        match ev.kind {
            OP_PROPOSE => self.on_propose(ev, idx),
            OP_REFINE => self.on_refine(ev, idx),
            OP_DECIDE => self.on_decide(ev, idx),
            OP_RESTART => {
                self.on_restart(ev);
                Ok(())
            }
            _ => Ok(()), // unknown op kinds are emitter extensions
        }
    }

    /// A crash/restart boundary. Volatile refinement progress is
    /// legitimately lost when a process reboots from a snapshot — the
    /// durability contract covers decisions, not in-flight proposal
    /// sets — so the refine watermark resets. Decisions, by contrast,
    /// are exactly what snapshots make durable: `last_decide` is kept,
    /// and the process is marked so a post-restart shrink surfaces as
    /// [`TraceViolation::RestartRegression`].
    fn on_restart(&mut self, ev: &OpEvent) {
        self.last_refine.remove(&ev.process);
        self.restarted.insert(ev.process);
    }

    fn on_propose(&mut self, ev: &OpEvent, _idx: usize) -> Result<(), PrefixViolation> {
        for &v in &ev.values {
            // A value that some learn already returned stays attributed
            // to the anonymous (Byzantine) injection that explained the
            // early learn — the slot it consumed in the foreign budget
            // is not refunded. The honest propose still creates an
            // inclusivity obligation for this proposer, and is a no-op
            // in the sequential object (duplicate joins are absorbed).
            self.proposed_when.entry(v).or_insert((ev.process, ev.step));
            self.proposed_by.entry(ev.process).or_default().insert(v);
        }
        Ok(())
    }

    fn on_refine(&mut self, ev: &OpEvent, idx: usize) -> Result<(), PrefixViolation> {
        let set: ValueSet<u64> = ev.values.iter().copied().collect();
        if let Some((prev, _)) = self.last_refine.get(&ev.process) {
            if !prev.is_subset(&set) {
                return Err(self.fail(
                    idx,
                    ev.step,
                    TraceViolation::ProposalShrunk {
                        process: ev.process,
                        op: idx,
                    },
                ));
            }
        }
        self.last_refine.insert(ev.process, (set, idx));
        Ok(())
    }

    fn on_decide(&mut self, ev: &OpEvent, idx: usize) -> Result<(), PrefixViolation> {
        let set: ValueSet<u64> = ev.values.iter().copied().collect();
        let end = ev.step;
        let start = self
            .last_decide
            .get(&ev.process)
            .map(|&(_, _, prev_end)| prev_end)
            .unwrap_or(0);

        // Local Stability: this process's own sequence must grow — even
        // across a restart, since decisions are the durable part of a
        // snapshot. A shrink with an intervening restart is the
        // rollback-specific variant.
        if let Some((prev, _, _)) = self.last_decide.get(&ev.process) {
            if !prev.is_subset(&set) {
                let violation = if self.restarted.contains(&ev.process) {
                    TraceViolation::RestartRegression {
                        process: ev.process,
                        op: idx,
                    }
                } else {
                    TraceViolation::DecisionShrunk {
                        process: ev.process,
                        op: idx,
                    }
                };
                return Err(self.fail(idx, ev.step, violation));
            }
        }
        if self
            .last_decide
            .get(&ev.process)
            .is_some_and(|(prev, _, _)| *prev == set)
        {
            // Idempotent re-affirmation — typically a restart
            // re-announcing its restored decision. The logical learn
            // already happened and is on record; a fresh learn record
            // would impose real-time constraints the original operation
            // never had (its span would start at the first announcement
            // and end now, "after" learns the original overlapped).
            self.restarted.remove(&ev.process);
            return Ok(());
        }
        self.restarted.remove(&ev.process);

        // Comparability: insert into the size-sorted chain; comparing
        // against the immediate neighbors suffices (all existing
        // entries are already pairwise comparable).
        let pos = self.chain.partition_point(|(s, _)| s.len() < set.len());
        if let Some((smaller, a)) = pos.checked_sub(1).and_then(|p| self.chain.get(p)) {
            if !smaller.is_subset(&set) {
                let a = *a;
                return Err(self.fail(
                    idx,
                    ev.step,
                    TraceViolation::IncomparableDecisions { a, b: idx },
                ));
            }
        }
        if let Some((bigger, a)) = self.chain.get(pos) {
            if !set.is_subset(bigger) {
                let a = *a;
                return Err(self.fail(
                    idx,
                    ev.step,
                    TraceViolation::IncomparableDecisions { a, b: idx },
                ));
            }
        }
        let duplicate = self.chain.get(pos).is_some_and(|(s, _)| *s == set);
        if !duplicate {
            self.chain.insert(pos, (set.clone(), idx));
        }

        // Real-time monotonicity: everything that completed before this
        // op started must be contained in it. All completed learns are
        // comparable, so the ⊆-max among those with `end < start` is
        // the only one to test.
        let completed_before = self.learns.partition_point(|l| l.end < start);
        if let Some(prefix_max) = completed_before
            .checked_sub(1)
            .and_then(|p| self.ended_max.get(p))
        {
            if !prefix_max.is_subset(&set) {
                // Name the earliest completed learn this one fails to
                // contain, for a readable counterexample.
                let earlier = self.learns[..completed_before]
                    .iter()
                    .find(|l| !l.set.is_subset(&set))
                    .map(|l| l.op)
                    .unwrap_or(self.learns[completed_before - 1].op);
                return Err(self.fail(
                    idx,
                    ev.step,
                    TraceViolation::RealtimeOrderViolated {
                        earlier,
                        later: idx,
                    },
                ));
            }
        }

        // Non-Triviality: decided values nobody proposed.
        for &v in &ev.values {
            if !self.proposed_when.contains_key(&v) {
                self.foreign.insert(v);
            }
        }
        if let Some(bound) = self.cfg.max_foreign {
            if self.foreign.len() > bound {
                return Err(self.fail(
                    idx,
                    ev.step,
                    TraceViolation::TooManyForeign {
                        op: idx,
                        foreign: self.foreign.iter().copied().collect(),
                        bound,
                    },
                ));
            }
        }

        let new_max = match self.ended_max.last() {
            Some(prev_max) if set.is_subset(prev_max) => prev_max.clone(),
            _ => set.clone(),
        };
        self.ended_max.push(new_max);
        self.learns.push(LearnRec {
            process: ev.process,
            set: set.clone(),
            end,
            op: idx,
        });
        self.last_decide.insert(ev.process, (set, idx, end));
        Ok(())
    }

    /// Ends the history: asserts inclusivity (when configured) and
    /// builds the linearization witness.
    pub fn finish(self) -> Result<Witness, PrefixViolation> {
        if self.cfg.require_inclusivity {
            // Per proposer: decision sequences are non-decreasing (local
            // stability already checked), so "some decision contains v"
            // is equivalent to "the final decision contains v".
            for (&proposer, values) in &self.proposed_by {
                for &v in values.iter() {
                    let included = self
                        .last_decide
                        .get(&proposer)
                        .is_some_and(|(final_set, _, _)| final_set.contains(&v));
                    if !included {
                        return Err(PrefixViolation {
                            at_op: usize::MAX,
                            at_step: u64::MAX,
                            violation: TraceViolation::MissingInclusion {
                                process: proposer,
                                value: v,
                            },
                        });
                    }
                }
            }
        }

        // Build the witness: learns in chain (⊆) order, ties broken by
        // completion; each value's propose goes immediately before the
        // first learn containing it; values never learned go last.
        let mut learns = self.learns;
        learns.sort_by(|a, b| a.set.len().cmp(&b.set.len()).then(a.end.cmp(&b.end)));
        let mut order = Vec::new();
        let mut placed: ValueSet<u64> = ValueSet::new();
        // Values first seen inside a learn keep their anonymous
        // (Byzantine-injection) attribution even when an honest propose
        // of the same key arrived later — the anonymous injection is
        // what lets the early learn linearize.
        let foreign = &self.foreign;
        let proposer_of = |v: u64| {
            if foreign.contains(&v) {
                None
            } else {
                self.proposed_when.get(&v).map(|&(p, _)| p)
            }
        };
        for l in &learns {
            for &v in l.set.difference(&placed).iter() {
                order.push(WitnessOp::Propose {
                    process: proposer_of(v),
                    value: v,
                });
            }
            placed.join_with(&l.set);
            order.push(WitnessOp::Learn {
                process: l.process,
                set: l.set.clone(),
                op: l.op,
            });
        }
        for (&v, &(p, _)) in &self.proposed_when {
            if !placed.contains(&v) {
                order.push(WitnessOp::Propose {
                    process: Some(p),
                    value: v,
                });
            }
        }
        Ok(Witness {
            order,
            ops_checked: self.ops_seen,
        })
    }
}

/// Replays every op of `trace` through an [`OnlineChecker`]: `Ok` is the
/// linearization witness, `Err` the first (minimal) violating prefix.
pub fn check_trace(trace: &Trace, cfg: &CheckerConfig) -> Result<Witness, PrefixViolation> {
    let mut checker = OnlineChecker::new(cfg.clone());
    for op in trace.ops() {
        checker.push_op(op)?;
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(step: u64, process: usize, kind: &'static str, values: &[u64]) -> OpEvent {
        OpEvent {
            step,
            process,
            kind,
            ts: 0,
            values: values.to_vec(),
        }
    }

    fn run(ops: &[OpEvent], cfg: CheckerConfig) -> Result<Witness, PrefixViolation> {
        let mut t = Trace::default();
        for o in ops {
            t.push_op(o.clone());
        }
        check_trace(&t, &cfg)
    }

    #[test]
    fn honest_one_shot_history_linearizes() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[10]),
            op(0, 1, OP_PROPOSE, &[11]),
            op(0, 2, OP_PROPOSE, &[12]),
            op(5, 0, OP_REFINE, &[10, 11]),
            op(7, 0, OP_DECIDE, &[10, 11]),
            op(9, 1, OP_DECIDE, &[10, 11, 12]),
            op(11, 2, OP_DECIDE, &[10, 11, 12]),
        ];
        let w = run(&ops, CheckerConfig::honest_system(3, 1)).expect("linearizable");
        w.validate().expect("witness certifies");
        // Two distinct learned sets + one duplicate → 3 learns, 3 proposes.
        assert_eq!(w.order.len(), 6);
    }

    #[test]
    fn incomparable_decisions_are_caught_at_the_prefix() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(0, 2, OP_PROPOSE, &[3]),
            op(4, 0, OP_DECIDE, &[1, 2]),
            op(6, 1, OP_DECIDE, &[1, 3]), // incomparable with op 3
            op(8, 2, OP_DECIDE, &[1, 2, 3]),
        ];
        let err = run(&ops, CheckerConfig::honest_system(3, 1)).unwrap_err();
        assert_eq!(err.at_op, 4);
        assert_eq!(
            err.violation,
            TraceViolation::IncomparableDecisions { a: 3, b: 4 }
        );
    }

    #[test]
    fn shrinking_decision_sequence_is_caught() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1, 2]),
            op(3, 0, OP_DECIDE, &[1, 2]),
            op(6, 0, OP_DECIDE, &[1]),
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(1, 0).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::DecisionShrunk { process: 0, op: 2 }
        ));
    }

    #[test]
    fn restart_allows_refine_amnesia() {
        // Refinement progress lost to a crash is legitimate: the refine
        // watermark resets at the restart boundary, so the post-restart
        // snapshot may be smaller than the pre-crash one.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1, 2]),
            op(2, 0, OP_REFINE, &[1, 2]),
            op(4, 0, OP_RESTART, &[]),
            op(5, 0, OP_REFINE, &[1]),
            op(7, 0, OP_DECIDE, &[1, 2]),
        ];
        run(&ops, CheckerConfig::honest_system(1, 0))
            .expect("refine amnesia after restart is fine");
    }

    #[test]
    fn restart_does_not_excuse_decision_regression() {
        // Decisions are the durable half of the contract: deciding less
        // after a restart is the stale-snapshot rollback signature.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1, 2]),
            op(3, 0, OP_DECIDE, &[1, 2]),
            op(5, 0, OP_RESTART, &[]),
            op(7, 0, OP_DECIDE, &[1]),
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(1, 0).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::RestartRegression { process: 0, op: 3 }
        ));
    }

    #[test]
    fn restart_flag_clears_after_a_good_decide() {
        // A shrink two decides after the restart is an ordinary
        // DecisionShrunk — the restart no longer explains it.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1, 2]),
            op(2, 0, OP_RESTART, &[]),
            op(4, 0, OP_DECIDE, &[1, 2]),
            op(6, 0, OP_DECIDE, &[1]),
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(1, 0).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::DecisionShrunk { process: 0, op: 3 }
        ));
    }

    #[test]
    fn restart_reannouncement_is_not_a_fresh_learn() {
        // p1 decides {1,2} at step 2; p0 decides {1} at step 5 (spans
        // overlap — fine); p0 restarts and re-announces its unchanged
        // {1} at step 9. The re-announcement is an idempotent
        // re-affirmation: treated as a fresh learn it would "start"
        // after p1's completed learn and be required to contain {1,2}.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(2, 1, OP_DECIDE, &[1, 2]),
            op(5, 0, OP_DECIDE, &[1]),
            op(7, 0, OP_RESTART, &[]),
            op(9, 0, OP_DECIDE, &[1]),
        ];
        let w = run(&ops, CheckerConfig::honest_system(2, 0)).expect("re-affirmation is a no-op");
        w.validate().expect("witness certifies");
    }

    #[test]
    fn restart_with_faithful_reannouncement_linearizes() {
        // The recovery driver re-announces the restored decision after a
        // restart; an equal re-decide is a duplicate learn, not a shrink.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(4, 0, OP_DECIDE, &[1, 2]),
            op(6, 0, OP_RESTART, &[]),
            op(7, 0, OP_DECIDE, &[1, 2]),
            op(9, 1, OP_DECIDE, &[1, 2]),
        ];
        let w = run(&ops, CheckerConfig::honest_system(2, 0)).expect("faithful recovery");
        w.validate().expect("witness certifies");
    }

    #[test]
    fn realtime_order_is_enforced_for_non_overlapping_learns() {
        // p0 round 1 decides {1} at step 3, round 2 spans [3, 9].
        // p1's only learn spans [0, 6]: overlapping ops, no constraint.
        // But p0's round-2 learn [3, 9] must contain anything that
        // completed before step 3.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(3, 0, OP_DECIDE, &[1, 2]),
            op(9, 1, OP_DECIDE, &[2]), // p1's learn spans [0, 9]: overlaps, fine ...
        ];
        // ... except comparability: {2} ⊆ {1,2} holds, and p1's learn
        // overlaps p0's, so this history linearizes (p1 first).
        let w = run(
            &ops,
            CheckerConfig::honest_system(2, 0).without_inclusivity(),
        )
        .expect("overlapping learns may linearize in either order");
        w.validate().unwrap();

        // Now give p1 a *second* learn that starts after p0 completed:
        // it may not return less than p0's completed learn.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(3, 0, OP_DECIDE, &[1, 2, 9]),
            op(4, 1, OP_DECIDE, &[2]),
            op(8, 1, OP_DECIDE, &[1, 2]), // starts at 4 > 3, misses 9
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(2, 0)
                .without_inclusivity()
                .max_foreign(None),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::RealtimeOrderViolated {
                earlier: 2,
                later: 4
            }
        ));
    }

    #[test]
    fn early_decided_value_is_charged_to_the_foreign_budget() {
        // Value 7 appears in a learn before any honest propose of it:
        // with zero Byzantine slack that is immediately a violation…
        let ops = vec![op(0, 0, OP_PROPOSE, &[1]), op(3, 0, OP_DECIDE, &[1, 7])];
        let err = run(
            &ops,
            CheckerConfig::honest_system(2, 0).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::TooManyForeign { bound: 0, .. }
        ));

        // …while with f = 1 the anonymous injection explains it, even
        // when an honest process proposes the same key later: the
        // history linearizes and the witness keeps the early value
        // anonymous (the late honest propose cannot precede a learn
        // that completed before it was invoked).
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(3, 0, OP_DECIDE, &[1, 7]),
            op(5, 1, OP_PROPOSE, &[7]),
            op(8, 1, OP_DECIDE, &[1, 7]),
        ];
        let w = run(&ops, CheckerConfig::honest_system(2, 1)).expect("linearizable");
        w.validate().unwrap();
        assert!(
            w.order.contains(&WitnessOp::Propose {
                process: None,
                value: 7
            }),
            "the early-decided value must stay anonymously attributed"
        );
    }

    #[test]
    fn every_proposer_of_a_shared_value_owes_inclusivity() {
        // p0 and p1 both propose value 5; only p0 ever decides it. The
        // per-proposer inclusivity check must still flag p1.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[5]),
            op(0, 1, OP_PROPOSE, &[5]),
            op(0, 1, OP_PROPOSE, &[6]),
            op(4, 0, OP_DECIDE, &[5]),
            op(6, 1, OP_DECIDE, &[5, 6]),
            op(9, 0, OP_DECIDE, &[5, 6]),
        ];
        run(&ops, CheckerConfig::honest_system(2, 0)).expect("both proposers decided 5");

        let ops = vec![
            op(0, 0, OP_PROPOSE, &[5]),
            op(0, 1, OP_PROPOSE, &[5]),
            op(4, 0, OP_DECIDE, &[5]),
            op(6, 1, OP_DECIDE, &[]), // p1 never includes its own 5
        ];
        let err = run(&ops, CheckerConfig::honest_system(2, 0)).unwrap_err();
        assert_eq!(
            err.violation,
            TraceViolation::MissingInclusion {
                process: 1,
                value: 5
            }
        );
    }

    #[test]
    fn foreign_values_are_bounded() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(4, 0, OP_DECIDE, &[1, 100]), // one foreign value: allowed at f = 1
            op(6, 0, OP_DECIDE, &[1, 100, 101]), // second foreign value: over bound
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(1, 1).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::TooManyForeign { bound: 1, .. }
        ));
    }

    #[test]
    fn missing_inclusivity_surfaces_at_finish() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(0, 1, OP_PROPOSE, &[2]),
            op(4, 0, OP_DECIDE, &[1]),
            op(6, 1, OP_DECIDE, &[1]), // p1 never decides its own 2
        ];
        let err = run(&ops, CheckerConfig::honest_system(2, 0)).unwrap_err();
        assert_eq!(err.at_op, usize::MAX);
        assert_eq!(
            err.violation,
            TraceViolation::MissingInclusion {
                process: 1,
                value: 2
            }
        );
    }

    #[test]
    fn refine_snapshots_must_grow() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1, 2]),
            op(2, 0, OP_REFINE, &[1, 2]),
            op(4, 0, OP_REFINE, &[1]), // shrank
        ];
        let err = run(
            &ops,
            CheckerConfig::honest_system(1, 0).without_inclusivity(),
        )
        .unwrap_err();
        assert!(matches!(
            err.violation,
            TraceViolation::ProposalShrunk { process: 0, op: 2 }
        ));
    }

    #[test]
    fn byzantine_ops_are_ignored() {
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[1]),
            op(2, 3, OP_DECIDE, &[999]), // Byzantine process: not checked
            op(4, 0, OP_DECIDE, &[1]),
        ];
        let cfg = CheckerConfig {
            honest: vec![0],
            max_foreign: Some(0),
            require_inclusivity: true,
        };
        run(&ops, cfg).expect("byzantine ops must not trip the checker");
    }

    #[test]
    fn generalized_rounds_linearize_with_witness() {
        // Two processes, two rounds each, growing decisions.
        let ops = vec![
            op(0, 0, OP_PROPOSE, &[10]),
            op(0, 1, OP_PROPOSE, &[20]),
            op(4, 0, OP_DECIDE, &[10, 20]),
            op(5, 1, OP_DECIDE, &[10, 20]),
            op(6, 0, OP_PROPOSE, &[11]),
            op(7, 1, OP_PROPOSE, &[21]),
            op(12, 1, OP_DECIDE, &[10, 11, 20, 21]),
            op(14, 0, OP_DECIDE, &[10, 11, 20, 21]),
        ];
        let w = run(&ops, CheckerConfig::honest_system(2, 0)).expect("linearizable");
        w.validate().unwrap();
        let learns = w
            .order
            .iter()
            .filter(|o| matches!(o, WitnessOp::Learn { .. }))
            .count();
        assert_eq!(learns, 4);
    }
}
