//! `SignedSet` — the shared-ownership set representation for *signed
//! record* payloads (signed values, signed batches, proven values),
//! mirroring [`crate::valueset::ValueSet`].
//!
//! PR 1 moved plain value sets off `BTreeSet`, but the signature
//! algorithms still shipped their `safe_req` echoes and proven
//! proposal/accepted sets as `BTreeSet`s: every broadcast, ack echo and
//! redelivery paid a node-per-element deep clone, and set growth was
//! re-walked from scratch. `SignedSet` is the same Arc-backed sorted
//! `Vec` design, generic over any [`SignedItem`]:
//!
//! * **clone is `O(1)`** — echoing a `safe_req` set back inside a
//!   `safe_ack`, or broadcasting a proven proposal to `n` acceptors,
//!   costs refcounts, not tree copies;
//! * **join is `O(k + m)`** by merge-walk with fast paths for shared
//!   allocations, empty sides and already-contained peers (redelivered
//!   subsets are recognized *structurally* and join as a no-op; an
//!   empty side adopts the peer's allocation);
//! * **equality has an `Arc::ptr_eq` fast path** — the
//!   `ack.rcvd == safe_req` echo check is `O(1)` in the common case
//!   where the echo still shares the proposer's allocation;
//! * **`wire_size` is cached** at construction.
//!
//! On join, equal elements keep `self`'s representative — exactly
//! `BTreeSet`'s insert-does-not-replace semantics. For proven values
//! (whose ordering ignores the attached proof) this preserves *proof
//! identity* across joins: an element's proof handle — and therefore its
//! interned [`bgla_crypto::ProofId`] and its verification-cache hits —
//! survives any number of merges.

use bgla_codec::{CodecError, Reader, Wire, Writer};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Element of a [`SignedSet`]: any ordered, cloneable record with a
/// modeled wire size (the set caches the sum).
pub trait SignedItem: Clone + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Modeled serialized size of this element in bytes.
    fn wire_size(&self) -> usize;
}

/// An immutable-by-sharing sorted set of signed records with `O(1)`
/// clone. Mutating operations are copy-on-write.
pub struct SignedSet<T: SignedItem> {
    /// Strictly-sorted, deduplicated elements.
    items: Arc<Vec<T>>,
    /// Cached `Σ wire_size(item)` (excludes the 8-byte length prefix).
    // bgla-lint: allow(wire-coverage, "derived cache; from_sorted recomputes it when decode rebuilds the set")
    wire: usize,
}

impl<T: SignedItem> SignedSet<T> {
    /// The empty set.
    pub fn new() -> Self {
        SignedSet {
            items: Arc::new(Vec::new()),
            wire: 0,
        }
    }

    /// Builds from a vector that is already strictly sorted.
    fn from_sorted(items: Vec<T>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        let wire = items.iter().map(SignedItem::wire_size).sum();
        SignedSet {
            items: Arc::new(items),
            wire,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// The elements as a sorted slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: &T) -> bool {
        self.items.binary_search(v).is_ok()
    }

    /// Cached `Σ wire_size(item)` without a length prefix (message
    /// encodings add their own framing).
    pub fn items_wire(&self) -> usize {
        self.wire
    }

    /// Modeled serialized size: 8-byte length prefix + elements. `O(1)`.
    pub fn wire_size(&self) -> usize {
        8 + self.wire
    }

    /// Inserts `v`; returns whether the set changed. Copy-on-write: the
    /// allocation is reused when uniquely owned. An equal existing
    /// element is kept (`BTreeSet::insert` semantics).
    pub fn insert(&mut self, v: T) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.wire += v.wire_size();
                match Arc::get_mut(&mut self.items) {
                    Some(vec) => vec.insert(pos, v),
                    None => {
                        let mut vec = Vec::with_capacity(self.items.len() + 1);
                        // bgla-lint: allow(byzantine-panic, "pos <= len from binary_search Err")
                        vec.extend_from_slice(&self.items[..pos]);
                        vec.push(v);
                        // bgla-lint: allow(byzantine-panic, "pos <= len from binary_search Err")
                        vec.extend_from_slice(&self.items[pos..]);
                        self.items = Arc::new(vec);
                    }
                }
                true
            }
        }
    }

    /// `self ⊆ other`, by merge-walk (`O(k + m)`).
    pub fn is_subset(&self, other: &SignedSet<T>) -> bool {
        if Arc::ptr_eq(&self.items, &other.items) || self.is_empty() {
            return true;
        }
        if self.len() > other.len() {
            return false;
        }
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut j = 0;
        for x in a {
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by j < b.len()")
            while j < b.len() && b[j] < *x {
                j += 1;
            }
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by the j == b.len() check")
            if j == b.len() || b[j] != *x {
                return false;
            }
            j += 1;
        }
        true
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &SignedSet<T>) -> bool {
        other.is_subset(self)
    }

    /// Joins `other` into `self` (set union); returns whether `self`
    /// grew. Fast paths: adopting the peer's `Arc` when `self` is
    /// empty, no-op when a superset. Equal elements keep `self`'s
    /// representative — which is why, unlike
    /// [`crate::valueset::ValueSet`], a non-empty proper subset must
    /// merge-walk instead of adopting the peer's allocation: element
    /// equality may ignore attachments (a [`crate::sbs::ProvenValue`]'s
    /// proof), and the peer's equal element could carry a different
    /// attachment.
    pub fn join_with(&mut self, other: &SignedSet<T>) -> bool {
        if Arc::ptr_eq(&self.items, &other.items) || other.is_empty() {
            return false;
        }
        if self.is_empty() {
            self.items = Arc::clone(&other.items);
            self.wire = other.wire;
            return true;
        }
        if other.is_subset(self) {
            return false;
        }
        // True merge (equal elements keep self's representative).
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // bgla-lint: allow(byzantine-panic, "merge cursors guarded by the while i/j < len condition")
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        // bgla-lint: allow(byzantine-panic, "i and j are <= len at loop exit; suffix slicing from a cursor is in-bounds")
        out.extend_from_slice(&a[i..]);
        // bgla-lint: allow(byzantine-panic, "i and j are <= len at loop exit; suffix slicing from a cursor is in-bounds")
        out.extend_from_slice(&b[j..]);
        let grew = out.len() > self.len();
        *self = SignedSet::from_sorted(out);
        grew
    }

    /// The join `self ∪ other` as a new handle.
    pub fn join(&self, other: &SignedSet<T>) -> SignedSet<T> {
        let mut out = self.clone();
        out.join_with(other);
        out
    }

    /// `self ∖ other`, by merge-walk. Removal is by element equality
    /// (`Eq` — which `Ord` implementors keep consistent with `cmp`, and
    /// which for proven records ignores the attached proof), the same
    /// test `is_subset`/`join_with` use — so the survivors keep `self`'s
    /// representatives, exactly what the delta encoder needs ("values
    /// the peer has not acknowledged, as I hold them").
    pub fn difference(&self, other: &SignedSet<T>) -> SignedSet<T> {
        if other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.items, &other.items) {
            return SignedSet::new();
        }
        let (a, b) = (&self.items[..], &other.items[..]);
        let mut out = Vec::new();
        let mut j = 0;
        for x in a {
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by j < b.len()")
            while j < b.len() && b[j] < *x {
                j += 1;
            }
            // bgla-lint: allow(byzantine-panic, "merge-walk cursor guarded by the j == b.len() check")
            if j == b.len() || b[j] != *x {
                out.push(x.clone());
            }
        }
        SignedSet::from_sorted(out)
    }

    /// Retains only the elements `keep` accepts (rebuilds; used by the
    /// conflict-pruning paths, which are rare and small).
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        // Single pass: `keep` is `FnMut`, so a stateful predicate must
        // see each element exactly once.
        let kept: Vec<T> = self.items.iter().filter(|v| keep(v)).cloned().collect();
        if kept.len() < self.len() {
            *self = SignedSet::from_sorted(kept);
        }
    }
}

impl<T: SignedItem> Default for SignedSet<T> {
    fn default() -> Self {
        SignedSet::new()
    }
}

impl<T: SignedItem> Clone for SignedSet<T> {
    fn clone(&self) -> Self {
        SignedSet {
            items: Arc::clone(&self.items),
            wire: self.wire,
        }
    }
}

impl<T: SignedItem> PartialEq for SignedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.items, &other.items) || self.items == other.items
    }
}
impl<T: SignedItem> Eq for SignedSet<T> {}

impl<T: SignedItem> PartialOrd for SignedSet<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: SignedItem> Ord for SignedSet<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.items, &other.items) {
            return std::cmp::Ordering::Equal;
        }
        self.items.cmp(&other.items)
    }
}

impl<T: SignedItem> std::fmt::Debug for SignedSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl<T: SignedItem> FromIterator<T> for SignedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut items: Vec<T> = iter.into_iter().collect();
        items.sort();
        items.dedup();
        SignedSet::from_sorted(items)
    }
}

impl<T: SignedItem> From<BTreeSet<T>> for SignedSet<T> {
    fn from(set: BTreeSet<T>) -> Self {
        SignedSet::from_sorted(set.into_iter().collect())
    }
}

impl<'a, T: SignedItem> IntoIterator for &'a SignedSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Canonical codec form: length-prefixed elements in strictly ascending
/// order. Decoding rejects out-of-order or duplicate elements, so every
/// byte string has at most one decoding — the same injectivity contract
/// as [`crate::valueset::ValueSet`]. Lives here because
/// [`SignedSet::from_sorted`] (which trusts its input) is private.
impl<T: SignedItem + Wire> Wire for SignedSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.items.len());
        for item in self.items.iter() {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len()?;
        let mut items: Vec<T> = Vec::with_capacity(n);
        for _ in 0..n {
            let item = T::decode(r)?;
            if let Some(prev) = items.last() {
                if *prev >= item {
                    return Err(CodecError::Invalid("signed set not strictly ascending"));
                }
            }
            items.push(item);
        }
        Ok(SignedSet::from_sorted(items))
    }
}

/// Convenience element for unit and property tests.
impl SignedItem for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss(v: &[u64]) -> SignedSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = ss(&[3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert!(s.contains(&2));
        assert!(!s.contains(&4));
        assert_eq!(s.wire_size(), 8 + 24);
    }

    #[test]
    fn clone_shares_and_insert_is_cow() {
        let a = ss(&[1, 3]);
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.items, &b.items));
        assert!(b.insert(2));
        assert!(!b.insert(2));
        assert_eq!(a.as_slice(), &[1, 3], "shared peer must not see the write");
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn join_fast_paths() {
        let small = ss(&[1, 2]);
        let big = ss(&[1, 2, 3]);
        let mut x = small.clone();
        assert!(x.join_with(&big));
        assert_eq!(x, big);
        let mut y = big.clone();
        assert!(!y.join_with(&small));
        assert!(Arc::ptr_eq(&y.items, &big.items), "superset is a no-op");
        let mut z: SignedSet<u64> = SignedSet::new();
        assert!(z.join_with(&big));
        assert!(
            Arc::ptr_eq(&z.items, &big.items),
            "only the empty side adopts the peer's allocation"
        );
    }

    #[test]
    fn retain_rebuilds_only_on_change() {
        let mut a = ss(&[1, 2, 3, 4]);
        let before = Arc::as_ptr(&a.items);
        a.retain(|_| true);
        assert_eq!(Arc::as_ptr(&a.items), before);
        a.retain(|v| v % 2 == 0);
        assert_eq!(a.as_slice(), &[2, 4]);
        assert_eq!(a.wire_size(), 8 + 16);
    }

    #[test]
    fn retain_calls_predicate_once_per_element() {
        // `keep` is FnMut: a stateful predicate must see each element
        // exactly once or it could keep the wrong subset.
        let mut a = ss(&[1, 2, 3, 4]);
        let mut calls = 0;
        a.retain(|_| {
            calls += 1;
            true
        });
        assert_eq!(calls, 4);
        let mut seen = Vec::new();
        a.retain(|v| {
            seen.push(*v);
            seen.len() % 2 == 1 // keep every other visited element
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(a.as_slice(), &[1, 3]);
    }

    #[test]
    fn difference_by_merge_walk() {
        let a = ss(&[1, 2, 3, 4]);
        let b = ss(&[2, 4, 9]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 3]);
        assert_eq!(b.difference(&a).as_slice(), &[9]);
        assert!(a.difference(&a.clone()).is_empty());
        assert_eq!(a.difference(&SignedSet::new()).as_slice(), a.as_slice());
    }

    #[test]
    fn eq_and_subset() {
        let a = ss(&[1, 2, 3]);
        let b = ss(&[1, 2, 3]);
        assert_eq!(a, b);
        assert!(ss(&[2]).is_subset(&a));
        assert!(a.is_superset(&ss(&[1, 3])));
        assert!(!a.is_subset(&ss(&[1, 3])));
    }
}
