//! **Generalized Safety by Signature** (GSbS) — the Section 8.2 sketch
//! made concrete.
//!
//! GWTS achieves round discipline by *reliably broadcasting* every
//! acceptor ack (`O(n²)` messages each). Section 8.2 replaces that with
//! signatures; the two functions of the ack broadcast are recovered as:
//!
//! 1. **Publicity of acceptance** → acceptors *sign* their point-to-point
//!    acks. A proposer holding `⌊(n+f)/2⌋+1` signed acks for the same
//!    `(digest, ts, round)` possesses a transferable *decided
//!    certificate*.
//! 2. **Public round termination** → before deciding, a proposer
//!    broadcasts a `decided` message carrying that certificate. A correct
//!    acceptor trusts round `r` only after trusting `r−1` **and** seeing
//!    a well-formed `decided` certificate for `r−1`. Certificates are
//!    re-forwarded once per process (the paper piggybacks them on ack
//!    replies; a one-shot forward has the same asymptotic cost and
//!    simpler structure), so termination knowledge spreads like the
//!    paper's piggybacking does.
//!
//! Per-round value safety uses the same init/safetying machinery as
//! [`crate::sbs`], applied to *round batches*: each proposer signs its
//! `(round, batch)`; a batch is safe with a quorum of signed safe-acks
//! none of which reports a conflict (two different batches signed by the
//! same proposer for the same round).
//!
//! Message complexity: `O(f·n)` per proposer per decision (Section 8.2).
//!
//! Like [`crate::sbs`], proofs of safety are verify-once: each distinct
//! proof's quorum checks run exactly once per process and are answered
//! from a per-process [`bgla_crypto::ProofCache`] thereafter (positive
//! and negative verdicts — see [`bgla_crypto::proofstore`] for what may
//! be cached), with [`GsbsProcess::with_proof_interning`]`(false)` as
//! the re-verify-everything ablation. Batch-set payloads are
//! [`SignedSet`]s (Arc-backed, `O(1)` clone, merge-walk join).
//!
//! And like [`crate::sbs`], the proof-carrying payloads (`AckReq.proposed`
//! and `Nack.accepted`) travel as delta-encoded, proof-by-reference
//! [`ProvenUpdate`]s — the win compounds here because the proven
//! proposal is *cumulative across rounds*, so without deltas every round
//! re-ships every earlier round's batches and proofs. Gap handling,
//! the [`GsbsMsg::Resync`] fallback and the
//! [`GsbsProcess::with_proven_deltas`]`(false)` ablation follow
//! [`crate::provendelta`]; timestamps are monotone across rounds, so the
//! sender-side snapshots key deltas exactly as in SbS.

use crate::config::SystemConfig;
use crate::proof::{Proof, ProofAck};
use crate::provendelta::{
    register_proofs, ProvenDeltaReceiver, ProvenDeltaSender, ProvenRecord, ProvenUpdate,
};
use crate::signedset::{SignedItem, SignedSet};
use crate::value::SignableValue;
use crate::valueset::ValueSet;
use bgla_codec::{decode_frame, encode_frame, CodecError, Reader, Wire, Writer};
use bgla_crypto::{
    sha512, CachedVerifier, Keypair, Keyring, ProofCache, ProofId, ProofResolver, Signature,
    ToBytes, VerifierStats,
};
use bgla_simnet::{Context, Process, ProcessId, ProofSizes, WireMessage};
use std::any::Any;
// bgla-lint: allow(determinism, "HashSet used membership-only in all_safe; iteration order never observed")
use std::collections::{BTreeMap, BTreeSet, HashSet};

const BATCH_DOMAIN: &[u8] = b"bgla-gsbs-batch:";
const SAFEACK_DOMAIN: &[u8] = b"bgla-gsbs-safeack:";
const ACK_DOMAIN: &[u8] = b"bgla-gsbs-ack:";

/// Digest of a proposal's value set (binds signed acks to contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Digest(pub [u8; 64]);

/// Digest of a set of values under the canonical encoding.
pub fn digest_values<V: SignableValue>(values: &ValueSet<V>) -> Digest {
    let mut bytes = Vec::new();
    (values.len() as u64).write_bytes(&mut bytes);
    for v in values {
        v.write_bytes(&mut bytes);
    }
    Digest(sha512(&bytes))
}

/// A proposer-signed round batch.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SignedBatch<V: SignableValue> {
    /// Round the batch belongs to.
    pub round: u64,
    /// The batched input values.
    pub batch: ValueSet<V>,
    /// Signing proposer.
    pub signer: ProcessId,
    /// Signature over (round, batch).
    pub sig: Signature,
}

impl<V: SignableValue> SignedBatch<V> {
    fn signable_bytes(round: u64, batch: &ValueSet<V>, signer: ProcessId) -> Vec<u8> {
        let mut out = BATCH_DOMAIN.to_vec();
        round.write_bytes(&mut out);
        (signer as u64).write_bytes(&mut out);
        (batch.len() as u64).write_bytes(&mut out);
        for v in batch {
            v.write_bytes(&mut out);
        }
        out
    }

    /// Signs a round batch.
    pub fn sign(round: u64, batch: ValueSet<V>, signer: ProcessId, kp: &Keypair) -> Self {
        let sig = kp.sign(&Self::signable_bytes(round, &batch, signer));
        SignedBatch {
            round,
            batch,
            signer,
            sig,
        }
    }

    /// Verifies the proposer's signature.
    pub fn verify(&self, ring: &Keyring) -> bool {
        ring.verify(
            self.signer,
            &Self::signable_bytes(self.round, &self.batch, self.signer),
            &self.sig,
        )
    }

    /// Same signer + round but different batch contents.
    pub fn conflicts_with(&self, other: &Self) -> bool {
        self.signer == other.signer && self.round == other.round && self.batch != other.batch
    }
}

impl<V: SignableValue> SignedItem for SignedBatch<V> {
    fn wire_size(&self) -> usize {
        80 + self.batch.wire_size()
    }
}

/// Signed safetying reply for a round.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GSafeAck<V: SignableValue> {
    /// Round being safetied.
    pub round: u64,
    /// Echo of the request set.
    pub rcvd: SignedSet<SignedBatch<V>>,
    /// Conflicts known to the acceptor.
    pub conflicts: Vec<(SignedBatch<V>, SignedBatch<V>)>,
    /// Acceptor id.
    pub signer: ProcessId,
    /// Signature over all of the above.
    pub sig: Signature,
}

impl<V: SignableValue> GSafeAck<V> {
    /// Full canonical bytes of one echoed batch record: round, signer,
    /// batch values and signature. Both the ack signature and the
    /// [`ProofId`] digest must bind the *content* of every echoed
    /// record, not just its signature bytes — otherwise a forged record
    /// with swapped batch contents under the same sig bytes would
    /// collide with an honest proof's id and inherit its cached verdict
    /// (see the [`bgla_crypto::proofstore`] caching contract).
    fn write_batch_record(out: &mut Vec<u8>, sb: &SignedBatch<V>) {
        sb.round.write_bytes(out);
        (sb.signer as u64).write_bytes(out);
        (sb.batch.len() as u64).write_bytes(out);
        for v in &sb.batch {
            v.write_bytes(out);
        }
        out.extend_from_slice(&sb.sig.to_bytes());
    }

    fn signable_bytes(
        round: u64,
        rcvd: &SignedSet<SignedBatch<V>>,
        conflicts: &[(SignedBatch<V>, SignedBatch<V>)],
        signer: ProcessId,
    ) -> Vec<u8> {
        let mut out = SAFEACK_DOMAIN.to_vec();
        round.write_bytes(&mut out);
        (signer as u64).write_bytes(&mut out);
        (rcvd.len() as u64).write_bytes(&mut out);
        for sb in rcvd {
            Self::write_batch_record(&mut out, sb);
        }
        (conflicts.len() as u64).write_bytes(&mut out);
        for (a, b) in conflicts {
            Self::write_batch_record(&mut out, a);
            Self::write_batch_record(&mut out, b);
        }
        out
    }

    /// Builds and signs a safe-ack.
    pub fn sign(
        round: u64,
        rcvd: SignedSet<SignedBatch<V>>,
        conflicts: Vec<(SignedBatch<V>, SignedBatch<V>)>,
        signer: ProcessId,
        kp: &Keypair,
    ) -> Self {
        let sig = kp.sign(&Self::signable_bytes(round, &rcvd, &conflicts, signer));
        GSafeAck {
            round,
            rcvd,
            conflicts,
            signer,
            sig,
        }
    }

    /// Verifies the acceptor's signature.
    pub fn verify(&self, ring: &Keyring) -> bool {
        ring.verify(
            self.signer,
            &Self::signable_bytes(self.round, &self.rcvd, &self.conflicts, self.signer),
            &self.sig,
        )
    }

    /// Whether `sb` appears in a conflict pair.
    pub fn conflicted(&self, sb: &SignedBatch<V>) -> bool {
        self.conflicts.iter().any(|(a, b)| a == sb || b == sb)
    }
}

impl<V: SignableValue> ProofAck for GSafeAck<V> {
    fn digest_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&GSafeAck::signable_bytes(
            self.round,
            &self.rcvd,
            &self.conflicts,
            self.signer,
        ));
        out.extend_from_slice(&self.sig.to_bytes());
    }
    fn wire_size(&self) -> usize {
        80 + self.rcvd.items_wire()
            + self
                .conflicts
                .iter()
                .map(|(a, b)| SignedItem::wire_size(a) + SignedItem::wire_size(b))
                .sum::<usize>()
    }
}

/// A quorum of safe-acks certifying one round's safetying exchange,
/// with its [`ProofId`] interned at construction.
pub type BatchProof<V> = Proof<GSafeAck<V>>;

/// A batch with its quorum proof of safety.
#[derive(Debug, Clone)]
pub struct ProvenBatch<V: SignableValue> {
    /// The signed batch.
    pub sb: SignedBatch<V>,
    /// Quorum of safe-acks covering it.
    pub proof: BatchProof<V>,
}

impl<V: SignableValue> PartialEq for ProvenBatch<V> {
    fn eq(&self, other: &Self) -> bool {
        self.sb == other.sb
    }
}
impl<V: SignableValue> Eq for ProvenBatch<V> {}
impl<V: SignableValue> PartialOrd for ProvenBatch<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: SignableValue> Ord for ProvenBatch<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sb.cmp(&other.sb)
    }
}

impl<V: SignableValue> SignedItem for ProvenBatch<V> {
    fn wire_size(&self) -> usize {
        // The batch only; attached proofs are accounted separately
        // (shared proofs transmit once per message, or as a reference —
        // see the WireMessage byte-accounting contract).
        SignedItem::wire_size(&self.sb)
    }
}

impl<V: SignableValue> ProvenRecord for ProvenBatch<V> {
    type Ack = GSafeAck<V>;
    fn proof(&self) -> &BatchProof<V> {
        &self.proof
    }
    fn with_proof(&self, proof: BatchProof<V>) -> Self {
        ProvenBatch {
            sb: self.sb.clone(),
            proof,
        }
    }
}

/// An acceptor-signed point-to-point ack (replaces GWTS's reliably
/// broadcast ack).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SignedAck {
    /// Proposer the ack answers.
    pub destination: ProcessId,
    /// Proposer's timestamp.
    pub ts: u64,
    /// Round.
    pub round: u64,
    /// Digest of the accepted value set.
    pub digest: Digest,
    /// Acceptor id.
    pub signer: ProcessId,
    /// Signature.
    pub sig: Signature,
}

impl SignedAck {
    fn signable_bytes(
        destination: ProcessId,
        ts: u64,
        round: u64,
        digest: &Digest,
        signer: ProcessId,
    ) -> Vec<u8> {
        let mut out = ACK_DOMAIN.to_vec();
        (destination as u64).write_bytes(&mut out);
        ts.write_bytes(&mut out);
        round.write_bytes(&mut out);
        out.extend_from_slice(&digest.0);
        (signer as u64).write_bytes(&mut out);
        out
    }

    /// Builds and signs an ack.
    pub fn sign(
        destination: ProcessId,
        ts: u64,
        round: u64,
        digest: Digest,
        signer: ProcessId,
        kp: &Keypair,
    ) -> Self {
        let sig = kp.sign(&Self::signable_bytes(
            destination,
            ts,
            round,
            &digest,
            signer,
        ));
        SignedAck {
            destination,
            ts,
            round,
            digest,
            signer,
            sig,
        }
    }

    /// Verifies the acceptor's signature.
    pub fn verify(&self, ring: &Keyring) -> bool {
        ring.verify(
            self.signer,
            &Self::signable_bytes(
                self.destination,
                self.ts,
                self.round,
                &self.digest,
                self.signer,
            ),
            &self.sig,
        )
    }
}

/// A transferable proof that round `round` legitimately ended with the
/// given value set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidedCert<V: SignableValue> {
    /// The round that ended.
    pub round: u64,
    /// The committed value set.
    pub values: ValueSet<V>,
    /// Quorum of signed acks over `digest(values)`.
    pub acks: Vec<SignedAck>,
}

impl<V: SignableValue> DecidedCert<V> {
    /// Validates the certificate: quorum of valid acks from distinct
    /// acceptors over this round and the values' digest. Structural
    /// checks run first; the quorum's signatures are then verified in
    /// one batched Ed25519 check instead of one scalar-multiplication
    /// pair per ack.
    pub fn well_formed(&self, config: &SystemConfig, ring: &Keyring) -> bool {
        if self.acks.len() < config.quorum() {
            return false;
        }
        let digest = digest_values(&self.values);
        let mut signers = BTreeSet::new();
        let structural = self
            .acks
            .iter()
            .all(|a| a.round == self.round && a.digest == digest && signers.insert(a.signer));
        if !structural {
            return false;
        }
        let msgs: Vec<Vec<u8>> = self
            .acks
            .iter()
            .map(|a| SignedAck::signable_bytes(a.destination, a.ts, a.round, &a.digest, a.signer))
            .collect();
        let items: Vec<(usize, &[u8], Signature)> = self
            .acks
            .iter()
            .zip(&msgs)
            .map(|(a, m)| (a.signer, m.as_slice(), a.sig))
            .collect();
        ring.verify_batch(&items)
    }
}

/// GSbS wire messages.
#[derive(Debug, Clone)]
pub enum GsbsMsg<V: SignableValue> {
    /// Signed round batch, proposer → proposers.
    Init(SignedBatch<V>),
    /// Safetying request for one round.
    SafeReq {
        /// Round being safetied.
        round: u64,
        /// The proposer's collected signed batches for that round.
        set: SignedSet<SignedBatch<V>>,
    },
    /// Signed safetying reply.
    SafeAck(GSafeAck<V>),
    /// Proposal with proofs — delta-encoded with proof-by-reference
    /// after first contact.
    AckReq {
        /// Cumulative proven proposal (full, or delta + references).
        proposed: ProvenUpdate<ProvenBatch<V>>,
        /// Refinement timestamp.
        ts: u64,
        /// Round.
        round: u64,
    },
    /// Signed point-to-point ack.
    Ack(SignedAck),
    /// Refusal with the acceptor's proven set, delta-encoded against
    /// the refused proposal.
    Nack {
        /// Acceptor's accepted proven set (full, or delta against the
        /// proposal of `ts` + references).
        accepted: ProvenUpdate<ProvenBatch<V>>,
        /// Echoed timestamp.
        ts: u64,
        /// Echoed round.
        round: u64,
    },
    /// Acceptor → proposer: a delta payload did not resolve (unknown
    /// base or proof reference) — re-send `Full`. Never triggered by
    /// correct senders within the retention windows.
    Resync {
        /// Timestamp of the unresolvable `ack_req`.
        ts: u64,
        /// Its round.
        round: u64,
    },
    /// Round-termination certificate (broadcast before deciding,
    /// re-forwarded once by every correct process).
    Decided(DecidedCert<V>),
}

impl<V: SignableValue> WireMessage for GsbsMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            GsbsMsg::Init(_) => "init",
            GsbsMsg::SafeReq { .. } => "safe_req",
            GsbsMsg::SafeAck(_) => "safe_ack",
            GsbsMsg::AckReq { .. } => "ack_req",
            GsbsMsg::Ack(_) => "ack",
            GsbsMsg::Nack { .. } => "nack",
            GsbsMsg::Decided(_) => "decided",
            GsbsMsg::Resync { .. } => "resync",
        }
    }
    // Sizes follow the byte-accounting contract on
    // [`bgla_simnet::WireMessage`]: 8 per scalar header field (`round`
    // for `safe_req`; `ts` + `round` for the proposing-phase variants;
    // destination/ts/round/signer plus digest and signature for `ack`),
    // payload via the container's own accounting — proof-carrying
    // payloads delegate to [`ProvenUpdate::metered`], which prices
    // interned proofs and references.
    fn wire_size(&self) -> usize {
        match self {
            GsbsMsg::Init(sb) => SignedItem::wire_size(sb),
            GsbsMsg::SafeReq { set, .. } => 16 + set.items_wire(),
            GsbsMsg::SafeAck(a) => ProofAck::wire_size(a),
            GsbsMsg::AckReq { proposed, .. } => 16 + proposed.wire_size(),
            GsbsMsg::Ack(_) => 8 + 8 + 8 + 64 + 8 + 64,
            GsbsMsg::Nack { accepted, .. } => 16 + accepted.wire_size(),
            GsbsMsg::Decided(c) => 16 + c.values.wire_size() + c.acks.len() * 160,
            GsbsMsg::Resync { .. } => 16,
        }
    }
    fn proof_sizes(&self) -> ProofSizes {
        match self {
            GsbsMsg::AckReq { proposed: pl, .. } | GsbsMsg::Nack { accepted: pl, .. } => {
                pl.metered().1
            }
            _ => ProofSizes::default(),
        }
    }
    fn metered(&self) -> (usize, ProofSizes) {
        // One walk per send: the proof dedup yields both the proof
        // accounting and the interned/referenced wire size.
        match self {
            GsbsMsg::AckReq { proposed: pl, .. } | GsbsMsg::Nack { accepted: pl, .. } => {
                let (bytes, proofs) = pl.metered();
                (16 + bytes, proofs)
            }
            _ => (self.wire_size(), ProofSizes::default()),
        }
    }
}

/// Proposer phase within the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsbsState {
    /// Collecting signed round batches.
    Init,
    /// Waiting on safe-acks for this round.
    Safetying,
    /// Proposing / refining.
    Proposing,
    /// Ran all `max_rounds` rounds.
    Done,
}

/// A correct GSbS participant.
pub struct GsbsProcess<V: SignableValue> {
    /// System parameters.
    pub config: SystemConfig,
    me: ProcessId,
    /// Per-round input schedule (like GWTS).
    pub input_schedule: BTreeMap<u64, Vec<V>>,
    /// Simulation horizon.
    pub max_rounds: u64,
    // bgla-lint: allow(wire-coverage, "crypto identity is provisioning input; from_snapshot re-supplies it, keys never live in snapshots")
    keypair: Keypair,
    // bgla-lint: allow(wire-coverage, "PKI handle re-supplied at construction and recovery; not serializable state")
    verifier: CachedVerifier,

    state: GsbsState,
    /// Current round.
    pub round: u64,
    ts: u64,
    /// Pending batches.
    batches: BTreeMap<u64, Vec<V>>,
    /// Collected signed batches per round (conflict-pruned).
    safety_sets: BTreeMap<u64, SignedSet<SignedBatch<V>>>,
    /// Collected safe-acks for our current safe_req.
    safe_acks: Vec<GSafeAck<V>>,
    safe_ack_senders: BTreeSet<ProcessId>,
    /// The exact set sent in the outstanding safe_req (safe-acks must
    /// echo it verbatim; `safety_sets` keeps growing in the meantime).
    current_safe_req: SignedSet<SignedBatch<V>>,
    /// Cumulative proven proposal.
    proposed_set: SignedSet<ProvenBatch<V>>,
    /// Signed acks gathered for the current (ts, round, digest).
    ack_certs: Vec<SignedAck>,
    /// Acceptor: safety candidates per round.
    safe_candidates: BTreeMap<u64, SignedSet<SignedBatch<V>>>,
    /// Acceptor: cumulative accepted proven set.
    accepted_set: SignedSet<ProvenBatch<V>>,
    /// Memoized full-proof verdicts, keyed by [`ProofId`].
    // bgla-lint: allow(wire-coverage, "verification cache; rebuilt empty after restart, verdicts are recomputed")
    proof_cache: ProofCache,
    /// Ablation switch (see [`GsbsProcess::with_proof_interning`]).
    proof_interning: bool,
    /// Proposer-side delta bookkeeping (snapshots, reply watermarks,
    /// per-peer referenceable proof ids).
    // bgla-lint: allow(wire-coverage, "sender watermarks are peer-relative and deliberately amnesiac across crashes; only the enabled flag is carried")
    delta_tx: ProvenDeltaSender<ProvenBatch<V>>,
    /// Acceptor-side delta bookkeeping (consumed bases, per-proposer
    /// referenceable proof ids).
    // bgla-lint: allow(wire-coverage, "delta bases are peer-relative; a restarted process resumes in full-set mode by design")
    delta_rx: ProvenDeltaReceiver<ProvenBatch<V>>,
    /// Verified-and-retained proof handles, resolvable by id when a
    /// peer ships a reference instead of the proof.
    resolver: ProofResolver<BatchProof<V>>,
    /// Ablation switch (see [`GsbsProcess::with_proven_deltas`]).
    proven_deltas: bool,
    /// Acceptor: highest trusted round.
    pub safe_r: u64,
    /// Valid decided certificates seen, by round.
    decided_certs: BTreeMap<u64, DecidedCert<V>>,
    /// Rounds whose certificate we already re-forwarded.
    forwarded: BTreeSet<u64>,
    /// Buffered messages awaiting guards.
    waiting: Vec<(ProcessId, GsbsMsg<V>)>,
    /// Cumulative decision floor.
    decided_set: ValueSet<V>,
    /// Set by [`GsbsProcess::from_snapshot`]: the next `on_start` is a
    /// *recovery* boot (re-announce instead of initialize).
    // bgla-lint: allow(wire-coverage, "boot flag: decode sets it true to mark a recovered process")
    recovered: bool,

    /// Decision sequence.
    pub decisions: Vec<ValueSet<V>>,
    /// Causal depth per decision.
    pub decision_depths: Vec<u64>,
    /// All inputs this process proposed.
    pub all_inputs: Vec<V>,
}

impl<V: SignableValue> GsbsProcess<V> {
    /// Creates a participant with a per-round input schedule.
    pub fn new(
        me: ProcessId,
        config: SystemConfig,
        input_schedule: BTreeMap<u64, Vec<V>>,
        max_rounds: u64,
    ) -> Self {
        GsbsProcess {
            config,
            me,
            input_schedule,
            max_rounds,
            keypair: Keypair::for_process(me),
            verifier: CachedVerifier::new(Keyring::for_system(config.n)),
            state: GsbsState::Init,
            round: 0,
            ts: 0,
            batches: BTreeMap::new(),
            safety_sets: BTreeMap::new(),
            safe_acks: Vec::new(),
            safe_ack_senders: BTreeSet::new(),
            current_safe_req: SignedSet::new(),
            proposed_set: SignedSet::new(),
            ack_certs: Vec::new(),
            safe_candidates: BTreeMap::new(),
            accepted_set: SignedSet::new(),
            proof_cache: ProofCache::default(),
            proof_interning: true,
            delta_tx: ProvenDeltaSender::new(true),
            delta_rx: ProvenDeltaReceiver::new(),
            resolver: ProofResolver::default(),
            proven_deltas: true,
            safe_r: 0,
            decided_certs: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            waiting: Vec::new(),
            decided_set: ValueSet::new(),
            recovered: false,
            decisions: Vec::new(),
            decision_depths: Vec::new(),
            all_inputs: Vec::new(),
        }
    }

    /// Process id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Current phase.
    pub fn state(&self) -> GsbsState {
        self.state
    }

    /// The values of the cumulative proven proposal (union of proposed
    /// batches) — read by the conformance observers to emit
    /// refine-snapshot op events.
    pub fn proposed_values(&self) -> ValueSet<V> {
        let mut out = ValueSet::new();
        for pb in self.proposed_set.iter() {
            out.join_with(&pb.sb.batch);
        }
        out
    }

    /// Toggles proof-verdict interning (default on). With `false` every
    /// [`GsbsProcess::all_safe`] re-verifies every attached proof — the
    /// ablation baseline; decisions and traces are unchanged.
    pub fn with_proof_interning(mut self, on: bool) -> Self {
        self.proof_interning = on;
        self
    }

    /// Toggles delta-encoded, proof-by-reference proposal payloads
    /// (default on). With `false` every `ack_req`/`nack` ships the full
    /// cumulative set with every proof inline — the byte-count
    /// ablation; decisions, traces and non-byte metrics are unchanged.
    pub fn with_proven_deltas(mut self, on: bool) -> Self {
        self.proven_deltas = on;
        self.delta_tx = ProvenDeltaSender::new(on);
        self
    }

    /// Cryptographic-work counters of this process's verifier.
    pub fn verifier_stats(&self) -> VerifierStats {
        self.verifier.stats()
    }

    /// `(hits, misses)` of the proof-verdict cache.
    pub fn proof_cache_stats(&self) -> (u64, u64) {
        self.proof_cache.stats()
    }

    fn batch_obligation(sb: &SignedBatch<V>) -> (usize, Vec<u8>, Signature) {
        (
            sb.signer,
            SignedBatch::signable_bytes(sb.round, &sb.batch, sb.signer),
            sb.sig,
        )
    }

    fn safe_ack_obligation(a: &GSafeAck<V>) -> (usize, Vec<u8>, Signature) {
        (
            a.signer,
            GSafeAck::signable_bytes(a.round, &a.rcvd, &a.conflicts, a.signer),
            a.sig,
        )
    }

    fn verify_signed_batch(&mut self, sb: &SignedBatch<V>) -> bool {
        let (signer, msg, sig) = Self::batch_obligation(sb);
        self.verifier.verify(signer, &msg, &sig)
    }

    fn verify_signed_ack(&mut self, a: &SignedAck) -> bool {
        self.verifier.verify(
            a.signer,
            &SignedAck::signable_bytes(a.destination, a.ts, a.round, &a.digest, a.signer),
            &a.sig,
        )
    }

    /// `AllSafe` over proven batches — incremental, like
    /// [`crate::sbs::SbsProcess::all_safe`]: per `(batch, proof)` pair
    /// only the cheap round/coverage/conflict comparisons run; the
    /// value-independent part of each *distinct* proof
    /// ([`Self::proof_valid`]) is answered from the per-process
    /// [`ProofCache`] — positive and negative verdicts — when seen
    /// before. A covered batch's own signature is certified by
    /// membership: the pair check is full record equality against an
    /// `rcvd` echo whose every record `proof_valid` verified.
    ///
    /// Public for the `proofcheck` benchmark and verification-count
    /// tests; protocol handlers are the real callers.
    pub fn all_safe(&mut self, set: &SignedSet<ProvenBatch<V>>) -> bool {
        let quorum = self.config.quorum();
        // bgla-lint: allow(determinism, "membership-only dedup set (insert/contains); iteration order never observed")
        let mut checked: HashSet<ProofId> = HashSet::with_capacity(set.len());
        for pb in set.iter() {
            // Pair checks — batch ↔ proof relations are never cached
            // (see the contract in `bgla_crypto::proofstore`).
            for ack in pb.proof.iter() {
                if ack.round != pb.sb.round || !ack.rcvd.contains(&pb.sb) || ack.conflicted(&pb.sb)
                {
                    return false;
                }
            }
            let id = pb.proof.id();
            if !checked.insert(id) {
                continue; // another batch in this set shares the proof
            }
            if self.proof_interning {
                match self.proof_cache.get(id) {
                    Some(true) => continue,
                    Some(false) => return false,
                    None => {}
                }
            }
            let ok = Self::proof_valid(&mut self.verifier, quorum, &pb.proof);
            if self.proof_interning {
                self.proof_cache.put(id, ok);
            }
            if !ok {
                return false;
            }
        }
        true
    }

    /// The value-independent proof checks — exactly the verdict
    /// [`ProofCache`] may memoize: quorum size, signer distinctness,
    /// and one batched signature verification covering every ack *and*
    /// every signed batch each ack echoes in its `rcvd` set (duplicates
    /// across acks are verified once by the batch layer).
    fn proof_valid(verifier: &mut CachedVerifier, quorum: usize, proof: &BatchProof<V>) -> bool {
        if proof.len() < quorum {
            return false;
        }
        let mut signers = BTreeSet::new();
        let mut obligations: Vec<(usize, Vec<u8>, Signature)> = Vec::new();
        for ack in proof.iter() {
            if !signers.insert(ack.signer) {
                return false; // duplicate signer
            }
            obligations.push(Self::safe_ack_obligation(ack));
            for sb in ack.rcvd.iter() {
                obligations.push(Self::batch_obligation(sb));
            }
        }
        verifier.verify_all(&obligations)
    }

    fn values_of(set: &SignedSet<ProvenBatch<V>>) -> ValueSet<V> {
        set.iter()
            .flat_map(|pb| pb.sb.batch.iter().cloned())
            .collect()
    }

    fn start_round(&mut self, round: u64, ctx: &mut Context<GsbsMsg<V>>) {
        self.round = round;
        self.state = GsbsState::Init;
        self.safe_acks.clear();
        self.safe_ack_senders.clear();
        if let Some(vals) = self.input_schedule.remove(&round) {
            for v in vals {
                self.all_inputs.push(v.clone());
                self.batches.entry(round).or_default().push(v);
            }
        }
        let batch: ValueSet<V> = self
            .batches
            .remove(&round)
            .unwrap_or_default()
            .into_iter()
            .collect();
        let sb = SignedBatch::sign(round, batch, self.me, &self.keypair);
        self.safety_sets
            .entry(round)
            .or_default()
            .insert(sb.clone());
        ctx.broadcast(GsbsMsg::Init(sb));
        self.maybe_start_safetying(ctx);
    }

    fn maybe_start_safetying(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        if self.state != GsbsState::Init {
            return;
        }
        let set = self.safety_sets.entry(self.round).or_default().clone();
        if set.len() >= self.config.disclosure_threshold() {
            self.state = GsbsState::Safetying;
            self.current_safe_req = set.clone();
            ctx.broadcast(GsbsMsg::SafeReq {
                round: self.round,
                set,
            });
        }
    }

    fn maybe_start_proposing(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        if self.state != GsbsState::Safetying || self.safe_acks.len() < self.config.quorum() {
            return;
        }
        let proof: BatchProof<V> = Proof::new(self.safe_acks.clone());
        // Locally assembled and retained: referenceable from now on.
        self.resolver.register(proof.id(), proof.clone());
        let set = self.current_safe_req.clone();
        for sb in set.iter() {
            let conflicted = proof.iter().any(|a| a.conflicted(sb));
            if !conflicted {
                self.proposed_set.insert(ProvenBatch {
                    sb: sb.clone(),
                    proof: proof.clone(),
                });
            }
        }
        self.state = GsbsState::Proposing;
        self.ts += 1;
        self.ack_certs.clear();
        self.broadcast_proposal(ctx);
        self.try_adopt_certificate(ctx);
    }

    /// Broadcasts the cumulative proposal, delta-encoded per peer (full
    /// on first contact or after a resync).
    fn broadcast_proposal(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        self.delta_tx.record_broadcast(self.ts, &self.proposed_set);
        for to in 0..self.config.n {
            ctx.send(
                to,
                GsbsMsg::AckReq {
                    proposed: self.delta_tx.encode_for(to, self.ts, &self.proposed_set),
                    ts: self.ts,
                    round: self.round,
                },
            );
        }
    }

    fn decide(&mut self, values: ValueSet<V>, ctx: &mut Context<GsbsMsg<V>>) {
        self.decisions.push(values.clone());
        self.decision_depths.push(ctx.depth);
        self.decided_set = values;
        let next = self.round + 1;
        if next < self.max_rounds {
            self.start_round(next, ctx);
        } else {
            self.state = GsbsState::Done;
        }
    }

    /// Adopts a seen certificate for the current round if it preserves
    /// Local Stability.
    fn try_adopt_certificate(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        while self.state == GsbsState::Proposing {
            let Some(cert) = self.decided_certs.get(&self.round) else {
                return;
            };
            if self.decided_set.is_subset(&cert.values) {
                let values = cert.values.clone();
                self.decide(values, ctx);
            } else {
                return;
            }
        }
    }

    fn advance_safe_r(&mut self) {
        while self.decided_certs.contains_key(&self.safe_r) {
            self.safe_r += 1;
        }
    }

    /// Registers a certificate (assumed well-formed), forwards it once,
    /// and updates trust.
    fn absorb_certificate(&mut self, cert: DecidedCert<V>, ctx: &mut Context<GsbsMsg<V>>) {
        let round = cert.round;
        if let std::collections::btree_map::Entry::Vacant(e) = self.decided_certs.entry(round) {
            e.insert(cert.clone());
            if self.forwarded.insert(round) {
                ctx.broadcast(GsbsMsg::Decided(cert));
            }
            self.advance_safe_r();
        }
    }

    fn try_handle(
        &mut self,
        from: ProcessId,
        msg: &GsbsMsg<V>,
        ctx: &mut Context<GsbsMsg<V>>,
    ) -> bool {
        match msg {
            GsbsMsg::AckReq {
                proposed,
                ts,
                round,
            } => {
                if *round > self.safe_r {
                    return false;
                }
                let Some(proposed) = self.delta_rx.resolve(from, proposed, &mut self.resolver)
                else {
                    // Delta gap: unknown base or proof reference. Ask
                    // for the full payload (see crate::provendelta).
                    ctx.send(
                        from,
                        GsbsMsg::Resync {
                            ts: *ts,
                            round: *round,
                        },
                    );
                    return true;
                };
                if !self.all_safe(&proposed) {
                    return true; // forged proof: drop outright
                }
                // Consumed: the set becomes a delta base, its proofs
                // become referenceable (by us, and back at the sender).
                register_proofs(&mut self.resolver, &proposed);
                self.delta_rx.record(from, *ts, &proposed);
                let acc_vals = Self::values_of(&self.accepted_set);
                let prop_vals = Self::values_of(&proposed);
                if acc_vals.is_subset(&prop_vals) {
                    self.accepted_set = proposed;
                    let digest = digest_values(&prop_vals);
                    let ack = SignedAck::sign(from, *ts, *round, digest, self.me, &self.keypair);
                    ctx.send(from, GsbsMsg::Ack(ack));
                } else {
                    // The refusal deltas against the refused proposal —
                    // a base the proposer holds by construction.
                    let accepted = self.delta_rx.encode_reply(
                        from,
                        *ts,
                        &proposed,
                        &self.accepted_set,
                        self.proven_deltas,
                    );
                    ctx.send(
                        from,
                        GsbsMsg::Nack {
                            accepted,
                            ts: *ts,
                            round: *round,
                        },
                    );
                    self.accepted_set.join_with(&proposed);
                }
                true
            }
            GsbsMsg::Nack {
                accepted,
                ts,
                round,
            } => {
                self.delta_tx.record_reply(from, *ts);
                if *round < self.round
                    || (*round == self.round && *ts < self.ts)
                    || self.state == GsbsState::Done
                {
                    return true; // stale
                }
                if self.state != GsbsState::Proposing || *round != self.round || *ts != self.ts {
                    return false;
                }
                let Some(accepted) = self.delta_tx.resolve_reply(accepted, &mut self.resolver)
                else {
                    // A reply gap deltas against our own snapshot and
                    // references only proofs we shipped — Byzantine.
                    // GSbS keeps no exclusion set (unlike SbS's `byz`),
                    // so the nack is dropped like any other invalid
                    // refusal; the cost is bounded by the adversary's
                    // own message budget.
                    return true;
                };
                let acc_vals = Self::values_of(&accepted);
                let prop_vals = Self::values_of(&self.proposed_set);
                if !acc_vals.is_subset(&prop_vals) && self.all_safe(&accepted) {
                    register_proofs(&mut self.resolver, &accepted);
                    self.delta_tx.note_peer_holds(from, &accepted);
                    self.proposed_set.join_with(&accepted);
                    self.ts += 1;
                    self.ack_certs.clear();
                    self.broadcast_proposal(ctx);
                }
                true
            }
            // bgla-lint: allow(byzantine-panic, "local invariant: the buffering site only ever stores ack_req / nack")
            _ => unreachable!("only ack_req / nack are buffered"),
        }
    }

    fn drain_waiting(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.waiting.len() {
                // bgla-lint: allow(byzantine-panic, "i < waiting.len() loop guard")
                let (from, msg) = self.waiting[i].clone();
                if self.try_handle(from, &msg, ctx) {
                    self.waiting.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Durable state (crash snapshots)
// ---------------------------------------------------------------------------

/// Frame kind tag for GSbS process snapshots.
pub const GSBS_SNAPSHOT_KIND: u16 = 0x0104;

impl Wire for Digest {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Digest(Wire::decode(r)?))
    }
}

/// Codec forms carry signatures verbatim without verifying them —
/// snapshots are checksummed local state, and every network consumption
/// site re-verifies through the [`CachedVerifier`] anyway.
impl<V: SignableValue> Wire for SignedBatch<V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.round);
        self.batch.encode(w);
        w.usize(self.signer);
        self.sig.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SignedBatch {
            round: r.u64()?,
            batch: Wire::decode(r)?,
            signer: r.usize()?,
            sig: Signature::decode(r)?,
        })
    }
}

impl<V: SignableValue> Wire for GSafeAck<V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.round);
        self.rcvd.encode(w);
        self.conflicts.encode(w);
        w.usize(self.signer);
        self.sig.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GSafeAck {
            round: r.u64()?,
            rcvd: Wire::decode(r)?,
            conflicts: Wire::decode(r)?,
            signer: r.usize()?,
            sig: Signature::decode(r)?,
        })
    }
}

impl<V: SignableValue> Wire for ProvenBatch<V> {
    fn encode(&self, w: &mut Writer) {
        self.sb.encode(w);
        self.proof.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProvenBatch {
            sb: Wire::decode(r)?,
            proof: Wire::decode(r)?,
        })
    }
}

impl Wire for SignedAck {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.destination);
        w.u64(self.ts);
        w.u64(self.round);
        self.digest.encode(w);
        w.usize(self.signer);
        self.sig.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SignedAck {
            destination: r.usize()?,
            ts: r.u64()?,
            round: r.u64()?,
            digest: Wire::decode(r)?,
            signer: r.usize()?,
            sig: Signature::decode(r)?,
        })
    }
}

impl<V: SignableValue> Wire for DecidedCert<V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.round);
        self.values.encode(w);
        self.acks.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DecidedCert {
            round: r.u64()?,
            values: Wire::decode(r)?,
            acks: Wire::decode(r)?,
        })
    }
}

impl<V: SignableValue> Wire for GsbsMsg<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            GsbsMsg::Init(sb) => {
                w.u8(0);
                sb.encode(w);
            }
            GsbsMsg::SafeReq { round, set } => {
                w.u8(1);
                w.u64(*round);
                set.encode(w);
            }
            GsbsMsg::SafeAck(ack) => {
                w.u8(2);
                ack.encode(w);
            }
            GsbsMsg::AckReq {
                proposed,
                ts,
                round,
            } => {
                w.u8(3);
                proposed.encode(w);
                w.u64(*ts);
                w.u64(*round);
            }
            GsbsMsg::Ack(ack) => {
                w.u8(4);
                ack.encode(w);
            }
            GsbsMsg::Nack {
                accepted,
                ts,
                round,
            } => {
                w.u8(5);
                accepted.encode(w);
                w.u64(*ts);
                w.u64(*round);
            }
            GsbsMsg::Resync { ts, round } => {
                w.u8(6);
                w.u64(*ts);
                w.u64(*round);
            }
            GsbsMsg::Decided(cert) => {
                w.u8(7);
                cert.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(GsbsMsg::Init(Wire::decode(r)?)),
            1 => Ok(GsbsMsg::SafeReq {
                round: r.u64()?,
                set: Wire::decode(r)?,
            }),
            2 => Ok(GsbsMsg::SafeAck(Wire::decode(r)?)),
            3 => Ok(GsbsMsg::AckReq {
                proposed: Wire::decode(r)?,
                ts: r.u64()?,
                round: r.u64()?,
            }),
            4 => Ok(GsbsMsg::Ack(Wire::decode(r)?)),
            5 => Ok(GsbsMsg::Nack {
                accepted: Wire::decode(r)?,
                ts: r.u64()?,
                round: r.u64()?,
            }),
            6 => Ok(GsbsMsg::Resync {
                ts: r.u64()?,
                round: r.u64()?,
            }),
            7 => Ok(GsbsMsg::Decided(Wire::decode(r)?)),
            _ => Err(CodecError::Invalid("gsbs msg tag")),
        }
    }
}

impl Wire for GsbsState {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            GsbsState::Init => 0,
            GsbsState::Safetying => 1,
            GsbsState::Proposing => 2,
            GsbsState::Done => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => GsbsState::Init,
            1 => GsbsState::Safetying,
            2 => GsbsState::Proposing,
            3 => GsbsState::Done,
            _ => return Err(CodecError::Invalid("gsbs state tag")),
        })
    }
}

/// Durable/volatile split for crash snapshots — the [`crate::sbs`]
/// split extended with the round machinery: schedules, per-round
/// safetying artifacts, the certificate store (`decided_certs`,
/// `forwarded`, `safe_r`), the waiting buffer and the whole decision
/// history. Reconstructed as in SbS: key material, verifier,
/// [`ProofCache`] and the delta bookkeeping (fresh bookkeeping degrades
/// to `Full` payloads until peers reply again; the `Resync` fallback
/// covers peers' stale claims about *us*).
impl<V: SignableValue> Wire for GsbsProcess<V> {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        w.usize(self.me);
        self.input_schedule.encode(w);
        w.u64(self.max_rounds);
        self.state.encode(w);
        w.u64(self.round);
        w.u64(self.ts);
        self.batches.encode(w);
        self.safety_sets.encode(w);
        self.safe_acks.encode(w);
        self.safe_ack_senders.encode(w);
        self.current_safe_req.encode(w);
        self.proposed_set.encode(w);
        self.ack_certs.encode(w);
        self.safe_candidates.encode(w);
        self.accepted_set.encode(w);
        // Resolver contents, most-recently-used first; ids are
        // recomputed on re-registration (see the SbS snapshot notes).
        let retained: Vec<BatchProof<V>> = self
            .resolver
            .entries()
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        retained.encode(w);
        self.proof_interning.encode(w);
        self.proven_deltas.encode(w);
        w.u64(self.safe_r);
        self.decided_certs.encode(w);
        self.forwarded.encode(w);
        self.waiting.encode(w);
        self.decided_set.encode(w);
        self.decisions.encode(w);
        self.decision_depths.encode(w);
        self.all_inputs.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let config = SystemConfig::decode(r)?;
        let me = r.usize()?;
        let input_schedule = Wire::decode(r)?;
        let max_rounds = r.u64()?;
        let state = GsbsState::decode(r)?;
        let round = r.u64()?;
        let ts = r.u64()?;
        let batches = Wire::decode(r)?;
        let safety_sets = Wire::decode(r)?;
        let safe_acks = Wire::decode(r)?;
        let safe_ack_senders = Wire::decode(r)?;
        let current_safe_req = Wire::decode(r)?;
        let proposed_set = Wire::decode(r)?;
        let ack_certs = Wire::decode(r)?;
        let safe_candidates = Wire::decode(r)?;
        let accepted_set = Wire::decode(r)?;
        let retained: Vec<BatchProof<V>> = Wire::decode(r)?;
        let proof_interning = bool::decode(r)?;
        let proven_deltas = bool::decode(r)?;
        let safe_r = r.u64()?;
        let decided_certs = Wire::decode(r)?;
        let forwarded = Wire::decode(r)?;
        let waiting = Wire::decode(r)?;
        let decided_set = Wire::decode(r)?;
        let decisions = Wire::decode(r)?;
        let decision_depths = Wire::decode(r)?;
        let all_inputs = Wire::decode(r)?;
        let mut resolver = ProofResolver::default();
        for proof in retained {
            resolver.register(proof.id(), proof);
        }
        Ok(GsbsProcess {
            config,
            me,
            input_schedule,
            max_rounds,
            keypair: Keypair::for_process(me),
            verifier: CachedVerifier::new(Keyring::for_system(config.n)),
            state,
            round,
            ts,
            batches,
            safety_sets,
            safe_acks,
            safe_ack_senders,
            current_safe_req,
            proposed_set,
            ack_certs,
            safe_candidates,
            accepted_set,
            proof_cache: ProofCache::default(),
            proof_interning,
            delta_tx: ProvenDeltaSender::new(proven_deltas),
            delta_rx: ProvenDeltaReceiver::new(),
            resolver,
            proven_deltas,
            safe_r,
            decided_certs,
            forwarded,
            waiting,
            decided_set,
            recovered: true,
            decisions,
            decision_depths,
            all_inputs,
        })
    }
}

impl<V: SignableValue> GsbsProcess<V> {
    /// Serializes the durable state as a checksummed
    /// [`GSBS_SNAPSHOT_KIND`] frame.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_frame(GSBS_SNAPSHOT_KIND, self)
    }

    /// Rebuilds a process from [`GsbsProcess::snapshot_bytes`] output.
    /// The next `on_start` performs a recovery boot.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, CodecError> {
        decode_frame(GSBS_SNAPSHOT_KIND, bytes)
    }
}

impl<V: SignableValue> Process<GsbsMsg<V>> for GsbsProcess<V> {
    fn on_start(&mut self, ctx: &mut Context<GsbsMsg<V>>) {
        if self.recovered {
            // Recovery boot: re-solicit the replies the crash swept
            // from our inbox. Unlike SbS, collected safe-acks and ack
            // certificates are *kept*: GSbS has no `byz` exclusion set,
            // so duplicate replies from already-counted senders are
            // simply ignored (structural dedup by signer), and Ed25519
            // determinism makes re-signed replies byte-identical.
            //
            // * `Init` — re-broadcast our own signed batch for the
            //   current round (idempotent set insert at peers). Peer
            //   inits lost to the crash cannot be re-requested; the
            //   recovered process may stall here — absorbed within the
            //   ≤ f crash budget (see `crate::recovery`).
            // * `Safetying` — re-broadcast the outstanding `safe_req`
            //   verbatim (`current_safe_req` is durable precisely so
            //   the echo check still matches).
            // * `Proposing` — re-broadcast the proposal at the current
            //   ts; acceptors re-ack idempotently, and a durable
            //   certificate for this round (ours or a peer's) can be
            //   adopted immediately.
            // * `Done` — nothing to re-solicit.
            self.recovered = false;
            match self.state {
                GsbsState::Init => {
                    let mine = self
                        .safety_sets
                        .get(&self.round)
                        .and_then(|set| set.iter().find(|sb| sb.signer == self.me).cloned());
                    if let Some(sb) = mine {
                        ctx.broadcast(GsbsMsg::Init(sb));
                    }
                    self.maybe_start_safetying(ctx);
                }
                GsbsState::Safetying => {
                    ctx.broadcast(GsbsMsg::SafeReq {
                        round: self.round,
                        set: self.current_safe_req.clone(),
                    });
                }
                GsbsState::Proposing => {
                    self.broadcast_proposal(ctx);
                    self.try_adopt_certificate(ctx);
                    self.drain_waiting(ctx);
                }
                GsbsState::Done => {}
            }
            return;
        }
        self.start_round(0, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: GsbsMsg<V>, ctx: &mut Context<GsbsMsg<V>>) {
        match msg {
            GsbsMsg::Init(sb) => {
                if self.verify_signed_batch(&sb) {
                    let round = sb.round;
                    let entry = self.safety_sets.entry(round).or_default();
                    entry.insert(sb);
                    remove_batch_conflicts(entry);
                    self.maybe_start_safetying(ctx);
                }
            }
            GsbsMsg::SafeReq { round, set } => {
                // Cheap structural check first, then one batched
                // verification for the whole echoed batch set — no
                // serialization work for structurally-invalid junk.
                let all_ok = set.iter().all(|sb| sb.round == round) && {
                    let obligations: Vec<(usize, Vec<u8>, Signature)> =
                        set.iter().map(Self::batch_obligation).collect();
                    self.verifier.verify_all(&obligations)
                };
                if all_ok {
                    let cands = self.safe_candidates.entry(round).or_default();
                    // O(1) when the candidates already contain the
                    // request (redelivered subsets), merge-walk else.
                    let union = cands.join(&set);
                    let conflicts = return_batch_conflicts(&union);
                    *cands = {
                        let mut pruned = union;
                        remove_batch_conflicts(&mut pruned);
                        pruned
                    };
                    let ack = GSafeAck::sign(round, set, conflicts, self.me, &self.keypair);
                    ctx.send(from, GsbsMsg::SafeAck(ack));
                }
            }
            GsbsMsg::SafeAck(ack) => {
                if self.state != GsbsState::Safetying || ack.round != self.round {
                    return;
                }
                let structural = ack.signer == from
                    && ack.rcvd == self.current_safe_req
                    && !self.safe_ack_senders.contains(&from)
                    && ack.conflicts.iter().all(|(a, b)| a.conflicts_with(b));
                if structural && {
                    // Structural checks passed: batch-verify the ack and
                    // every conflict-pair member in one go.
                    let mut obligations: Vec<(usize, Vec<u8>, Signature)> = ack
                        .conflicts
                        .iter()
                        .flat_map(|(a, b)| [a, b])
                        .map(Self::batch_obligation)
                        .collect();
                    obligations.push(Self::safe_ack_obligation(&ack));
                    self.verifier.verify_all(&obligations)
                } {
                    self.safe_ack_senders.insert(from);
                    self.safe_acks.push(ack);
                    self.maybe_start_proposing(ctx);
                }
            }
            GsbsMsg::Ack(ack) => {
                self.delta_tx.record_reply(from, ack.ts);
                if self.state != GsbsState::Proposing
                    || ack.destination != self.me
                    || ack.ts != self.ts
                    || ack.round != self.round
                {
                    return;
                }
                let digest = digest_values(&Self::values_of(&self.proposed_set));
                if ack.digest != digest || !self.verify_signed_ack(&ack) {
                    return;
                }
                if ack.signer == from && !self.ack_certs.iter().any(|a| a.signer == from) {
                    self.ack_certs.push(ack);
                    if self.ack_certs.len() >= self.config.quorum() {
                        let values = Self::values_of(&self.proposed_set);
                        let cert = DecidedCert {
                            round: self.round,
                            values: values.clone(),
                            acks: self.ack_certs.clone(),
                        };
                        self.absorb_certificate(cert, ctx);
                        self.decide(values, ctx);
                        self.drain_waiting(ctx);
                    }
                }
            }
            GsbsMsg::Decided(cert) => {
                if self.decided_certs.contains_key(&cert.round) {
                    return;
                }
                if cert.well_formed(&self.config, self.verifier.ring()) {
                    self.absorb_certificate(cert, ctx);
                    self.try_adopt_certificate(ctx);
                    self.drain_waiting(ctx);
                }
            }
            GsbsMsg::Resync { ts, round } => {
                // The peer could not resolve a delta: forget every
                // assumption about it and re-send the current proposal
                // in full. Correct peers never send this.
                self.delta_tx.reset_peer(from);
                if self.state == GsbsState::Proposing && ts == self.ts && round == self.round {
                    ctx.send(
                        from,
                        GsbsMsg::AckReq {
                            proposed: ProvenUpdate::Full(self.proposed_set.clone()),
                            ts: self.ts,
                            round: self.round,
                        },
                    );
                }
            }
            other @ (GsbsMsg::AckReq { .. } | GsbsMsg::Nack { .. }) => {
                if self.try_handle(from, &other, ctx) {
                    self.drain_waiting(ctx);
                } else {
                    self.waiting.push((from, other));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.snapshot_bytes())
    }
}

/// Removes conflicting batch pairs in place (no-op allocation-wise when
/// nothing conflicts — the common case).
fn remove_batch_conflicts<V: SignableValue>(set: &mut SignedSet<SignedBatch<V>>) {
    let conflicts = return_batch_conflicts(set);
    if conflicts.is_empty() {
        return;
    }
    set.retain(|sb| !conflicts.iter().any(|(a, b)| a == sb || b == sb));
}

/// Lists conflicting batch pairs.
fn return_batch_conflicts<V: SignableValue>(
    set: &SignedSet<SignedBatch<V>>,
) -> Vec<(SignedBatch<V>, SignedBatch<V>)> {
    let items = set.as_slice();
    let mut out = Vec::new();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            // bgla-lint: allow(byzantine-panic, "i and j bounded by items.len() loop ranges")
            if items[i].conflicts_with(&items[j]) {
                // bgla-lint: allow(byzantine-panic, "i and j bounded by items.len() loop ranges")
                out.push((items[i].clone(), items[j].clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use bgla_simnet::{FifoScheduler, RandomScheduler, Scheduler, Simulation, SimulationBuilder};

    fn gsbs_system(
        n: usize,
        f: usize,
        rounds: u64,
        scheduler: Box<dyn Scheduler>,
    ) -> Simulation<GsbsMsg<u64>> {
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(scheduler);
        for i in 0..n {
            let mut schedule: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for r in 0..rounds.saturating_sub(2) {
                schedule.insert(r, vec![(i as u64) * 1_000 + r]);
            }
            b = b.add(Box::new(GsbsProcess::new(i, config, schedule, rounds)));
        }
        b.build()
    }

    #[test]
    fn honest_rounds_decide_in_order() {
        let (n, rounds) = (4, 3u64);
        let mut sim = gsbs_system(n, 1, rounds, Box::new(FifoScheduler::new()));
        let out = sim.run(10_000_000);
        assert!(out.quiescent);
        let mut seqs = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
            assert_eq!(p.decisions.len(), rounds as usize, "p{i}");
            seqs.push(p.decisions.clone());
            inputs.push(p.all_inputs.clone());
        }
        spec::check_local_stability(&seqs).unwrap();
        spec::check_global_comparability(&seqs).unwrap();
        spec::check_generalized_inclusivity(&inputs, &seqs).unwrap();
    }

    #[test]
    fn random_schedules_preserve_spec() {
        for seed in 0..5 {
            let (n, rounds) = (4, 3u64);
            let mut sim = gsbs_system(n, 1, rounds, Box::new(RandomScheduler::new(seed)));
            let out = sim.run(10_000_000);
            assert!(out.quiescent, "seed {seed}");
            let mut seqs = Vec::new();
            for i in 0..n {
                let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
                assert_eq!(p.decisions.len(), rounds as usize, "seed {seed} p{i}");
                seqs.push(p.decisions.clone());
            }
            spec::check_local_stability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            spec::check_global_comparability(&seqs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn snapshot_roundtrip_is_byte_stable() {
        let (n, rounds) = (4, 3u64);
        let mut sim = gsbs_system(n, 1, rounds, Box::new(FifoScheduler::new()));
        let out = sim.run(10_000_000);
        assert!(out.quiescent);
        for i in 0..n {
            let p = sim.process_as::<GsbsProcess<u64>>(i).unwrap();
            let bytes = p.snapshot_bytes();
            let q = GsbsProcess::<u64>::from_snapshot(&bytes).unwrap();
            assert_eq!(q.decisions, p.decisions, "p{i}");
            assert_eq!(q.state(), p.state(), "p{i}");
            assert_eq!(q.safe_r, p.safe_r, "p{i}");
            assert_eq!(q.snapshot_bytes(), bytes, "p{i}: roundtrip not stable");
        }
    }

    #[test]
    fn certificates_validate_and_reject() {
        let config = SystemConfig::new(4, 1);
        let ring = Keyring::for_system(4);
        let values: ValueSet<u64> = [1, 2].into_iter().collect();
        let digest = digest_values(&values);
        let acks: Vec<SignedAck> = (0..3)
            .map(|i| SignedAck::sign(0, 1, 0, digest, i, &Keypair::for_process(i)))
            .collect();
        let cert = DecidedCert {
            round: 0,
            values: values.clone(),
            acks,
        };
        assert!(cert.well_formed(&config, &ring));
        // Wrong round in acks.
        let bad = DecidedCert {
            round: 1,
            values,
            acks: cert.acks.clone(),
        };
        assert!(!bad.well_formed(&config, &ring));
        // Too few acks.
        let small = DecidedCert {
            round: 0,
            values: cert.values.clone(),
            acks: cert.acks[..2].to_vec(),
        };
        assert!(!small.well_formed(&config, &ring));
        // Tampered values (digest mismatch).
        let mut tampered_values = cert.values.clone();
        tampered_values.insert(99);
        let tampered = DecidedCert {
            round: 0,
            values: tampered_values,
            acks: cert.acks.clone(),
        };
        assert!(!tampered.well_formed(&config, &ring));
    }

    #[test]
    fn per_proposer_messages_linear_in_n() {
        let mut counts = Vec::new();
        for n in [4usize, 7] {
            let mut sim = gsbs_system(n, 1, 3, Box::new(FifoScheduler::new()));
            sim.run(50_000_000);
            counts.push(sim.metrics().max_sent_per_process() as f64);
        }
        let growth = counts[1] / counts[0];
        // n grew 1.75x; quadratic would be ~3x.
        assert!(growth < 2.6, "growth {growth:.2}: {counts:?}");
    }
}
