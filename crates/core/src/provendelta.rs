//! Delta-encoded, **proof-by-reference** payloads for proof-carrying
//! messages — [`crate::valueset::SetUpdate`] lifted to proven-record
//! sets.
//!
//! # Why
//!
//! Proofs of safety dominate SbS/GSbS wire cost: `O(n²)` signature bytes
//! per proof, re-shipped in full on every refinement round, every nack
//! and every re-broadcast, even though the receiver usually verified the
//! very same proof moments earlier. Two observations make almost all of
//! that traffic redundant:
//!
//! * proven sets grow monotonically, so consecutive proposals to the
//!   same peer differ by a few records ([`SetUpdate`]'s insight), and
//! * proofs are content-addressed ([`bgla_crypto::ProofId`]), so a proof
//!   the peer *demonstrably holds* can be named by a
//!   [`bgla_simnet::PROOF_REF_BYTES`]-sized reference instead of
//!   re-shipped.
//!
//! [`ProvenUpdate`] combines both: `Full` ships everything inline;
//! `Delta` ships only the records added since a base the receiver
//! replied to, with proofs the receiver already holds referenced by id.
//!
//! # Who holds what — the reference discipline
//!
//! A sender may reference a proof to a peer only when that peer
//! *demonstrably* delivered it:
//!
//! * **ack/nack replies** — a peer that replied to the proposal of
//!   timestamp `t` consumed it, verified its proofs and registered them
//!   in its [`ProofResolver`]; every proof in the `t` snapshot becomes
//!   referenceable ([`ProvenDeltaSender::record_reply`]);
//! * **received proven sets** — a peer that shipped (or itself
//!   referenced) a proof inside a nack evidently holds it
//!   ([`ProvenDeltaSender::note_peer_holds`]), so the very proofs a
//!   refinement just absorbed from a nacker can travel back to that
//!   nacker as references on the re-broadcast — the dominant saving on
//!   refinement-heavy runs.
//!
//! Note what is *not* enough: an acceptor whose safe-ack ended up inside
//! a proof has never seen the other quorum members' acks, so signing a
//! safe-ack does **not** imply holding the assembled proof — references
//! are seeded from replies and received sets only.
//!
//! Receivers mirror the discipline: [`ProvenDeltaReceiver::record`]
//! notes, per proposer, the consumed base sets (delta bases) and the
//! proof ids that proposer evidently holds (so *reply* traffic — the
//! delta-encoded `Nack.accepted` — can reference the proposer's own
//! proofs back at it via [`ProvenDeltaReceiver::encode_reply`]). A nack
//! deltas against the proposal it refuses, which the proposer holds by
//! construction ([`ProvenDeltaSender::resolve_reply`] resolves it from
//! the sender-side snapshots).
//!
//! # Gaps and resync
//!
//! Reconstruction fails — a **delta gap** — when the named base or a
//! referenced [`ProofId`] is unknown. Unlike WTS value deltas (where a
//! gap proves the sender Byzantine and the message is simply dropped), a
//! proof reference can also outlive the receiver's bounded
//! [`ProofResolver`] window, so the receiver answers an unresolvable
//! *proposal* with a resync request and the proposer falls back to
//! `Full` (`SbsMsg::Resync` / `GsbsMsg::Resync`). Correct senders never
//! cause gaps within the retention windows, so honest-to-honest traffic
//! never resyncs; Byzantine senders can trigger the fallback at will but
//! only waste their own messages. A gap in a *reply* (nack) still is a
//! reliable Byzantine signal: the nack deltas against the receiving
//! proposer's own snapshot and references only proofs that proposer
//! itself shipped, both of which the proposer retains.
//!
//! # Wire format (modeled)
//!
//! Per the byte-accounting contract on [`bgla_simnet::WireMessage`]:
//!
//! ```text
//! Full(set)                     : 1 (tag) + set bytes + Σ distinct-proof bytes
//! Delta { base_ts, new, refs }  : 1 (tag) + 8 (base_ts) + new bytes
//!                                 + Σ inline-distinct-proof bytes
//!                                 + |refs| × PROOF_REF_BYTES
//! ```
//!
//! The ablation switch (`with_proven_deltas(false)` on
//! [`crate::sbs::SbsProcess`] / [`crate::gsbs::GsbsProcess`]) makes
//! every encode yield `Full`; decisions, traces and non-byte metrics are
//! unchanged either way.

use crate::proof::{Proof, ProofAck};
use crate::signedset::{SignedItem, SignedSet};
#[cfg(doc)]
use crate::valueset::SetUpdate;
use bgla_codec::{CodecError, Reader, Wire, Writer};
use bgla_crypto::{ProofId, ProofResolver};
use bgla_simnet::{ProcessId, ProofSizes, PROOF_REF_BYTES};
use std::collections::{BTreeMap, BTreeSet};

/// A signed record carrying an attached proof of safety — the element
/// type [`ProvenUpdate`] deltas over (SbS `ProvenValue`, GSbS
/// `ProvenBatch`).
///
/// `Ord`/`Eq` (via [`SignedItem`]) must ignore the attached proof — the
/// record is the same lattice element regardless of which quorum
/// certified it — which is what lets the decoder swap a referenced proof
/// handle in without disturbing set order.
pub trait ProvenRecord: SignedItem {
    /// The ack type of the attached proof.
    type Ack: ProofAck;

    /// The attached proof of safety.
    fn proof(&self) -> &Proof<Self::Ack>;

    /// The same record with `proof` attached instead (used by the
    /// decoder to attach the locally resolved handle).
    fn with_proof(&self, proof: Proof<Self::Ack>) -> Self;
}

/// A proven-set payload: the full set, or only the records added since a
/// base the receiver holds, with already-held proofs by reference. See
/// the module docs for semantics and the modeled wire format.
#[derive(Debug, Clone)]
pub enum ProvenUpdate<T: ProvenRecord> {
    /// The whole set, every distinct proof inline (first contact or
    /// resync fallback).
    Full(SignedSet<T>),
    /// The additions relative to the set this receiver consumed at
    /// `base_ts`, with proofs the receiver holds referenced by id.
    Delta {
        /// Timestamp of the base set the receiver already holds.
        base_ts: u64,
        /// `current ∖ base` — records inline; a record's proof ships
        /// inline too unless its id appears in `refs`.
        new: SignedSet<T>,
        /// Ids (among `new`'s proofs) the receiver is assumed to hold —
        /// shipped as [`PROOF_REF_BYTES`]-sized references.
        refs: Vec<ProofId>,
    },
}

/// Codec form mirrors [`SetUpdate`]'s: a tag byte, then the variant
/// fields. Referenced proof ids travel verbatim — a reference is an
/// opaque handle, resolved (and thereby validated) by the receiver's
/// [`ProofResolver`], never trusted structurally.
impl<T: ProvenRecord + Wire> Wire for ProvenUpdate<T>
where
    T::Ack: Wire,
{
    fn encode(&self, w: &mut Writer) {
        match self {
            ProvenUpdate::Full(set) => {
                w.u8(0);
                set.encode(w);
            }
            ProvenUpdate::Delta { base_ts, new, refs } => {
                w.u8(1);
                w.u64(*base_ts);
                new.encode(w);
                refs.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(ProvenUpdate::Full(SignedSet::decode(r)?)),
            1 => Ok(ProvenUpdate::Delta {
                base_ts: r.u64()?,
                new: SignedSet::decode(r)?,
                refs: Vec::decode(r)?,
            }),
            _ => Err(CodecError::Invalid("proven update tag")),
        }
    }
}

impl<T: ProvenRecord> ProvenUpdate<T> {
    /// Number of records carried (diagnostics).
    pub fn carried(&self) -> usize {
        match self {
            ProvenUpdate::Full(set) => set.len(),
            ProvenUpdate::Delta { new, .. } => new.len(),
        }
    }

    /// Modeled payload size and proof accounting in one walk (see the
    /// wire format in the module docs). Message-level framing (`ts`,
    /// `round`) is the embedding message's to add.
    pub fn metered(&self) -> (usize, ProofSizes) {
        match self {
            ProvenUpdate::Full(set) => {
                let proofs = crate::proof::account_proofs(set.iter().map(ProvenRecord::proof));
                (1 + set.wire_size() + proofs.interned_bytes as usize, proofs)
            }
            ProvenUpdate::Delta { new, refs, .. } => {
                let ref_set: BTreeSet<ProofId> = refs.iter().copied().collect();
                let mut proofs = ProofSizes::default();
                let mut seen: BTreeSet<ProofId> = BTreeSet::new();
                for record in new.iter() {
                    let proof = record.proof();
                    proofs.refs += 1;
                    proofs.flat_bytes += proof.wire_size() as u64;
                    if !ref_set.contains(&proof.id()) && seen.insert(proof.id()) {
                        proofs.distinct += 1;
                        proofs.interned_bytes += proof.wire_size() as u64;
                    }
                }
                // Every ref entry costs wire bytes, matched or not —
                // Byzantine junk refs are paid for by their sender.
                proofs.by_ref = refs.len() as u64;
                proofs.ref_bytes = (refs.len() * PROOF_REF_BYTES) as u64;
                (
                    1 + 8
                        + new.wire_size()
                        + proofs.interned_bytes as usize
                        + proofs.ref_bytes as usize,
                    proofs,
                )
            }
        }
    }

    /// Modeled payload size in bytes.
    pub fn wire_size(&self) -> usize {
        self.metered().0
    }
}

/// Snapshots retained by a [`ProvenDeltaSender`] — same bound as the
/// value-delta machinery: refinements are bounded per instance/round,
/// but GSbS timestamps grow with the stream, so old snapshots must not
/// accumulate. Must be ≥ [`BASE_WINDOW`] so every base a correct sender
/// may delta against still has its snapshot.
const SENDER_SNAPSHOT_CAP: usize = 32;

/// Per-proposer consumed bases retained by a [`ProvenDeltaReceiver`],
/// and — via the freshness bound in [`ProvenDeltaSender::encode_for`] —
/// the window within which a correct sender may delta: a base at
/// `base_ts` is guaranteed resolvable while `current_ts − base_ts <
/// BASE_WINDOW`, because the receiver prunes to the newest `BASE_WINDOW`
/// bases per proposer and records at most one per distinct timestamp.
const BASE_WINDOW: usize = 8;

/// Per-peer referenceable-proof-id sets are pruned to this many newest
/// entries — comfortably under the receiver-side [`ProofResolver`]
/// default capacity, so an id a sender still assumes held has not
/// plausibly been evicted at the receiver. (If it has — pathological
/// churn — the resync fallback restores sync at the cost of one full
/// payload.)
const KNOWN_HELD_CAP: usize = 1024;

fn note_held(
    held: &mut BTreeMap<ProcessId, BTreeSet<ProofId>>,
    peer: ProcessId,
    ids: impl Iterator<Item = ProofId>,
) {
    let entry = held.entry(peer).or_default();
    entry.extend(ids);
    while entry.len() > KNOWN_HELD_CAP {
        entry.pop_first();
    }
}

/// Decodes `new`, attaching locally resolved handles for referenced
/// proofs. `None` is a gap: a referenced id the resolver does not hold.
fn resolve_new<T: ProvenRecord>(
    new: &SignedSet<T>,
    refs: &[ProofId],
    resolver: &mut ProofResolver<Proof<T::Ack>>,
) -> Option<SignedSet<T>> {
    let ref_set: BTreeSet<ProofId> = refs.iter().copied().collect();
    if ref_set.is_empty() {
        return Some(new.clone());
    }
    let mut out = Vec::with_capacity(new.len());
    for record in new.iter() {
        let id = record.proof().id();
        if ref_set.contains(&id) {
            // Referenced: the proof did not travel — reattach our own
            // handle or report the gap.
            out.push(record.with_proof(resolver.resolve(id)?));
        } else {
            out.push(record.clone());
        }
    }
    Some(out.into_iter().collect())
}

/// Registers every distinct proof of `set` in `resolver`, making it
/// referenceable by peers. Call when a set is *consumed* (verified and
/// acted on) or locally assembled — never for payloads that failed
/// `AllSafe`.
pub fn register_proofs<T: ProvenRecord>(
    resolver: &mut ProofResolver<Proof<T::Ack>>,
    set: &SignedSet<T>,
) {
    let mut seen: BTreeSet<ProofId> = BTreeSet::new();
    for record in set.iter() {
        let proof = record.proof();
        if seen.insert(proof.id()) {
            resolver.register(proof.id(), proof.clone());
        }
    }
}

/// Proposer-side bookkeeping for delta-encoded proposal broadcasts:
/// snapshots of the proven set by timestamp, each peer's newest
/// replied-to timestamp, and the proof ids each peer demonstrably holds.
#[derive(Debug)]
pub struct ProvenDeltaSender<T: ProvenRecord> {
    /// ts → proven set at that ts (`O(1)` clones make this cheap).
    snapshots: BTreeMap<u64, SignedSet<T>>,
    /// Peer → newest ts it acked/nacked (proof it holds snapshot(ts)).
    last_replied: BTreeMap<ProcessId, u64>,
    /// Peer → proof ids it demonstrably delivered (see module docs).
    known_held: BTreeMap<ProcessId, BTreeSet<ProofId>>,
    enabled: bool,
}

impl<T: ProvenRecord> ProvenDeltaSender<T> {
    /// Creates the bookkeeping; when `enabled` is false every encode
    /// yields `Full` (the ablation baseline). State is tracked either
    /// way, so toggling is purely a wire-encoding change.
    pub fn new(enabled: bool) -> Self {
        ProvenDeltaSender {
            snapshots: BTreeMap::new(),
            last_replied: BTreeMap::new(),
            known_held: BTreeMap::new(),
            enabled,
        }
    }

    /// Records the proven set broadcast at `ts` (call once per
    /// broadcast, before encoding per-peer updates).
    pub fn record_broadcast(&mut self, ts: u64, set: &SignedSet<T>) {
        self.snapshots.insert(ts, set.clone());
        while self.snapshots.len() > SENDER_SNAPSHOT_CAP {
            self.snapshots.pop_first();
        }
    }

    /// The set broadcast at `ts`, if still retained — also the base pool
    /// for resolving delta-encoded *replies* (nacks delta against the
    /// proposal they refuse).
    pub fn snapshot(&self, ts: u64) -> Option<&SignedSet<T>> {
        self.snapshots.get(&ts)
    }

    /// Records that `from` replied (ack or nack) to the proposal of
    /// `ts`: it consumed that set, so its values need not be re-shipped
    /// and its proofs become referenceable. Ignores timestamps we never
    /// broadcast (Byzantine claims) or no longer retain.
    pub fn record_reply(&mut self, from: ProcessId, ts: u64) {
        let Some(snapshot) = self.snapshots.get(&ts) else {
            return;
        };
        note_held(
            &mut self.known_held,
            from,
            snapshot.iter().map(|r| r.proof().id()),
        );
        let e = self.last_replied.entry(from).or_insert(ts);
        *e = (*e).max(ts);
    }

    /// Records that `from` evidently holds every proof of `set` (it
    /// shipped or referenced them itself — e.g. inside a nack), without
    /// implying it holds any particular proposal snapshot.
    pub fn note_peer_holds(&mut self, from: ProcessId, set: &SignedSet<T>) {
        note_held(
            &mut self.known_held,
            from,
            set.iter().map(|r| r.proof().id()),
        );
    }

    /// Forgets everything assumed about `to` — the resync fallback:
    /// the peer reported a gap, so until it replies again it gets `Full`
    /// payloads with every proof inline.
    pub fn reset_peer(&mut self, to: ProcessId) {
        self.last_replied.remove(&to);
        self.known_held.remove(&to);
    }

    /// Encodes the proven set `current` (broadcast at `ts`) for peer
    /// `to`: a delta against the newest set `to` replied to when
    /// possible — with proofs `to` demonstrably holds by reference —
    /// and the full set on first contact, on a pruned or stale base
    /// (see [`BASE_WINDOW`]), or when deltas are disabled.
    pub fn encode_for(&self, to: ProcessId, ts: u64, current: &SignedSet<T>) -> ProvenUpdate<T> {
        if !self.enabled {
            return ProvenUpdate::Full(current.clone());
        }
        let base = self
            .last_replied
            .get(&to)
            .and_then(|base_ts| self.snapshots.get(base_ts).map(|s| (*base_ts, s)));
        match base {
            Some((base_ts, base)) if ts.saturating_sub(base_ts) < BASE_WINDOW as u64 => {
                let new = current.difference(base);
                let refs = self.refs_for(to, &new);
                ProvenUpdate::Delta { base_ts, new, refs }
            }
            _ => ProvenUpdate::Full(current.clone()),
        }
    }

    /// The distinct proof ids of `new` that `to` demonstrably holds,
    /// sorted (deterministic wire order).
    fn refs_for(&self, to: ProcessId, new: &SignedSet<T>) -> Vec<ProofId> {
        let Some(held) = self.known_held.get(&to) else {
            return Vec::new();
        };
        let ids: BTreeSet<ProofId> = new
            .iter()
            .map(|r| r.proof().id())
            .filter(|id| held.contains(id))
            .collect();
        ids.into_iter().collect()
    }

    /// Decodes a delta-encoded *reply* (a nack's accepted set): the base
    /// is our own snapshot of the proposal the peer is answering, and
    /// references resolve through our resolver. `None` is a gap — for
    /// replies, a reliable Byzantine signal (see module docs).
    pub fn resolve_reply(
        &self,
        update: &ProvenUpdate<T>,
        resolver: &mut ProofResolver<Proof<T::Ack>>,
    ) -> Option<SignedSet<T>> {
        match update {
            ProvenUpdate::Full(set) => Some(set.clone()),
            ProvenUpdate::Delta { base_ts, new, refs } => {
                let base = self.snapshots.get(base_ts)?;
                Some(base.join(&resolve_new(new, refs, resolver)?))
            }
        }
    }
}

/// Acceptor-side bookkeeping for delta-encoded proposals: the consumed
/// sets per `(proposer, ts)` (delta bases) and the proof ids each
/// proposer demonstrably holds (reference targets for delta-encoded
/// nacks back to it).
#[derive(Debug, Default)]
pub struct ProvenDeltaReceiver<T: ProvenRecord> {
    bases: BTreeMap<(ProcessId, u64), SignedSet<T>>,
    peer_proofs: BTreeMap<ProcessId, BTreeSet<ProofId>>,
}

impl<T: ProvenRecord> ProvenDeltaReceiver<T> {
    /// Fresh receiver state.
    pub fn new() -> Self {
        ProvenDeltaReceiver {
            bases: BTreeMap::new(),
            peer_proofs: BTreeMap::new(),
        }
    }

    /// Resolves a proposal update from `from` into the full proven set.
    /// `None` means a detected gap — unknown base or unresolvable
    /// reference — to be answered with a resync request.
    pub fn resolve(
        &self,
        from: ProcessId,
        update: &ProvenUpdate<T>,
        resolver: &mut ProofResolver<Proof<T::Ack>>,
    ) -> Option<SignedSet<T>> {
        match update {
            ProvenUpdate::Full(set) => Some(set.clone()),
            ProvenUpdate::Delta { base_ts, new, refs } => {
                let base = self.bases.get(&(from, *base_ts))?;
                Some(base.join(&resolve_new(new, refs, resolver)?))
            }
        }
    }

    /// Records that the proposal `set` from `from` at `ts` was consumed
    /// (we are about to reply to it): it becomes a delta base, and its
    /// proofs become referenceable back to `from` — the sender shipped
    /// or referenced every one of them, so it holds them.
    pub fn record(&mut self, from: ProcessId, ts: u64, set: &SignedSet<T>) {
        note_held(
            &mut self.peer_proofs,
            from,
            set.iter().map(|r| r.proof().id()),
        );
        self.bases.insert((from, ts), set.clone());
        // Retain only the newest few bases per proposer.
        let held: Vec<u64> = self
            .bases
            .range((from, 0)..=(from, u64::MAX))
            .map(|((_, t), _)| *t)
            .collect();
        if held.len() > BASE_WINDOW {
            // bgla-lint: allow(byzantine-panic, "slice start bounded: guarded by held.len() > BASE_WINDOW")
            for t in &held[..held.len() - BASE_WINDOW] {
                self.bases.remove(&(from, *t));
            }
        }
    }

    /// Encodes a *reply* set (a nack's accepted set) for proposer `to`:
    /// a delta against `base` — the proposal of `base_ts` being refused,
    /// which `to` holds by construction — with proofs `to` demonstrably
    /// holds by reference. `Full` when deltas are disabled.
    pub fn encode_reply(
        &self,
        to: ProcessId,
        base_ts: u64,
        base: &SignedSet<T>,
        current: &SignedSet<T>,
        enabled: bool,
    ) -> ProvenUpdate<T> {
        if !enabled {
            return ProvenUpdate::Full(current.clone());
        }
        let new = current.difference(base);
        let refs = match self.peer_proofs.get(&to) {
            Some(held) => {
                let ids: BTreeSet<ProofId> = new
                    .iter()
                    .map(|r| r.proof().id())
                    .filter(|id| held.contains(id))
                    .collect();
                ids.into_iter().collect()
            }
            None => Vec::new(),
        };
        ProvenUpdate::Delta { base_ts, new, refs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_crypto::ProofIdBuilder;

    /// Minimal proven record for unit tests: a value plus a proof of
    /// `u64` "acks" (the `ProofAck for u64` test impl in
    /// [`crate::proof`]).
    #[derive(Debug, Clone)]
    struct Rec {
        v: u64,
        proof: Proof<u64>,
    }

    impl PartialEq for Rec {
        fn eq(&self, other: &Self) -> bool {
            self.v == other.v
        }
    }
    impl Eq for Rec {}
    impl PartialOrd for Rec {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Rec {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.v.cmp(&other.v)
        }
    }
    impl SignedItem for Rec {
        fn wire_size(&self) -> usize {
            8
        }
    }
    impl ProvenRecord for Rec {
        type Ack = u64;
        fn proof(&self) -> &Proof<u64> {
            &self.proof
        }
        fn with_proof(&self, proof: Proof<u64>) -> Self {
            Rec { v: self.v, proof }
        }
    }

    fn rec(v: u64, acks: &[u64]) -> Rec {
        Rec {
            v,
            proof: Proof::new(acks.to_vec()),
        }
    }

    fn set(recs: &[Rec]) -> SignedSet<Rec> {
        recs.iter().cloned().collect()
    }

    fn bogus_id(seed: u8) -> ProofId {
        let mut b = ProofIdBuilder::new();
        b.add_ack(&[seed]);
        b.finish()
    }

    #[test]
    fn first_contact_is_full_and_replies_enable_deltas() {
        let mut tx: ProvenDeltaSender<Rec> = ProvenDeltaSender::new(true);
        let mut resolver: ProofResolver<Proof<u64>> = ProofResolver::default();
        let s0 = set(&[rec(1, &[10]), rec(2, &[10])]);
        tx.record_broadcast(1, &s0);
        assert!(matches!(tx.encode_for(9, 1, &s0), ProvenUpdate::Full(_)));

        // Peer 9 consumes and replies: the shared proof becomes
        // referenceable and values stop traveling.
        tx.record_reply(9, 1);
        let s1 = s0.join(&set(&[rec(3, &[10])]));
        tx.record_broadcast(2, &s1);
        let u = tx.encode_for(9, 2, &s1);
        match &u {
            ProvenUpdate::Delta { base_ts, new, refs } => {
                assert_eq!(*base_ts, 1);
                assert_eq!(new.len(), 1);
                assert_eq!(refs.len(), 1, "shared proof travels as a reference");
            }
            other => panic!("expected delta, got {other:?}"),
        }
        // Receiver side: reconstruct through base + resolver.
        let mut rx: ProvenDeltaReceiver<Rec> = ProvenDeltaReceiver::new();
        register_proofs(&mut resolver, &s0);
        rx.record(0, 1, &s0);
        let full = rx.resolve(0, &u, &mut resolver).expect("no gap");
        assert_eq!(full, s1);
    }

    #[test]
    fn unknown_base_and_unknown_ref_are_gaps() {
        let rx: ProvenDeltaReceiver<Rec> = ProvenDeltaReceiver::new();
        let mut resolver: ProofResolver<Proof<u64>> = ProofResolver::default();
        let bogus_base = ProvenUpdate::Delta {
            base_ts: 77,
            new: set(&[rec(1, &[1])]),
            refs: vec![],
        };
        assert!(rx.resolve(3, &bogus_base, &mut resolver).is_none());

        let mut rx: ProvenDeltaReceiver<Rec> = ProvenDeltaReceiver::new();
        rx.record(3, 0, &SignedSet::new());
        let r = rec(1, &[1]);
        let unknown_ref = ProvenUpdate::Delta {
            base_ts: 0,
            refs: vec![r.proof.id()],
            new: set(&[r]),
        };
        assert!(
            rx.resolve(3, &unknown_ref, &mut resolver).is_none(),
            "a referenced proof the resolver does not hold is a gap"
        );
    }

    #[test]
    fn junk_refs_matching_no_record_are_ignored() {
        let mut rx: ProvenDeltaReceiver<Rec> = ProvenDeltaReceiver::new();
        let mut resolver: ProofResolver<Proof<u64>> = ProofResolver::default();
        rx.record(3, 0, &SignedSet::new());
        let u = ProvenUpdate::Delta {
            base_ts: 0,
            new: set(&[rec(1, &[1])]),
            refs: vec![bogus_id(0xAB)],
        };
        let full = rx.resolve(3, &u, &mut resolver).expect("inline proof");
        assert_eq!(full.len(), 1);
        // ...but they still cost the sender wire bytes.
        let (_, proofs) = u.metered();
        assert_eq!(proofs.ref_bytes, PROOF_REF_BYTES as u64);
        assert_eq!(proofs.distinct, 1, "inline proof still shipped");
    }

    #[test]
    fn stale_base_falls_back_to_full() {
        let mut tx: ProvenDeltaSender<Rec> = ProvenDeltaSender::new(true);
        let s = set(&[rec(1, &[1])]);
        tx.record_broadcast(0, &s);
        tx.record_reply(5, 0);
        let near = BASE_WINDOW as u64 - 1;
        tx.record_broadcast(near, &s);
        assert!(matches!(
            tx.encode_for(5, near, &s),
            ProvenUpdate::Delta { base_ts: 0, .. }
        ));
        let far = BASE_WINDOW as u64;
        tx.record_broadcast(far, &s);
        assert!(matches!(tx.encode_for(5, far, &s), ProvenUpdate::Full(_)));
    }

    #[test]
    fn reset_peer_restores_full_payloads() {
        let mut tx: ProvenDeltaSender<Rec> = ProvenDeltaSender::new(true);
        let s = set(&[rec(1, &[1])]);
        tx.record_broadcast(1, &s);
        tx.record_reply(4, 1);
        assert!(matches!(
            tx.encode_for(4, 2, &s),
            ProvenUpdate::Delta { .. }
        ));
        tx.reset_peer(4);
        assert!(matches!(tx.encode_for(4, 2, &s), ProvenUpdate::Full(_)));
    }

    #[test]
    fn disabled_sender_always_encodes_full() {
        let mut tx: ProvenDeltaSender<Rec> = ProvenDeltaSender::new(false);
        let s = set(&[rec(1, &[1])]);
        tx.record_broadcast(1, &s);
        tx.record_reply(4, 1);
        assert!(matches!(tx.encode_for(4, 2, &s), ProvenUpdate::Full(_)));
    }

    #[test]
    fn reply_deltas_reference_the_proposers_own_proofs() {
        // Proposer P (id 0) sent us set s_p; we hold accepted = s_p ∪ ours.
        // The nack back to P references P's proof and ships ours inline.
        let mut rx: ProvenDeltaReceiver<Rec> = ProvenDeltaReceiver::new();
        let p_rec = rec(1, &[10]);
        let our_rec = rec(2, &[20]);
        let s_p = set(std::slice::from_ref(&p_rec));
        rx.record(0, 3, &s_p);
        let accepted = s_p.join(&set(std::slice::from_ref(&our_rec)));
        let u = rx.encode_reply(0, 3, &s_p, &accepted, true);
        match &u {
            ProvenUpdate::Delta { base_ts, new, refs } => {
                assert_eq!(*base_ts, 3);
                assert_eq!(new.as_slice(), std::slice::from_ref(&our_rec));
                assert!(refs.is_empty(), "our proof is new to P: inline");
            }
            other => panic!("expected delta, got {other:?}"),
        }
        // P resolves against its own snapshot.
        let mut tx: ProvenDeltaSender<Rec> = ProvenDeltaSender::new(true);
        let mut resolver: ProofResolver<Proof<u64>> = ProofResolver::default();
        tx.record_broadcast(3, &s_p);
        let full = tx.resolve_reply(&u, &mut resolver).expect("no gap");
        assert_eq!(full, accepted);

        // A second nack after P re-proposed the union references our
        // proof back (P shipped it, so it holds it).
        rx.record(0, 4, &accepted);
        let u2 = rx.encode_reply(0, 4, &accepted, &accepted, true);
        match &u2 {
            ProvenUpdate::Delta { new, refs, .. } => {
                assert!(new.is_empty());
                assert!(refs.is_empty());
            }
            other => panic!("expected delta, got {other:?}"),
        }
        let grown = accepted.join(&set(&[rec(9, &[20])]));
        let u3 = rx.encode_reply(0, 4, &accepted, &grown, true);
        match &u3 {
            ProvenUpdate::Delta { new, refs, .. } => {
                assert_eq!(new.len(), 1);
                assert_eq!(
                    refs,
                    &[our_rec.proof.id()],
                    "a proof P consumed travels back by reference"
                );
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn metered_counts_refs_not_proofs() {
        // 6 acks × 8 bytes: a proof bigger than PROOF_REF_BYTES, so the
        // delta arm is genuinely cheaper.
        let shared = Proof::new(vec![1u64, 2, 3, 4, 5, 6]);
        let a = Rec {
            v: 1,
            proof: shared.clone(),
        };
        let b = Rec {
            v: 2,
            proof: shared.clone(),
        };
        let full = ProvenUpdate::Full(set(&[a.clone(), b.clone()]));
        let (full_bytes, fp) = full.metered();
        assert_eq!(fp.distinct, 1);
        assert_eq!(fp.refs, 2);
        assert_eq!(fp.by_ref, 0);
        assert_eq!(full_bytes, 1 + (8 + 16) + shared.wire_size());

        let delta = ProvenUpdate::Delta {
            base_ts: 7,
            new: set(&[a, b]),
            refs: vec![shared.id()],
        };
        let (delta_bytes, dp) = delta.metered();
        assert_eq!(dp.distinct, 0, "referenced proof not shipped inline");
        assert_eq!(dp.by_ref, 1);
        assert_eq!(dp.ref_bytes, PROOF_REF_BYTES as u64);
        assert_eq!(dp.flat_bytes, 2 * shared.wire_size() as u64);
        assert_eq!(delta_bytes, 1 + 8 + (8 + 16) + PROOF_REF_BYTES);
        assert!(delta_bytes < full_bytes);
    }
}
