//! Executable specification checkers.
//!
//! Each property from Sections 3.1 (LA) and 6.1 (Generalized LA) of the
//! paper becomes a function over recorded run artifacts. Tests, examples
//! and benches call these instead of re-implementing ad-hoc assertions.
//!
//! # Final-artifact vs trace-level checking
//!
//! The functions here validate the *final* artifacts of a finished run
//! (decision sets, decision sequences): an execution that is
//! momentarily unsafe but converges would pass them. The companion
//! module [`crate::linearize`] lifts the same battery to recorded
//! traces, re-checking comparability, stability, causality and
//! non-triviality at **every prefix** of the history and additionally
//! searching for a linearization: a total order of propose/learn ops —
//! consistent with real time — under which every learn returns exactly
//! the join of the proposals ordered before it (the sequential
//! join-semilattice object). `linearize` reports either that witness
//! order or the minimal violating prefix; [`crate::search`] hunts for
//! such prefixes under hostile schedules and shrinks what it finds.
//! Use this module for end-state assertions, `linearize` when the
//! *path* matters.

use crate::value::Value;
use crate::valueset::ValueSet;
use std::collections::BTreeSet;
use std::fmt;

/// A specification violation, with enough context to debug the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecViolation {
    /// Two decisions are incomparable (indices into the supplied slice).
    Incomparable(usize, usize),
    /// A process's own input is missing from its decision.
    NotInclusive(usize),
    /// A decision contains more than `f` values from outside the correct
    /// processes' inputs.
    NonTrivial {
        /// Offending decision index.
        decision: usize,
        /// Number of foreign values found.
        foreign: usize,
        /// The bound that was exceeded (`f`).
        bound: usize,
    },
    /// A correct process failed to decide (liveness).
    NoDecision(usize),
    /// A generalized-LA decision sequence decreased.
    NotMonotone {
        /// Process index.
        process: usize,
        /// Index within its decision sequence.
        step: usize,
    },
    /// An input value never appeared in any later decision of its
    /// proposer (generalized Inclusivity).
    NeverIncluded {
        /// Process index.
        process: usize,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::Incomparable(i, j) => {
                write!(f, "decisions {i} and {j} are incomparable")
            }
            SpecViolation::NotInclusive(i) => {
                write!(f, "decision {i} does not include the process's own input")
            }
            SpecViolation::NonTrivial {
                decision,
                foreign,
                bound,
            } => write!(
                f,
                "decision {decision} contains {foreign} foreign values (> f = {bound})"
            ),
            SpecViolation::NoDecision(i) => write!(f, "correct process {i} never decided"),
            SpecViolation::NotMonotone { process, step } => {
                write!(
                    f,
                    "process {process} decision sequence decreased at step {step}"
                )
            }
            SpecViolation::NeverIncluded { process } => {
                write!(f, "an input of process {process} was never decided")
            }
        }
    }
}

impl std::error::Error for SpecViolation {}

/// **Comparability**: every pair of decisions is `⊆`-comparable
/// (set inclusion is the lattice order for set lattices).
pub fn check_comparability<V: Value>(decisions: &[ValueSet<V>]) -> Result<(), SpecViolation> {
    for i in 0..decisions.len() {
        for j in (i + 1)..decisions.len() {
            let (a, b) = (&decisions[i], &decisions[j]);
            if !a.is_subset(b) && !b.is_subset(a) {
                return Err(SpecViolation::Incomparable(i, j));
            }
        }
    }
    Ok(())
}

/// **Inclusivity**: each correct process's input appears in its decision
/// (`pro_i ≤ dec_i`). `pairs` holds `(input, decision)` per correct
/// process.
pub fn check_inclusivity<V: Value>(pairs: &[(V, ValueSet<V>)]) -> Result<(), SpecViolation> {
    for (i, (input, decision)) in pairs.iter().enumerate() {
        if !decision.contains(input) {
            return Err(SpecViolation::NotInclusive(i));
        }
    }
    Ok(())
}

/// **Non-Triviality**: every decision is below `⊕(X ∪ B)` with
/// `|B| ≤ f`, where `X` is the set of correct inputs. For set lattices
/// this means: at most `f` *distinct* decided values fall outside `X`.
///
/// This checker enforces the (stronger) global form: across **all**
/// supplied decisions, the union of foreign values has size ≤ `f` —
/// which WTS guarantees because each Byzantine process can disclose at
/// most one value past the reliable broadcast (Observation 1).
pub fn check_nontriviality<V: Value>(
    correct_inputs: &BTreeSet<V>,
    decisions: &[ValueSet<V>],
    f: usize,
) -> Result<(), SpecViolation> {
    let mut foreign: BTreeSet<&V> = BTreeSet::new();
    for (i, d) in decisions.iter().enumerate() {
        for v in d {
            if !correct_inputs.contains(v) {
                foreign.insert(v);
            }
        }
        if foreign.len() > f {
            return Err(SpecViolation::NonTrivial {
                decision: i,
                foreign: foreign.len(),
                bound: f,
            });
        }
    }
    Ok(())
}

/// **Liveness**: every correct process decided. `decided[i]` is whether
/// correct process `i` produced a decision.
pub fn check_liveness(decided: &[bool]) -> Result<(), SpecViolation> {
    match decided.iter().position(|d| !d) {
        Some(i) => Err(SpecViolation::NoDecision(i)),
        None => Ok(()),
    }
}

/// **Local Stability** (generalized LA): each process's decision sequence
/// is non-decreasing under `⊆`.
pub fn check_local_stability<V: Value>(
    sequences: &[Vec<ValueSet<V>>],
) -> Result<(), SpecViolation> {
    for (p, seq) in sequences.iter().enumerate() {
        for i in 1..seq.len() {
            if !seq[i - 1].is_subset(&seq[i]) {
                return Err(SpecViolation::NotMonotone {
                    process: p,
                    step: i,
                });
            }
        }
    }
    Ok(())
}

/// Generalized **Comparability**: all decisions of all processes, across
/// all rounds, are pairwise comparable.
pub fn check_global_comparability<V: Value>(
    sequences: &[Vec<ValueSet<V>>],
) -> Result<(), SpecViolation> {
    let flat: Vec<ValueSet<V>> = sequences.iter().flatten().cloned().collect();
    check_comparability(&flat)
}

/// Generalized **Inclusivity**: every input a correct process received
/// appears in some decision of *that* process.
pub fn check_generalized_inclusivity<V: Value>(
    inputs: &[Vec<V>],
    sequences: &[Vec<ValueSet<V>>],
) -> Result<(), SpecViolation> {
    for (p, ins) in inputs.iter().enumerate() {
        for v in ins {
            let included = sequences[p].iter().any(|d| d.contains(v));
            if !included {
                return Err(SpecViolation::NeverIncluded { process: p });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u64]) -> ValueSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn comparability_accepts_chains_rejects_antichains() {
        assert!(check_comparability(&[s(&[1]), s(&[1, 2]), s(&[1, 2, 3])]).is_ok());
        assert_eq!(
            check_comparability(&[s(&[1]), s(&[2])]),
            Err(SpecViolation::Incomparable(0, 1))
        );
    }

    #[test]
    fn inclusivity() {
        assert!(check_inclusivity(&[(1u64, s(&[1, 2]))]).is_ok());
        assert_eq!(
            check_inclusivity(&[(3u64, s(&[1, 2]))]),
            Err(SpecViolation::NotInclusive(0))
        );
    }

    #[test]
    fn nontriviality_bounds_foreign_values() {
        let x: BTreeSet<u64> = [1, 2, 3].into_iter().collect();
        assert!(check_nontriviality(&x, &[s(&[1, 2, 99])], 1).is_ok());
        assert!(matches!(
            check_nontriviality(&x, &[s(&[1, 98, 99])], 1),
            Err(SpecViolation::NonTrivial { .. })
        ));
        // Foreign values accumulate across decisions.
        assert!(matches!(
            check_nontriviality(&x, &[s(&[1, 98]), s(&[1, 98, 99])], 1),
            Err(SpecViolation::NonTrivial { .. })
        ));
    }

    #[test]
    fn liveness() {
        assert!(check_liveness(&[true, true]).is_ok());
        assert_eq!(
            check_liveness(&[true, false]),
            Err(SpecViolation::NoDecision(1))
        );
    }

    #[test]
    fn local_stability() {
        assert!(check_local_stability(&[vec![s(&[1]), s(&[1, 2])]]).is_ok());
        assert_eq!(
            check_local_stability(&[vec![s(&[1, 2]), s(&[1])]]),
            Err(SpecViolation::NotMonotone {
                process: 0,
                step: 1
            })
        );
    }

    #[test]
    fn global_comparability_spans_processes() {
        let ok = [vec![s(&[1])], vec![s(&[1, 2])]];
        assert!(check_global_comparability(&ok).is_ok());
        let bad = [vec![s(&[1])], vec![s(&[2])]];
        assert!(check_global_comparability(&bad).is_err());
    }

    #[test]
    fn generalized_inclusivity() {
        let inputs = vec![vec![1u64, 2]];
        let seqs_ok = vec![vec![s(&[1]), s(&[1, 2])]];
        assert!(check_generalized_inclusivity(&inputs, &seqs_ok).is_ok());
        let seqs_bad = vec![vec![s(&[1])]];
        assert!(check_generalized_inclusivity(&inputs, &seqs_bad).is_err());
    }
}
