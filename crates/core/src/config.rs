//! System parameters and quorum arithmetic.

use bgla_codec::{CodecError, Reader, Wire, Writer};

/// Static parameters of one agreement instance: `n` processes of which at
/// most `f` are Byzantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Total number of processes.
    pub n: usize,
    /// Upper bound on Byzantine processes.
    pub f: usize,
}

impl SystemConfig {
    /// Creates a configuration, checking the paper's resilience bound
    /// `n ≥ 3f + 1` (Theorem 1 proves it necessary).
    pub fn new(n: usize, f: usize) -> Self {
        #[allow(clippy::int_plus_one)] // paper notation: n >= 3f + 1
        {
            // bgla-lint: allow(byzantine-panic, "precondition on locally chosen params; Wire::decode builds the struct directly and never calls new")
            assert!(
                n >= 3 * f + 1,
                "Byzantine LA requires n >= 3f+1 (got n={n}, f={f})"
            );
        }
        SystemConfig { n, f }
    }

    /// Creates a configuration **without** the resilience check — used
    /// only by the `3f+1`-necessity experiment (E1), which deliberately
    /// runs the protocol under-provisioned to exhibit a violation.
    pub fn new_unchecked(n: usize, f: usize) -> Self {
        SystemConfig { n, f }
    }

    /// The maximum `f` for a given `n`: `⌊(n−1)/3⌋`.
    pub fn max_f(n: usize) -> usize {
        (n - 1) / 3
    }

    /// The Byzantine quorum used throughout the paper:
    /// `⌊(n + f)/2⌋ + 1` acks commit a proposal.
    pub fn quorum(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// Disclosure-phase threshold: proceed after `n − f` disclosures.
    pub fn disclosure_threshold(&self) -> usize {
        self.n - self.f
    }

    /// Minimum number of *correct* processes.
    pub fn min_correct(&self) -> usize {
        self.n - self.f
    }
}

/// Decoding deliberately skips the `n ≥ 3f + 1` assert: snapshots of the
/// `3f+1`-necessity experiment (E1) carry under-provisioned configs on
/// purpose. Only `n == 0` (meaningless everywhere) is rejected.
impl Wire for SystemConfig {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.n);
        w.usize(self.f);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.usize()?;
        let f = r.usize()?;
        if n == 0 {
            return Err(CodecError::Invalid("config n == 0"));
        }
        Ok(SystemConfig { n, f })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_values_match_paper() {
        // n=4, f=1: floor(5/2)+1 = 3.
        assert_eq!(SystemConfig::new(4, 1).quorum(), 3);
        // n=7, f=2: floor(9/2)+1 = 5.
        assert_eq!(SystemConfig::new(7, 2).quorum(), 5);
        // n=10, f=3: floor(13/2)+1 = 7.
        assert_eq!(SystemConfig::new(10, 3).quorum(), 7);
    }

    #[test]
    fn quorum_intersects_in_correct_process() {
        // Any two quorums of size floor((n+f)/2)+1 intersect in at least
        // f+1 processes, hence in one correct process.
        for n in 4..40 {
            let f = SystemConfig::max_f(n);
            let c = SystemConfig::new(n, f);
            let q = c.quorum();
            let intersection = 2 * q as i64 - n as i64;
            assert!(
                intersection >= f as i64 + 1,
                "n={n} f={f} q={q}: quorums may miss each other"
            );
        }
    }

    #[test]
    fn max_f_matches_bound() {
        assert_eq!(SystemConfig::max_f(4), 1);
        assert_eq!(SystemConfig::max_f(6), 1);
        assert_eq!(SystemConfig::max_f(7), 2);
        assert_eq!(SystemConfig::max_f(100), 33);
    }

    #[test]
    #[should_panic(expected = "n >= 3f+1")]
    fn rejects_overloaded_f() {
        let _ = SystemConfig::new(6, 2);
    }

    #[test]
    fn unchecked_allows_underprovisioning_for_e1() {
        let c = SystemConfig::new_unchecked(3, 1);
        assert_eq!(c.quorum(), 3);
    }
}
