//! Scenario builders shared by tests, examples, and benches.

use crate::config::SystemConfig;
use crate::value::Value;
use crate::valueset::ValueSet;
use crate::wts::{WtsMsg, WtsProcess};
use bgla_simnet::{Process, Scheduler, Simulation, SimulationBuilder};
use std::collections::BTreeSet;

/// Builds an all-correct WTS system of `n` processes (`f` is the *bound*
/// the algorithm is configured with; no process actually misbehaves).
/// `input(i)` supplies process `i`'s initial value.
pub fn wts_system<V: Value>(
    n: usize,
    f: usize,
    input: impl Fn(usize) -> V,
    scheduler: Box<dyn Scheduler>,
) -> (Simulation<WtsMsg<V>>, SystemConfig) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::new(i, config, input(i))));
    }
    (b.build(), config)
}

/// Builds a WTS system where processes in `byzantine` are replaced by the
/// supplied adversarial implementations. The adversary map is a function
/// from process id to an optional Byzantine process; `None` means the
/// process is correct.
pub fn wts_system_with_adversaries<V: Value>(
    n: usize,
    f: usize,
    input: impl Fn(usize) -> V,
    scheduler: Box<dyn Scheduler>,
    mut adversary: impl FnMut(usize, SystemConfig) -> Option<Box<dyn Process<WtsMsg<V>>>>,
) -> (Simulation<WtsMsg<V>>, SystemConfig, Vec<usize>) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    let mut byz = Vec::new();
    for i in 0..n {
        match adversary(i, config) {
            Some(p) => {
                byz.push(i);
                b = b.add(p);
            }
            None => {
                b = b.add(Box::new(WtsProcess::new(i, config, input(i))));
            }
        }
    }
    assert!(byz.len() <= f, "more adversaries than the configured f");
    (b.build(), config, byz)
}

/// Collects the artifacts of a finished WTS run over the *correct*
/// processes.
pub struct WtsRunReport<V: Value> {
    /// `(input, decision)` pairs of correct processes that decided.
    pub pairs: Vec<(V, ValueSet<V>)>,
    /// Decisions only (same order).
    pub decisions: Vec<ValueSet<V>>,
    /// Whether each correct process decided.
    pub decided: Vec<bool>,
    /// Decision depths (message delays) for those that decided.
    pub depths: Vec<u64>,
    /// Max refinements across correct processes.
    pub max_refinements: u64,
}

/// Extracts a [`WtsRunReport`] from a finished simulation. `correct`
/// lists the ids of correct processes.
pub fn wts_report<V: Value>(sim: &Simulation<WtsMsg<V>>, correct: &[usize]) -> WtsRunReport<V> {
    let mut pairs = Vec::new();
    let mut decisions = Vec::new();
    let mut decided = Vec::new();
    let mut depths = Vec::new();
    let mut max_refinements = 0;
    for &i in correct {
        let p = sim
            .process_as::<WtsProcess<V>>(i)
            .expect("correct process is a WtsProcess");
        decided.push(p.decision.is_some());
        if let Some(d) = &p.decision {
            pairs.push((p.proposal.clone(), d.clone()));
            decisions.push(d.clone());
        }
        if let Some(depth) = p.decision_depth {
            depths.push(depth);
        }
        max_refinements = max_refinements.max(p.refinements);
    }
    WtsRunReport {
        pairs,
        decisions,
        decided,
        depths,
        max_refinements,
    }
}

/// Runs the full LA specification battery on a report; panics with the
/// violation on failure. `correct_inputs` is `X` in the paper.
pub fn assert_la_spec<V: Value>(report: &WtsRunReport<V>, correct_inputs: &BTreeSet<V>, f: usize) {
    crate::spec::check_liveness(&report.decided).expect("liveness");
    crate::spec::check_comparability(&report.decisions).expect("comparability");
    crate::spec::check_inclusivity(&report.pairs).expect("inclusivity");
    crate::spec::check_nontriviality(correct_inputs, &report.decisions, f).expect("non-triviality");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_simnet::FifoScheduler;

    #[test]
    fn report_collects_everything() {
        let (mut sim, config) = wts_system(4, 1, |i| i as u64, Box::new(FifoScheduler::new()));
        sim.run(1_000_000);
        let correct: Vec<usize> = (0..config.n).collect();
        let report = wts_report(&sim, &correct);
        assert_eq!(report.decided.len(), 4);
        let inputs: BTreeSet<u64> = (0..4).map(|i| i as u64).collect();
        assert_la_spec(&report, &inputs, config.f);
        assert!(report.depths.iter().all(|&d| d <= 7));
    }
}
