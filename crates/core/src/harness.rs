//! Scenario builders shared by tests, examples, and benches — plus the
//! conformance *observers* that turn a running simulation into a full
//! operation history (see [`crate::search`] for the driver and
//! [`crate::linearize`] for the checker that consumes it).

use crate::config::SystemConfig;
use crate::gsbs::{GsbsMsg, GsbsProcess};
use crate::gwts::{GwtsMsg, GwtsProcess};
use crate::linearize::{OP_DECIDE, OP_PROPOSE, OP_REFINE, OP_RESTART};
use crate::sbs::{SbsMsg, SbsProcess};
use crate::search::Observer;
use crate::value::{SignableValue, Value};
use crate::valueset::ValueSet;
use crate::wts::{WtsMsg, WtsProcess};
use bgla_simnet::{
    NodeObserver, OpEvent, Process, ProcessId, Scheduler, Simulation, SimulationBuilder, Transport,
    WireMessage,
};
use std::collections::{BTreeMap, BTreeSet};

/// Builds an all-correct WTS system of `n` processes (`f` is the *bound*
/// the algorithm is configured with; no process actually misbehaves).
/// `input(i)` supplies process `i`'s initial value.
pub fn wts_system<V: Value>(
    n: usize,
    f: usize,
    input: impl Fn(usize) -> V,
    scheduler: Box<dyn Scheduler>,
) -> (Simulation<WtsMsg<V>>, SystemConfig) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(WtsProcess::new(i, config, input(i))));
    }
    (b.build(), config)
}

/// Builds a WTS system where processes in `byzantine` are replaced by the
/// supplied adversarial implementations. The adversary map is a function
/// from process id to an optional Byzantine process; `None` means the
/// process is correct.
pub fn wts_system_with_adversaries<V: Value>(
    n: usize,
    f: usize,
    input: impl Fn(usize) -> V,
    scheduler: Box<dyn Scheduler>,
    mut adversary: impl FnMut(usize, SystemConfig) -> Option<Box<dyn Process<WtsMsg<V>>>>,
) -> (Simulation<WtsMsg<V>>, SystemConfig, Vec<usize>) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    let mut byz = Vec::new();
    for i in 0..n {
        match adversary(i, config) {
            Some(p) => {
                byz.push(i);
                b = b.add(p);
            }
            None => {
                b = b.add(Box::new(WtsProcess::new(i, config, input(i))));
            }
        }
    }
    assert!(byz.len() <= f, "more adversaries than the configured f");
    (b.build(), config, byz)
}

/// Builds an all-correct SbS system of `n` processes (mirror of
/// [`wts_system`] for the signature algorithm).
pub fn sbs_system<V: crate::value::SignableValue>(
    n: usize,
    f: usize,
    input: impl Fn(usize) -> V,
    scheduler: Box<dyn Scheduler>,
) -> (Simulation<SbsMsg<V>>, SystemConfig) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(SbsProcess::new(i, config, input(i))));
    }
    (b.build(), config)
}

/// Builds an all-correct GWTS system running `rounds` rounds;
/// `schedule(i)` supplies process `i`'s per-round input schedule.
pub fn gwts_system<V: Value>(
    n: usize,
    f: usize,
    rounds: u64,
    schedule: impl Fn(usize) -> BTreeMap<u64, Vec<V>>,
    scheduler: Box<dyn Scheduler>,
) -> (Simulation<GwtsMsg<V>>, SystemConfig) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(GwtsProcess::new(i, config, schedule(i), rounds)));
    }
    (b.build(), config)
}

/// Builds an all-correct GSbS system (mirror of [`gwts_system`] for the
/// generalized signature algorithm).
pub fn gsbs_system<V: crate::value::SignableValue>(
    n: usize,
    f: usize,
    rounds: u64,
    schedule: impl Fn(usize) -> BTreeMap<u64, Vec<V>>,
    scheduler: Box<dyn Scheduler>,
) -> (Simulation<GsbsMsg<V>>, SystemConfig) {
    let config = SystemConfig::new(n, f);
    let mut b = SimulationBuilder::new().scheduler(scheduler);
    for i in 0..n {
        b = b.add(Box::new(GsbsProcess::new(i, config, schedule(i), rounds)));
    }
    (b.build(), config)
}

/// Collects the artifacts of a finished WTS run over the *correct*
/// processes.
pub struct WtsRunReport<V: Value> {
    /// `(input, decision)` pairs of correct processes that decided.
    pub pairs: Vec<(V, ValueSet<V>)>,
    /// Decisions only (same order).
    pub decisions: Vec<ValueSet<V>>,
    /// Whether each correct process decided.
    pub decided: Vec<bool>,
    /// Decision depths (message delays) for those that decided.
    pub depths: Vec<u64>,
    /// Max refinements across correct processes.
    pub max_refinements: u64,
}

/// Extracts a [`WtsRunReport`] from a finished run over *any* transport
/// (a `&Simulation` or a `&TcpRuntime` both coerce). `correct` lists
/// the ids of correct processes.
pub fn wts_report<V: Value>(
    transport: &dyn Transport<WtsMsg<V>>,
    correct: &[usize],
) -> WtsRunReport<V> {
    let mut pairs = Vec::new();
    let mut decisions = Vec::new();
    let mut decided = Vec::new();
    let mut depths = Vec::new();
    let mut max_refinements = 0;
    for &i in correct {
        transport.with_process(i, &mut |proc_| {
            let p = proc_
                .as_any()
                .downcast_ref::<WtsProcess<V>>()
                .expect("correct process is a WtsProcess");
            decided.push(p.decision.is_some());
            if let Some(d) = &p.decision {
                pairs.push((p.proposal.clone(), d.clone()));
                decisions.push(d.clone());
            }
            if let Some(depth) = p.decision_depth {
                depths.push(depth);
            }
            max_refinements = max_refinements.max(p.refinements);
        });
    }
    WtsRunReport {
        pairs,
        decisions,
        decided,
        depths,
        max_refinements,
    }
}

/// Runs the full LA specification battery on a report; panics with the
/// violation on failure. `correct_inputs` is `X` in the paper.
pub fn assert_la_spec<V: Value>(report: &WtsRunReport<V>, correct_inputs: &BTreeSet<V>, f: usize) {
    crate::spec::check_liveness(&report.decided).expect("liveness");
    crate::spec::check_comparability(&report.decisions).expect("comparability");
    crate::spec::check_inclusivity(&report.pairs).expect("inclusivity");
    crate::spec::check_nontriviality(correct_inputs, &report.decisions, f).expect("non-triviality");
}

// ---------------------------------------------------------------------------
// Conformance observers
// ---------------------------------------------------------------------------
//
// Each observer is a state-diffing closure: the driver
// (`crate::search::run_traced`) calls it after `on_start` and after
// every delivery; it downcasts the honest processes, diffs their public
// state against what it already emitted, and pushes one `OpEvent` per
// new operation — `propose` for value injections, `refine` for
// `Proposed_set` snapshots (emitted whenever the set grew), `decide`
// per decision. `key` maps values to the stable `u64` keys the
// trace/checker work with (identity for integer lattices).
//
// The four algorithms share two observation shapes — one-shot (single
// proposal, single decision: WTS, SbS) and streaming (input stream,
// decision sequence: GWTS, GSbS) — expressed as two small state-access
// traits so the diffing logic exists once per shape. The per-process
// diff memory itself lives in [`OneShotDiff`]/[`StreamingDiff`], which
// both the simulation-wide observers (with restart handling) and the
// per-node TCP observers (`wts_node_observer` & co. — the TCP runtime
// never restarts processes) are built from.

/// One-shot algorithm state the conformance observers read.
trait OneShotState<V: Value>: 'static {
    fn proposal(&self) -> &V;
    fn refinements(&self) -> u64;
    fn decision(&self) -> Option<&ValueSet<V>>;
    fn proposed_values(&self) -> ValueSet<V>;
}

impl<V: Value> OneShotState<V> for WtsProcess<V> {
    fn proposal(&self) -> &V {
        &self.proposal
    }
    fn refinements(&self) -> u64 {
        self.refinements
    }
    fn decision(&self) -> Option<&ValueSet<V>> {
        self.decision.as_ref()
    }
    fn proposed_values(&self) -> ValueSet<V> {
        WtsProcess::proposed_values(self)
    }
}

impl<V: SignableValue> OneShotState<V> for SbsProcess<V> {
    fn proposal(&self) -> &V {
        &self.proposal
    }
    fn refinements(&self) -> u64 {
        self.refinements
    }
    fn decision(&self) -> Option<&ValueSet<V>> {
        self.decision.as_ref()
    }
    fn proposed_values(&self) -> ValueSet<V> {
        SbsProcess::proposed_values(self)
    }
}

/// Streaming (generalized) algorithm state the observers read.
trait StreamingState<V: Value>: 'static {
    fn all_inputs(&self) -> &[V];
    fn decisions(&self) -> &[ValueSet<V>];
    fn round(&self) -> u64;
    fn proposed_values(&self) -> ValueSet<V>;
}

impl<V: Value> StreamingState<V> for GwtsProcess<V> {
    fn all_inputs(&self) -> &[V] {
        &self.all_inputs
    }
    fn decisions(&self) -> &[ValueSet<V>] {
        &self.decisions
    }
    fn round(&self) -> u64 {
        self.round
    }
    fn proposed_values(&self) -> ValueSet<V> {
        GwtsProcess::proposed_values(self)
    }
}

impl<V: SignableValue> StreamingState<V> for GsbsProcess<V> {
    fn all_inputs(&self) -> &[V] {
        &self.all_inputs
    }
    fn decisions(&self) -> &[ValueSet<V>] {
        &self.decisions
    }
    fn round(&self) -> u64 {
        self.round
    }
    fn proposed_values(&self) -> ValueSet<V> {
        GsbsProcess::proposed_values(self)
    }
}

fn downcast_honest<M: WireMessage + 'static, P: 'static>(sim: &Simulation<M>, i: ProcessId) -> &P {
    sim.process_as::<P>(i)
        .unwrap_or_else(|| panic!("honest process {i} is not a {}", std::any::type_name::<P>()))
}

/// Per-process diff memory for the one-shot shape: what the observer
/// already announced about one process, and the diffing step that
/// compares live state against it.
#[derive(Default)]
struct OneShotDiff {
    proposed: bool,
    decided: bool,
    prop_last: Vec<u64>,
}

impl OneShotDiff {
    /// Diffs `p` against this memory, appending one op per new
    /// operation. `step` stamps the emitted ops (per-node observers
    /// pass 0 — the TCP log merge assigns real steps later).
    fn diff_ops<V: Value>(
        &mut self,
        p: &dyn OneShotState<V>,
        i: ProcessId,
        step: u64,
        key: fn(&V) -> u64,
        out: &mut Vec<OpEvent>,
    ) {
        if !self.proposed {
            self.proposed = true;
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_PROPOSE,
                ts: 0,
                values: vec![key(p.proposal())],
            });
        }
        // Emit on ANY change of the proposed set — a transient shrink or
        // same-length value swap is exactly what the prefix checker's
        // `ProposalShrunk` rule exists to catch; gating on growth would
        // hide it.
        let prop: Vec<u64> = p.proposed_values().iter().map(&key).collect();
        if prop != self.prop_last {
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_REFINE,
                ts: p.refinements(),
                values: prop.clone(),
            });
            self.prop_last = prop;
        }
        if let Some(d) = p.decision() {
            if !self.decided {
                self.decided = true;
                out.push(OpEvent {
                    step,
                    process: i,
                    kind: OP_DECIDE,
                    ts: 0,
                    values: d.iter().map(&key).collect(),
                });
            }
        }
    }
}

/// Per-process diff memory for the streaming shape (watermarks into the
/// input stream and decision sequence).
#[derive(Default)]
struct StreamingDiff {
    inputs_seen: usize,
    decides_seen: usize,
    prop_last: Vec<u64>,
}

impl StreamingDiff {
    /// Diffs `p` against this memory, appending one op per new
    /// operation (see [`OneShotDiff::observe`] for the `step`
    /// convention).
    fn diff_ops<V: Value>(
        &mut self,
        p: &dyn StreamingState<V>,
        i: ProcessId,
        step: u64,
        key: fn(&V) -> u64,
        out: &mut Vec<OpEvent>,
    ) {
        let inputs = p.all_inputs();
        if inputs.len() > self.inputs_seen {
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_PROPOSE,
                ts: p.round(),
                values: inputs[self.inputs_seen..].iter().map(&key).collect(),
            });
            self.inputs_seen = inputs.len();
        }
        // Any-change emission, as in the one-shot shape: shrinks and
        // same-length swaps must reach the checker.
        let prop: Vec<u64> = p.proposed_values().iter().map(&key).collect();
        if prop != self.prop_last {
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_REFINE,
                ts: p.round(),
                values: prop.clone(),
            });
            self.prop_last = prop;
        }
        let decisions = p.decisions();
        while self.decides_seen < decisions.len() {
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_DECIDE,
                ts: self.decides_seen as u64,
                values: decisions[self.decides_seen].iter().map(&key).collect(),
            });
            self.decides_seen += 1;
        }
    }

    /// Post-restart re-anchoring. Everything in the restored snapshot
    /// was observed (and announced) before the crash — snapshots are
    /// taken from live state the observer had already diffed — so the
    /// input watermark just re-anchors to the restored length (a
    /// genesis rejoin re-proposes through the normal path,
    /// idempotently). Decisions are re-announced, but only the *last*
    /// one: the restored sequence is a ⊆-chain whose earlier entries
    /// would read as regressions; the final entry is the durable
    /// watermark the checker compares against the pre-crash decide.
    fn reanchor<V: Value>(
        &mut self,
        p: &dyn StreamingState<V>,
        i: ProcessId,
        step: u64,
        key: fn(&V) -> u64,
        out: &mut Vec<OpEvent>,
    ) {
        self.inputs_seen = p.all_inputs().len();
        self.prop_last.clear();
        let decisions = p.decisions();
        if let Some(last) = decisions.last() {
            out.push(OpEvent {
                step,
                process: i,
                kind: OP_DECIDE,
                ts: (decisions.len() - 1) as u64,
                values: last.iter().map(&key).collect(),
            });
        }
        self.decides_seen = decisions.len();
    }
}

fn oneshot_observer<M, P, V>(honest: Vec<ProcessId>, key: fn(&V) -> u64) -> Observer<M>
where
    M: WireMessage + 'static,
    P: OneShotState<V>,
    V: Value,
{
    let mut diffs: BTreeMap<ProcessId, OneShotDiff> = BTreeMap::new();
    let mut gen_seen: BTreeMap<ProcessId, u64> = BTreeMap::new();
    Box::new(move |sim, out| {
        let step = sim.metrics().delivered;
        for &i in &honest {
            if sim.is_crashed(i) {
                // The dead incarnation's state is frozen; nothing to observe.
                continue;
            }
            let gen = sim.restarts_of(i);
            let gseen = gen_seen.entry(i).or_insert(0);
            if gen > *gseen {
                *gseen = gen;
                out.push(OpEvent {
                    step,
                    process: i,
                    kind: OP_RESTART,
                    ts: gen,
                    values: Vec::new(),
                });
                // The diff memory described the dead incarnation: forget
                // it so everything the restored state still claims is
                // re-announced. Re-emitted propose/refine ops are
                // idempotent at the checker (which resets its refine
                // watermark at the restart op); the re-emitted decide is
                // the rollback probe — a stale snapshot's smaller
                // decision surfaces as `RestartRegression`.
                diffs.remove(&i);
            }
            let p = downcast_honest::<M, P>(sim, i);
            diffs.entry(i).or_default().diff_ops(p, i, step, key, out);
        }
    })
}

fn streaming_observer<M, P, V>(honest: Vec<ProcessId>, key: fn(&V) -> u64) -> Observer<M>
where
    M: WireMessage + 'static,
    P: StreamingState<V>,
    V: Value,
{
    let mut diffs: BTreeMap<ProcessId, StreamingDiff> = BTreeMap::new();
    let mut gen_seen: BTreeMap<ProcessId, u64> = BTreeMap::new();
    Box::new(move |sim, out| {
        let step = sim.metrics().delivered;
        for &i in &honest {
            if sim.is_crashed(i) {
                continue;
            }
            let gen = sim.restarts_of(i);
            let gseen = gen_seen.entry(i).or_insert(0);
            if gen > *gseen {
                *gseen = gen;
                out.push(OpEvent {
                    step,
                    process: i,
                    kind: OP_RESTART,
                    ts: gen,
                    values: Vec::new(),
                });
                let p = downcast_honest::<M, P>(sim, i);
                diffs.entry(i).or_default().reanchor(p, i, step, key, out);
            }
            let p = downcast_honest::<M, P>(sim, i);
            diffs.entry(i).or_default().diff_ops(p, i, step, key, out);
        }
    })
}

fn oneshot_node_observer<M, P, V>(me: ProcessId, key: fn(&V) -> u64) -> NodeObserver<M>
where
    M: WireMessage + 'static,
    P: OneShotState<V>,
    V: Value,
{
    let mut diff = OneShotDiff::default();
    Box::new(move |proc_, out| {
        let p = proc_
            .as_any()
            .downcast_ref::<P>()
            .unwrap_or_else(|| panic!("node {me} is not a {}", std::any::type_name::<P>()));
        diff.diff_ops(p, me, 0, key, out);
    })
}

fn streaming_node_observer<M, P, V>(me: ProcessId, key: fn(&V) -> u64) -> NodeObserver<M>
where
    M: WireMessage + 'static,
    P: StreamingState<V>,
    V: Value,
{
    let mut diff = StreamingDiff::default();
    Box::new(move |proc_, out| {
        let p = proc_
            .as_any()
            .downcast_ref::<P>()
            .unwrap_or_else(|| panic!("node {me} is not a {}", std::any::type_name::<P>()));
        diff.diff_ops(p, me, 0, key, out);
    })
}

/// Observer for systems of [`WtsProcess`]es (honest ids only —
/// adversaries have no conforming state to observe).
pub fn wts_observer<V: Value>(honest: Vec<ProcessId>, key: fn(&V) -> u64) -> Observer<WtsMsg<V>> {
    oneshot_observer::<WtsMsg<V>, WtsProcess<V>, V>(honest, key)
}

/// Observer for systems of [`SbsProcess`]es.
pub fn sbs_observer<V: SignableValue>(
    honest: Vec<ProcessId>,
    key: fn(&V) -> u64,
) -> Observer<SbsMsg<V>> {
    oneshot_observer::<SbsMsg<V>, SbsProcess<V>, V>(honest, key)
}

/// Observer for systems of [`GwtsProcess`]es.
pub fn gwts_observer<V: Value>(honest: Vec<ProcessId>, key: fn(&V) -> u64) -> Observer<GwtsMsg<V>> {
    streaming_observer::<GwtsMsg<V>, GwtsProcess<V>, V>(honest, key)
}

/// Observer for systems of [`GsbsProcess`]es.
pub fn gsbs_observer<V: SignableValue>(
    honest: Vec<ProcessId>,
    key: fn(&V) -> u64,
) -> Observer<GsbsMsg<V>> {
    streaming_observer::<GsbsMsg<V>, GsbsProcess<V>, V>(honest, key)
}

// Per-node observers for real transports: same diffing as the
// simulation-wide observers above, one process each, no restart
// handling (the TCP runtime does not restart processes — durable
// snapshots compose at the layer above). Emitted ops carry `step: 0`;
// the transport's log merge assigns real steps from causal order.

/// Per-node observer for one honest [`WtsProcess`] (pass to
/// `TcpRuntimeBuilder::add_observed`).
pub fn wts_node_observer<V: Value>(me: ProcessId, key: fn(&V) -> u64) -> NodeObserver<WtsMsg<V>> {
    oneshot_node_observer::<WtsMsg<V>, WtsProcess<V>, V>(me, key)
}

/// Per-node observer for one honest [`SbsProcess`].
pub fn sbs_node_observer<V: SignableValue>(
    me: ProcessId,
    key: fn(&V) -> u64,
) -> NodeObserver<SbsMsg<V>> {
    oneshot_node_observer::<SbsMsg<V>, SbsProcess<V>, V>(me, key)
}

/// Per-node observer for one honest [`GwtsProcess`].
pub fn gwts_node_observer<V: Value>(me: ProcessId, key: fn(&V) -> u64) -> NodeObserver<GwtsMsg<V>> {
    streaming_node_observer::<GwtsMsg<V>, GwtsProcess<V>, V>(me, key)
}

/// Per-node observer for one honest [`GsbsProcess`].
pub fn gsbs_node_observer<V: SignableValue>(
    me: ProcessId,
    key: fn(&V) -> u64,
) -> NodeObserver<GsbsMsg<V>> {
    streaming_node_observer::<GsbsMsg<V>, GsbsProcess<V>, V>(me, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgla_simnet::FifoScheduler;

    #[test]
    fn report_collects_everything() {
        let (mut sim, config) = wts_system(4, 1, |i| i as u64, Box::new(FifoScheduler::new()));
        sim.run(1_000_000);
        let correct: Vec<usize> = (0..config.n).collect();
        let report = wts_report(&sim, &correct);
        assert_eq!(report.decided.len(), 4);
        let inputs: BTreeSet<u64> = (0..4).map(|i| i as u64).collect();
        assert_la_spec(&report, &inputs, config.f);
        assert!(report.depths.iter().all(|&d| d <= 7));
    }
}
