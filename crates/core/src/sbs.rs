//! **Safety by Signature** (SbS) — Algorithms 8, 9 and 10.
//!
//! The signature-based one-shot Lattice Agreement of Section 8. Compared
//! to WTS it removes the Byzantine reliable broadcast — the `O(n²)`
//! messages per process — and replaces it with *proofs of safety*:
//!
//! 1. **Init**: each proposer broadcasts its **signed** initial value and
//!    collects `n − f` of them into `Safety_set` (conflicting pairs —
//!    two different values signed by the same process — are removed).
//! 2. **Safetying**: the proposer sends `Safety_set` to all acceptors.
//!    Each acceptor replies with a **signed** `safe_ack` echoing the set
//!    and listing every conflict it knows about. A value with
//!    `⌊(n+f)/2⌋ + 1` safe-acks, none of which lists it as conflicted,
//!    is *safe*: by quorum intersection at most one value per signer can
//!    ever become safe (Lemma 13 — the signature-based analogue of
//!    reliable broadcast's no-equivocation).
//! 3. **Proposing**: as in WTS, but every value travels with its
//!    attached proof of safety (`<v, Safe_acks>`), and correct processes
//!    refuse to act on values whose proof does not check out
//!    (`AllSafe`). This phase costs `O(n)` messages per proposer per
//!    refinement; with at most `2f` refinements (Lemma 16) the total is
//!    `O(n)` for `f = O(1)` — trading message *count* for message *size*
//!    (proofs are `O(n²)`).
//!
//! Message delays: `5 + 4f` (Theorem 8).

use crate::config::SystemConfig;
use crate::value::SignableValue;
use crate::valueset::ValueSet;
use bgla_crypto::{CachedVerifier, Keypair, Keyring, Signature, ToBytes};
use bgla_simnet::{Context, Process, ProcessId, WireMessage};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

const VALUE_DOMAIN: &[u8] = b"bgla-sbs-value:";
const ACK_DOMAIN: &[u8] = b"bgla-sbs-safeack:";

/// A value signed by its proposer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SignedValue<V: SignableValue> {
    /// The proposed value.
    pub value: V,
    /// The signing proposer (`v.sender` in the paper).
    pub signer: ProcessId,
    /// Ed25519 signature over the domain-tagged value.
    pub sig: Signature,
}

impl<V: SignableValue> SignedValue<V> {
    fn signable_bytes(value: &V, signer: ProcessId) -> Vec<u8> {
        let mut out = VALUE_DOMAIN.to_vec();
        (signer as u64).write_bytes(&mut out);
        value.write_bytes(&mut out);
        out
    }

    /// Signs `value` as process `signer`.
    pub fn sign(value: V, signer: ProcessId, kp: &Keypair) -> Self {
        let sig = kp.sign(&Self::signable_bytes(&value, signer));
        SignedValue { value, signer, sig }
    }

    /// Verifies the signature against the PKI.
    pub fn verify(&self, ring: &Keyring) -> bool {
        ring.verify(
            self.signer,
            &Self::signable_bytes(&self.value, self.signer),
            &self.sig,
        )
    }

    /// Two signed values *conflict* when the same signer signed two
    /// different values (`VerifyConfPair` checks signatures too; that is
    /// done at verification sites).
    pub fn conflicts_with(&self, other: &Self) -> bool {
        self.signer == other.signer && self.value != other.value
    }
}

/// The body of a `safe_ack`: the echoed request set and the conflicts the
/// acceptor knows of.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SafeAckBody<V: SignableValue> {
    /// Echo of the proposer's `Safety_set`.
    pub rcvd: BTreeSet<SignedValue<V>>,
    /// Conflicting pairs known to the acceptor.
    pub conflicts: Vec<(SignedValue<V>, SignedValue<V>)>,
}

impl<V: SignableValue> SafeAckBody<V> {
    fn signable_bytes(&self, signer: ProcessId) -> Vec<u8> {
        let mut out = ACK_DOMAIN.to_vec();
        (signer as u64).write_bytes(&mut out);
        (self.rcvd.len() as u64).write_bytes(&mut out);
        for sv in &self.rcvd {
            (sv.signer as u64).write_bytes(&mut out);
            sv.value.write_bytes(&mut out);
            out.extend_from_slice(&sv.sig.to_bytes());
        }
        (self.conflicts.len() as u64).write_bytes(&mut out);
        for (a, b) in &self.conflicts {
            for sv in [a, b] {
                (sv.signer as u64).write_bytes(&mut out);
                sv.value.write_bytes(&mut out);
                out.extend_from_slice(&sv.sig.to_bytes());
            }
        }
        out
    }

    /// Whether `sv` appears in some conflict pair.
    pub fn conflicted(&self, sv: &SignedValue<V>) -> bool {
        self.conflicts.iter().any(|(a, b)| a == sv || b == sv)
    }
}

/// A signed `safe_ack`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SignedSafeAck<V: SignableValue> {
    /// Ack body.
    pub body: SafeAckBody<V>,
    /// The acceptor that produced it.
    pub signer: ProcessId,
    /// Signature over the body.
    pub sig: Signature,
}

impl<V: SignableValue> SignedSafeAck<V> {
    /// Signs an ack body as acceptor `signer`.
    pub fn sign(body: SafeAckBody<V>, signer: ProcessId, kp: &Keypair) -> Self {
        let sig = kp.sign(&body.signable_bytes(signer));
        SignedSafeAck { body, signer, sig }
    }

    /// Verifies the acceptor's signature.
    pub fn verify(&self, ring: &Keyring) -> bool {
        ring.verify(
            self.signer,
            &self.body.signable_bytes(self.signer),
            &self.sig,
        )
    }
}

/// A proof of safety: a quorum of safe-acks none of which conflicts the
/// value. Shared (`Arc`) across all values certified by the same
/// safetying exchange, like the paper's `<v, Safe_acks>` pairs.
pub type SafetyProof<V> = Arc<Vec<SignedSafeAck<V>>>;

/// A value bundled with its proof of safety.
#[derive(Debug, Clone)]
pub struct ProvenValue<V: SignableValue> {
    /// The signed value.
    pub sv: SignedValue<V>,
    /// Quorum of safe-acks certifying it.
    pub proof: SafetyProof<V>,
}

impl<V: SignableValue> PartialEq for ProvenValue<V> {
    fn eq(&self, other: &Self) -> bool {
        self.sv == other.sv
    }
}
impl<V: SignableValue> Eq for ProvenValue<V> {}
impl<V: SignableValue> PartialOrd for ProvenValue<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: SignableValue> Ord for ProvenValue<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Proof contents don't affect identity: a value is the same
        // lattice element regardless of which quorum certified it.
        self.sv.cmp(&other.sv)
    }
}

fn proven_values_size<V: SignableValue>(set: &BTreeSet<ProvenValue<V>>) -> usize {
    // Shared proofs are counted once, as a real codec would transmit
    // them (the paper's O(n²) message size comes from the proofs).
    let mut total = 8;
    let mut seen: Vec<*const Vec<SignedSafeAck<V>>> = Vec::new();
    for pv in set {
        total += pv.sv.value.wire_size() + 8 + 64;
        let ptr = Arc::as_ptr(&pv.proof);
        if !seen.contains(&ptr) {
            seen.push(ptr);
            for ack in pv.proof.iter() {
                total += 8
                    + 64
                    + ack
                        .body
                        .rcvd
                        .iter()
                        .map(|sv| sv.value.wire_size() + 72)
                        .sum::<usize>()
                    + ack
                        .body
                        .conflicts
                        .iter()
                        .map(|(a, b)| a.value.wire_size() + b.value.wire_size() + 144)
                        .sum::<usize>();
            }
        }
    }
    total
}

/// SbS wire messages.
#[derive(Debug, Clone)]
pub enum SbsMsg<V: SignableValue> {
    /// Init phase: signed initial value, proposer → proposers.
    Init(SignedValue<V>),
    /// Safetying phase: proposer → acceptors.
    SafeReq(BTreeSet<SignedValue<V>>),
    /// Safetying phase: acceptor → proposer.
    SafeAck(SignedSafeAck<V>),
    /// Proposing phase: proposer → acceptors, values carry proofs.
    AckReq {
        /// Proven proposal.
        proposed: BTreeSet<ProvenValue<V>>,
        /// Refinement timestamp.
        ts: u64,
    },
    /// Acceptor agrees (echoes the value set for the equality check).
    Ack {
        /// Values of the accepted set.
        values: ValueSet<V>,
        /// Echoed timestamp.
        ts: u64,
    },
    /// Acceptor refuses and ships its own proven accepted set.
    Nack {
        /// Acceptor's accepted set with proofs.
        accepted: BTreeSet<ProvenValue<V>>,
        /// Echoed timestamp.
        ts: u64,
    },
}

impl<V: SignableValue> WireMessage for SbsMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            SbsMsg::Init(_) => "init",
            SbsMsg::SafeReq(_) => "safe_req",
            SbsMsg::SafeAck(_) => "safe_ack",
            SbsMsg::AckReq { .. } => "ack_req",
            SbsMsg::Ack { .. } => "ack",
            SbsMsg::Nack { .. } => "nack",
        }
    }
    fn wire_size(&self) -> usize {
        match self {
            SbsMsg::Init(sv) => sv.value.wire_size() + 72,
            SbsMsg::SafeReq(set) => {
                8 + set
                    .iter()
                    .map(|sv| sv.value.wire_size() + 72)
                    .sum::<usize>()
            }
            SbsMsg::SafeAck(ack) => {
                72 + ack
                    .body
                    .rcvd
                    .iter()
                    .map(|sv| sv.value.wire_size() + 72)
                    .sum::<usize>()
                    + ack
                        .body
                        .conflicts
                        .iter()
                        .map(|(a, b)| a.value.wire_size() + b.value.wire_size() + 144)
                        .sum::<usize>()
            }
            SbsMsg::AckReq { proposed, .. } => 8 + proven_values_size(proposed),
            SbsMsg::Ack { values, .. } => 8 + values.wire_size(),
            SbsMsg::Nack { accepted, .. } => 8 + proven_values_size(accepted),
        }
    }
}

/// Proposer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbsState {
    /// Collecting signed initial values.
    Init,
    /// Waiting for safe-acks.
    Safetying,
    /// Proposing / refining.
    Proposing,
    /// Decided (terminal).
    Decided,
}

/// Removes every conflicting pair from `set` (both members), per
/// Algorithm 10's `RemoveConflicts`.
fn remove_conflicts<V: SignableValue>(set: &BTreeSet<SignedValue<V>>) -> BTreeSet<SignedValue<V>> {
    let items: Vec<&SignedValue<V>> = set.iter().collect();
    let mut bad = vec![false; items.len()];
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            if items[i].conflicts_with(items[j]) {
                bad[i] = true;
                bad[j] = true;
            }
        }
    }
    items
        .into_iter()
        .zip(bad)
        .filter(|(_, b)| !b)
        .map(|(sv, _)| sv.clone())
        .collect()
}

/// Lists conflicting pairs within `set` (Algorithm 10's
/// `ReturnConflicts`).
fn return_conflicts<V: SignableValue>(
    set: &BTreeSet<SignedValue<V>>,
) -> Vec<(SignedValue<V>, SignedValue<V>)> {
    let items: Vec<&SignedValue<V>> = set.iter().collect();
    let mut out = Vec::new();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            if items[i].conflicts_with(items[j]) {
                out.push((items[i].clone(), items[j].clone()));
            }
        }
    }
    out
}

/// A correct SbS participant (proposer + acceptor).
pub struct SbsProcess<V: SignableValue> {
    /// System parameters.
    pub config: SystemConfig,
    me: ProcessId,
    /// Initial value.
    pub proposal: V,
    keypair: Keypair,
    verifier: CachedVerifier,
    validator: fn(&V) -> bool,

    state: SbsState,
    /// `Safety_set`: collected signed inits (conflicts removed).
    safety_set: BTreeSet<SignedValue<V>>,
    /// Collected safe-acks for our `safe_req`.
    safe_acks: Vec<SignedSafeAck<V>>,
    safe_ack_senders: BTreeSet<ProcessId>,
    /// `byz[]` flags.
    byz: BTreeSet<ProcessId>,
    /// Proven proposal.
    proposed_set: BTreeSet<ProvenValue<V>>,
    ack_set: BTreeSet<ProcessId>,
    ts: u64,
    /// Acceptor: candidates for safety (conflicts removed).
    safe_candidates: BTreeSet<SignedValue<V>>,
    /// Acceptor: accepted proven set.
    accepted_set: BTreeSet<ProvenValue<V>>,

    /// The decision (value set), once made.
    pub decision: Option<ValueSet<V>>,
    /// Causal depth at decision.
    pub decision_depth: Option<u64>,
    /// Refinement count (Lemma 16: ≤ 2f).
    pub refinements: u64,
}

impl<V: SignableValue> SbsProcess<V> {
    /// Creates a correct participant. Key material comes from the
    /// deterministic per-process PKI.
    pub fn new(me: ProcessId, config: SystemConfig, proposal: V) -> Self {
        SbsProcess {
            config,
            me,
            proposal,
            keypair: Keypair::for_process(me),
            verifier: CachedVerifier::new(Keyring::for_system(config.n)),
            validator: |_| true,
            state: SbsState::Init,
            safety_set: BTreeSet::new(),
            safe_acks: Vec::new(),
            safe_ack_senders: BTreeSet::new(),
            byz: BTreeSet::new(),
            proposed_set: BTreeSet::new(),
            ack_set: BTreeSet::new(),
            ts: 0,
            safe_candidates: BTreeSet::new(),
            accepted_set: BTreeSet::new(),
            decision: None,
            decision_depth: None,
            refinements: 0,
        }
    }

    /// Installs a validity predicate.
    pub fn with_validator(mut self, v: fn(&V) -> bool) -> Self {
        self.validator = v;
        self
    }

    /// Process id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Current phase.
    pub fn state(&self) -> SbsState {
        self.state
    }

    fn verify_value(&mut self, sv: &SignedValue<V>) -> bool {
        self.verifier.verify(
            sv.signer,
            &SignedValue::signable_bytes(&sv.value, sv.signer),
            &sv.sig,
        )
    }

    /// Algorithm 10's `AllSafe`: every value's proof checks out. The
    /// structural checks (quorum size, distinct signers, coverage,
    /// conflicts) run first; all signature obligations of the whole set
    /// are then verified through one batched Ed25519 check
    /// ([`CachedVerifier::verify_all`]), with verdicts cached so
    /// Byzantine re-sends of the same records cost nothing.
    fn all_safe(&mut self, set: &BTreeSet<ProvenValue<V>>) -> bool {
        let quorum = self.config.quorum();
        let mut obligations: Vec<(usize, Vec<u8>, Signature)> = Vec::new();
        let mut seen_proofs: Vec<*const Vec<SignedSafeAck<V>>> = Vec::new();
        for pv in set {
            if !(self.validator)(&pv.sv.value) {
                return false;
            }
            if pv.proof.len() < quorum {
                return false;
            }
            let mut signers = BTreeSet::new();
            for ack in pv.proof.iter() {
                if !signers.insert(ack.signer) {
                    return false; // duplicate signer
                }
                if !ack.body.rcvd.contains(&pv.sv) {
                    return false; // proof doesn't cover this value
                }
                if ack.body.conflicted(&pv.sv) {
                    return false; // a quorum member reported a conflict
                }
            }
            obligations.push((
                pv.sv.signer,
                SignedValue::signable_bytes(&pv.sv.value, pv.sv.signer),
                pv.sv.sig,
            ));
            let ptr = Arc::as_ptr(&pv.proof);
            if !seen_proofs.contains(&ptr) {
                seen_proofs.push(ptr);
                for ack in pv.proof.iter() {
                    obligations.push((ack.signer, ack.body.signable_bytes(ack.signer), ack.sig));
                }
            }
        }
        self.verifier.verify_all(&obligations)
    }

    fn broadcast_proposal(&mut self, ctx: &mut Context<SbsMsg<V>>) {
        ctx.broadcast(SbsMsg::AckReq {
            proposed: self.proposed_set.clone(),
            ts: self.ts,
        });
    }

    fn values_of(set: &BTreeSet<ProvenValue<V>>) -> ValueSet<V> {
        set.iter().map(|pv| pv.sv.value.clone()).collect()
    }

    /// Transitions Init → Safetying when enough signed inits arrived.
    fn maybe_start_safetying(&mut self, ctx: &mut Context<SbsMsg<V>>) {
        if self.state == SbsState::Init
            && self.safety_set.len() >= self.config.disclosure_threshold()
        {
            self.state = SbsState::Safetying;
            ctx.broadcast(SbsMsg::SafeReq(self.safety_set.clone()));
        }
    }

    /// Transitions Safetying → Proposing when a quorum of safe-acks
    /// arrived: assembles proofs for every unconflicted value.
    fn maybe_start_proposing(&mut self, ctx: &mut Context<SbsMsg<V>>) {
        if self.state != SbsState::Safetying || self.safe_acks.len() < self.config.quorum() {
            return;
        }
        let proof: SafetyProof<V> = Arc::new(self.safe_acks.clone());
        for sv in self.safety_set.clone() {
            let conflicted = proof.iter().any(|ack| ack.body.conflicted(&sv));
            if !conflicted {
                self.proposed_set.insert(ProvenValue {
                    sv,
                    proof: Arc::clone(&proof),
                });
            }
        }
        self.state = SbsState::Proposing;
        self.ack_set.clear();
        self.ts += 1;
        self.broadcast_proposal(ctx);
    }
}

impl<V: SignableValue> Process<SbsMsg<V>> for SbsProcess<V> {
    fn on_start(&mut self, ctx: &mut Context<SbsMsg<V>>) {
        let sv = SignedValue::sign(self.proposal.clone(), self.me, &self.keypair);
        self.safety_set.insert(sv.clone());
        ctx.broadcast(SbsMsg::Init(sv));
        self.maybe_start_safetying(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: SbsMsg<V>, ctx: &mut Context<SbsMsg<V>>) {
        match msg {
            // ---- Init phase (proposer side) ----
            SbsMsg::Init(sv) => {
                if self.state == SbsState::Init
                    && (self.validator)(&sv.value)
                    && self.verify_value(&sv)
                {
                    self.safety_set.insert(sv);
                    self.safety_set = remove_conflicts(&self.safety_set);
                    self.maybe_start_safetying(ctx);
                }
            }
            // ---- Safetying phase (acceptor side) ----
            SbsMsg::SafeReq(set) => {
                // One batched verification for the whole echoed set
                // instead of a scalar-mul pair per signed value.
                let obligations: Vec<(usize, Vec<u8>, Signature)> = set
                    .iter()
                    .map(|sv| {
                        (
                            sv.signer,
                            SignedValue::signable_bytes(&sv.value, sv.signer),
                            sv.sig,
                        )
                    })
                    .collect();
                if self.verifier.verify_all(&obligations) {
                    let mut union: BTreeSet<SignedValue<V>> = self.safe_candidates.clone();
                    union.extend(set.iter().cloned());
                    let conflicts = return_conflicts(&union);
                    let body = SafeAckBody {
                        rcvd: set,
                        conflicts,
                    };
                    let ack = SignedSafeAck::sign(body, self.me, &self.keypair);
                    ctx.send(from, SbsMsg::SafeAck(ack));
                    self.safe_candidates = remove_conflicts(&union);
                }
            }
            // ---- Safetying phase (proposer side) ----
            SbsMsg::SafeAck(ack) => {
                if self.state != SbsState::Safetying {
                    return;
                }
                // `VerifyConfPair`, batched: all structural checks
                // first, then every signature (both pair members and
                // the ack itself) in one batched verification — no
                // serialization work for structurally-invalid junk.
                let structural = ack.signer == from
                    && ack.body.rcvd == self.safety_set
                    && !self.safe_ack_senders.contains(&from)
                    && ack
                        .body
                        .conflicts
                        .iter()
                        .all(|(a, b)| a.signer == b.signer && a.value != b.value);
                if structural && {
                    let mut obligations: Vec<(usize, Vec<u8>, Signature)> = ack
                        .body
                        .conflicts
                        .iter()
                        .flat_map(|(a, b)| [a, b])
                        .map(|sv| {
                            (
                                sv.signer,
                                SignedValue::signable_bytes(&sv.value, sv.signer),
                                sv.sig,
                            )
                        })
                        .collect();
                    obligations.push((ack.signer, ack.body.signable_bytes(ack.signer), ack.sig));
                    self.verifier.verify_all(&obligations)
                } {
                    self.safe_ack_senders.insert(from);
                    self.safe_acks.push(ack);
                    self.maybe_start_proposing(ctx);
                } else {
                    self.byz.insert(from);
                }
            }
            // ---- Proposing phase (acceptor side) ----
            SbsMsg::AckReq { proposed, ts } => {
                if !self.all_safe(&proposed) {
                    return; // drop: unproven values
                }
                let acc_vals = Self::values_of(&self.accepted_set);
                let prop_vals = Self::values_of(&proposed);
                if acc_vals.is_subset(&prop_vals) {
                    self.accepted_set = proposed;
                    ctx.send(
                        from,
                        SbsMsg::Ack {
                            values: Self::values_of(&self.accepted_set),
                            ts,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        SbsMsg::Nack {
                            accepted: self.accepted_set.clone(),
                            ts,
                        },
                    );
                    self.accepted_set.extend(proposed);
                }
            }
            // ---- Proposing phase (proposer side) ----
            SbsMsg::Ack { values, ts } => {
                if ts != self.ts || self.state != SbsState::Proposing {
                    return;
                }
                if values == Self::values_of(&self.proposed_set) && !self.byz.contains(&from) {
                    self.ack_set.insert(from);
                    if self.ack_set.len() >= self.config.quorum() {
                        self.state = SbsState::Decided;
                        self.decision = Some(Self::values_of(&self.proposed_set));
                        self.decision_depth = Some(ctx.depth);
                    }
                } else {
                    self.byz.insert(from);
                }
            }
            SbsMsg::Nack { accepted, ts } => {
                if ts != self.ts || self.state != SbsState::Proposing {
                    return;
                }
                let acc_vals = Self::values_of(&accepted);
                let prop_vals = Self::values_of(&self.proposed_set);
                let grows = !acc_vals.is_subset(&prop_vals);
                if grows && !self.byz.contains(&from) && self.all_safe(&accepted) {
                    self.proposed_set.extend(accepted);
                    self.ack_set.clear();
                    self.ts += 1;
                    self.refinements += 1;
                    self.broadcast_proposal(ctx);
                } else {
                    self.byz.insert(from);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use bgla_simnet::{FifoScheduler, RandomScheduler, Scheduler, Simulation, SimulationBuilder};

    fn sbs_system(n: usize, f: usize, scheduler: Box<dyn Scheduler>) -> Simulation<SbsMsg<u64>> {
        let config = SystemConfig::new(n, f);
        let mut b = SimulationBuilder::new().scheduler(scheduler);
        for i in 0..n {
            b = b.add(Box::new(SbsProcess::new(i, config, 100 + i as u64)));
        }
        b.build()
    }

    fn check_run(sim: &Simulation<SbsMsg<u64>>, n: usize, f: usize, label: &str) {
        let mut decisions = Vec::new();
        let mut pairs = Vec::new();
        for i in 0..n {
            let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
            let d = p
                .decision
                .clone()
                .unwrap_or_else(|| panic!("{label}: p{i} never decided"));
            pairs.push((p.proposal, d.clone()));
            decisions.push(d);
            assert!(
                p.refinements <= 2 * f as u64,
                "{label}: p{i} exceeded 2f refinements"
            );
        }
        spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("{label}: {e}"));
        spec::check_inclusivity(&pairs).unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    #[test]
    fn honest_run_decides_and_agrees() {
        let (n, f) = (4, 1);
        let mut sim = sbs_system(n, f, Box::new(FifoScheduler::new()));
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        check_run(&sim, n, f, "fifo");
    }

    #[test]
    fn decision_depth_within_theorem_8_bound() {
        let (n, f) = (4, 1);
        let mut sim = sbs_system(n, f, Box::new(FifoScheduler::new()));
        sim.run(1_000_000);
        for i in 0..n {
            let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
            let depth = p.decision_depth.expect("decided");
            assert!(depth <= 5 + 4 * f as u64, "p{i}: {depth} > 5+4f");
        }
    }

    #[test]
    fn random_schedules_agree() {
        for seed in 0..8 {
            let (n, f) = (4, 1);
            let mut sim = sbs_system(n, f, Box::new(RandomScheduler::new(seed)));
            let out = sim.run(1_000_000);
            assert!(out.quiescent, "seed {seed}");
            check_run(&sim, n, f, &format!("seed {seed}"));
        }
    }

    #[test]
    fn linear_messages_per_proposer() {
        // Section 8.1: O(n) messages per proposer (for f = O(1)).
        // Check the shape: per-process sends grow ~linearly in n, unlike
        // WTS's quadratic (E7 regenerates the full comparison).
        let mut per_process = Vec::new();
        for n in [4usize, 7, 10] {
            let mut sim = sbs_system(n, 1, Box::new(FifoScheduler::new()));
            sim.run(10_000_000);
            per_process.push(sim.metrics().max_sent_per_process() as f64);
        }
        // From n=4 to n=10 the per-process count should grow by ~2.5x
        // (linear), far less than the ~6.25x a quadratic algorithm shows.
        let growth = per_process[2] / per_process[0];
        assert!(
            growth < 4.5,
            "per-proposer message growth {growth:.2} looks superlinear: {per_process:?}"
        );
    }

    #[test]
    fn forged_proofs_are_rejected() {
        // A proof assembled from acks of the wrong shape must fail
        // AllSafe: quorum too small, duplicate signers, missing value.
        let config = SystemConfig::new(4, 1);
        let mut p = SbsProcess::new(0, config, 7u64);
        let kp1 = Keypair::for_process(1);
        let sv = SignedValue::sign(42u64, 1, &kp1);
        let body = SafeAckBody {
            rcvd: [sv.clone()].into_iter().collect(),
            conflicts: vec![],
        };
        let ack = SignedSafeAck::sign(body, 1, &kp1);
        // Quorum is 3; a single ack (even valid) is insufficient.
        let set: BTreeSet<ProvenValue<u64>> = [ProvenValue {
            sv: sv.clone(),
            proof: Arc::new(vec![ack.clone()]),
        }]
        .into_iter()
        .collect();
        assert!(!p.all_safe(&set));
        // Duplicate signers don't count.
        let set2: BTreeSet<ProvenValue<u64>> = [ProvenValue {
            sv,
            proof: Arc::new(vec![ack.clone(), ack.clone(), ack]),
        }]
        .into_iter()
        .collect();
        assert!(!p.all_safe(&set2));
    }

    #[test]
    fn conflicting_signed_values_never_both_decided() {
        // Byzantine process 3 signs two different values and sends one to
        // each half: Lemma 13 says at most one can become safe.
        struct ConflictSigner;
        impl Process<SbsMsg<u64>> for ConflictSigner {
            fn on_start(&mut self, ctx: &mut Context<SbsMsg<u64>>) {
                let kp = Keypair::for_process(3);
                let a = SignedValue::sign(666u64, 3, &kp);
                let b = SignedValue::sign(777u64, 3, &kp);
                for to in 0..ctx.n {
                    let sv = if to < ctx.n / 2 { a.clone() } else { b.clone() };
                    ctx.send(to, SbsMsg::Init(sv));
                }
            }
            fn on_message(
                &mut self,
                _f: ProcessId,
                _m: SbsMsg<u64>,
                _c: &mut Context<SbsMsg<u64>>,
            ) {
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }

        for seed in 0..8 {
            let config = SystemConfig::new(4, 1);
            let mut b = SimulationBuilder::new().scheduler(Box::new(RandomScheduler::new(seed)));
            for i in 0..3 {
                b = b.add(Box::new(SbsProcess::new(i, config, i as u64)));
            }
            b = b.add(Box::new(ConflictSigner));
            let mut sim = b.build();
            let out = sim.run(1_000_000);
            assert!(out.quiescent, "seed {seed}");
            let mut decisions = Vec::new();
            for i in 0..3 {
                let p = sim.process_as::<SbsProcess<u64>>(i).unwrap();
                if let Some(d) = &p.decision {
                    assert!(
                        !(d.contains(&666) && d.contains(&777)),
                        "seed {seed}: both conflicting values decided"
                    );
                    decisions.push(d.clone());
                }
            }
            spec::check_comparability(&decisions).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
